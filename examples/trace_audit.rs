//! Audit a full flit-reservation run with the invariant checker.
//!
//! Attaches a shared [`InvariantChecker`] to every router and the
//! network harness, runs a moderate-load 8×8 simulation to completion,
//! and reports what the checker saw: every buffer allocation paired
//! with a free, every data flit covered by a reservation, every flit
//! delivered exactly once.
//!
//! ```sh
//! cargo run --release --example trace_audit
//! ```

use frfc::engine::trace::{InvariantChecker, SharedSink};
use frfc::engine::Rng;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::Network;
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};

fn main() {
    let mesh = Mesh::new(8, 8);
    let seed = 42;
    let load = 0.5;
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let cfg = FrConfig::fr6();

    let sink = SharedSink::new(InvariantChecker::new());
    let router_sink = sink.clone();
    let mut net = Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink.clone(),
    );

    net.run_cycles(5_000);
    net.stop_injection();
    net.run_cycles(5_000);

    let delivered = net.tracker().delivered_packets();
    let in_flight = net.tracker().in_flight();
    drop(net);
    let checker = sink.into_inner();

    println!("FR6 on 8x8 mesh, {:.0}% load, seed {seed}:", load * 100.0);
    println!("  packets delivered : {delivered}");
    println!("  still in flight   : {in_flight}");
    println!("  events audited    : {}", checker.events_seen());
    println!("  flits injected    : {}", checker.injected_flits());
    println!("  flits ejected     : {}", checker.ejected_flits());
    println!("  unused grants     : {}", checker.unused_grants());
    println!("  violations        : {}", checker.violation_count());
    for v in checker.violations().iter().take(10) {
        println!("    {v}");
    }
    checker.assert_clean();
    checker.assert_drained();
    println!("invariants hold: clean and fully drained");
}
