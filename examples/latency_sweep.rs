//! Latency-throughput sweep (the shape of the paper's Figure 5) with a
//! configurable packet length and load grid.
//!
//! ```sh
//! cargo run --release --example latency_sweep -- 5          # packet length
//! cargo run --release --example latency_sweep -- 21 0.1 0.9 9
//! ```
//!
//! Arguments: `[packet_length] [lo] [hi] [points]`.

use frfc::engine::sweep::linspace;
use frfc::flow::LinkTiming;
use frfc::fr::FrConfig;
use frfc::network::{sweep_loads, FlowControl, SimConfig};
use frfc::topology::Mesh;
use frfc::vc::VcConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let length: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(5);
    let lo: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let hi: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let points: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);

    let mesh = Mesh::new(8, 8);
    let sim = SimConfig::quick(2000);
    let loads = linspace(lo, hi, points);

    println!("latency vs offered load, {length}-flit packets, 8x8 mesh\n");
    println!("{:>9} {:>12} {:>12}", "offered", "VC8", "FR6");
    let vc = sweep_loads(
        &FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        mesh,
        length,
        &loads,
        &sim,
        1,
    );
    let fr = sweep_loads(
        &FlowControl::FlitReservation(FrConfig::fr6()),
        mesh,
        length,
        &loads,
        &sim,
        1,
    );
    for (a, b) in vc.points.iter().zip(&fr.points) {
        let fmt = |r: &frfc::network::RunResult| {
            if r.completed {
                format!("{:.1}", r.mean_latency())
            } else {
                "saturated".to_string()
            }
        };
        println!(
            "{:>8.0}% {:>12} {:>12}",
            a.offered * 100.0,
            fmt(&a.result),
            fmt(&b.result)
        );
    }
}
