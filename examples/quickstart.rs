//! Quickstart: simulate the paper's headline comparison at one load.
//!
//! Runs the 8×8 mesh at 50% of capacity with 5-flit packets under both
//! flow controls and prints latency and accepted throughput.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use frfc::flow::LinkTiming;
use frfc::fr::FrConfig;
use frfc::network::{FlowControl, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::LoadSpec;
use frfc::vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = SimConfig::quick(2000);
    let load = LoadSpec::fraction_of_capacity(0.5, 5);

    println!("8x8 mesh, uniform traffic, 5-flit packets, 50% of capacity\n");
    for flow in [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ] {
        let r = flow.run(mesh, load, &sim);
        println!(
            "{:<5}  latency {:>6.1} ± {:>4.1} cycles   accepted {:>5.1}% of capacity   ({} packets)",
            flow.label(),
            r.mean_latency(),
            r.latency.ci95_half_width(),
            r.accepted_fraction * 100.0,
            r.delivered,
        );
    }
    println!("\nFlit-reservation flow control pre-schedules buffers and channel");
    println!("bandwidth with control flits, so data flits cross each router");
    println!("without routing/arbitration latency and buffers turn around");
    println!("immediately — lower latency at equal storage.");
}
