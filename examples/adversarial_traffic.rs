//! Flit-reservation flow control under adversarial spatial patterns.
//!
//! The paper evaluates uniform random traffic; this example stresses both
//! flow controls with transpose, tornado and hotspot patterns — the
//! workloads a NoC designer would try next.
//!
//! ```sh
//! cargo run --release --example adversarial_traffic
//! ```

use frfc::engine::Rng;
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::{run_simulation, Network, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::{
    Hotspot, InjectionKind, LoadSpec, Tornado, TrafficGenerator, TrafficPattern, Transpose,
};
use frfc::vc::{VcConfig, VcRouter};

fn run_fr(mesh: Mesh, pattern: Box<dyn TrafficPattern>, load: f64, sim: &SimConfig) -> f64 {
    let root = Rng::from_seed(sim.seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::new(
        mesh,
        spec,
        pattern,
        InjectionKind::ConstantRate,
        root.fork(1),
    );
    let cfg = FrConfig::fr6();
    let mut network = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |node| {
        FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64))
    });
    run_simulation(&mut network, sim).mean_latency()
}

fn run_vc(mesh: Mesh, pattern: Box<dyn TrafficPattern>, load: f64, sim: &SimConfig) -> f64 {
    let root = Rng::from_seed(sim.seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::new(
        mesh,
        spec,
        pattern,
        InjectionKind::ConstantRate,
        root.fork(1),
    );
    let mut network = Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
        VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64))
    });
    run_simulation(&mut network, sim).mean_latency()
}

type PatternFactory = Box<dyn Fn() -> Box<dyn TrafficPattern>>;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = SimConfig::quick(2000);
    let load = 0.35;
    println!(
        "adversarial traffic at {:.0}% of (uniform) capacity, 5-flit packets\n",
        load * 100.0
    );
    println!("{:<12} {:>10} {:>10}", "pattern", "VC8", "FR6");
    let hotspot_node = mesh.node_at(4, 4);
    let patterns: Vec<(&str, PatternFactory)> = vec![
        ("transpose", Box::new(|| Box::new(Transpose))),
        ("tornado", Box::new(|| Box::new(Tornado))),
        (
            "hotspot10%",
            Box::new(move || Box::new(Hotspot::new(hotspot_node, 0.1))),
        ),
    ];
    for (name, make) in &patterns {
        let vc = run_vc(mesh, make(), load, &sim);
        let fr = run_fr(mesh, make(), load, &sim);
        println!("{name:<12} {vc:>9.1}c {fr:>9.1}c");
    }
    println!("\nAdvance reservations help under non-uniform loads too: the");
    println!("control network sees the contention first and schedules around");
    println!("busy cycles instead of stalling data flits in buffers.");
}
