//! How far ahead is it worth scheduling? Sweeps the scheduling horizon
//! (the paper's Figure 7 knob) and the control-flit lead time (Figure 8)
//! at a single load and reports latency and the control lead observed at
//! destinations.
//!
//! ```sh
//! cargo run --release --example horizon_study
//! ```

use frfc::engine::Rng;
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::{run_simulation, Network, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};

fn run(cfg: FrConfig, mesh: Mesh, load: f64, sim: &SimConfig) -> (f64, f64) {
    let root = Rng::from_seed(sim.seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(1));
    let mut network = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |node| {
        FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64))
    });
    let r = run_simulation(&mut network, sim);
    // Average, over all routers, of the control flits' lead over their
    // data flits when scheduling ejections.
    let mut lead = frfc::engine::stats::RunningStats::new();
    for router in network.routers() {
        lead.merge(&router.stats().dest_lead);
    }
    (r.mean_latency(), lead.mean())
}

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = SimConfig::quick(2000);
    let load = 0.6;

    println!("FR6 at {:.0}% load, 5-flit packets\n", load * 100.0);
    println!(
        "{:<24} {:>10} {:>18}",
        "configuration", "latency", "ctrl lead at dest"
    );
    for horizon in [16u64, 32, 64, 128] {
        let (lat, lead) = run(FrConfig::fr6().with_horizon(horizon), mesh, load, &sim);
        println!(
            "{:<24} {:>9.1}c {:>17.1}c",
            format!("fast control, s={horizon}"),
            lat,
            lead
        );
    }
    for lead_cfg in [1u64, 2, 4] {
        let cfg = FrConfig::fr6().with_timing(LinkTiming::leading_control(lead_cfg));
        let (lat, lead) = run(cfg, mesh, load, &sim);
        println!(
            "{:<24} {:>9.1}c {:>17.1}c",
            format!("leading control, N={lead_cfg}"),
            lat,
            lead
        );
    }
    println!("\nThe observed lead at the destination grows under load as data");
    println!("flits stall behind contention while control flits race ahead —");
    println!("which is exactly why throughput is insensitive to the injected");
    println!("lead time (paper Section 4.4).");
}
