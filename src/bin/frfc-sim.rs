//! `frfc-sim` — command-line driver for one simulation run.
//!
//! ```sh
//! frfc-sim --flow fr6 --load 0.5 --length 5
//! frfc-sim --flow vc16 --timing lead:2 --pattern transpose --mesh 6x6
//! frfc-sim --flow fr13 --horizon 64 --injection onoff:0.5,16 --scale tiny
//! frfc-sim --help
//! ```
//!
//! Prints a one-run report: mean latency with 95% CI, p50/p95/p99, accepted
//! throughput and the occupancy probe.

use frfc::engine::trace::NullSink;
use frfc::engine::Rng;
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::metrics::{write_json_file, MetricsRegistry, RunManifest};
use frfc::network::{run_simulation, EngineProfile, Network, RunResult, SimConfig};
use frfc::topology::{Mesh, NodeId};
use frfc::traffic::{
    BitComplement, Hotspot, InjectionKind, LoadSpec, Tornado, TrafficGenerator, TrafficPattern,
    Transpose, Uniform,
};
use frfc::vc::{CreditMode, VcConfig, VcRouter};

const HELP: &str = "frfc-sim — one flit-level simulation run (Peh & Dally, HPCA 2000)

USAGE:
    frfc-sim [OPTIONS]

OPTIONS:
    --flow <CFG>        fr6 | fr13 | vc8 | vc16 | vc32 | wormhole:<bufs>
                        | vc8-shared            [default: fr6]
    --load <F>          offered load as a fraction of capacity, (0, 1.5]
                        [default: 0.5]
    --length <N>        packet length in flits  [default: 5]
    --mesh <WxH>        mesh dimensions         [default: 8x8]
    --timing <T>        fast | lead:<N>         [default: fast]
    --horizon <N>       FR scheduling horizon   [default: 32]
    --pattern <P>       uniform | transpose | tornado | bitcomp
                        | hotspot:<frac>        [default: uniform]
    --injection <I>     constant | bernoulli | onoff:<peak>,<mean_on>
                        [default: constant]
    --error-rate <F>    control-wire corruption probability [default: 0]
    --sync-margin <N>   plesiochronous buffer-release margin [default: 0]
    --scale <S>         tiny | quick | paper    [default: quick]
    --seed <N>          root seed               [default: 2000]
    --telemetry-out <P> write a windowed-telemetry JSON sidecar to <P>
                        (plus <P minus .json>.profile.json with the
                        runtime profile and Chrome trace)
    --window-log2 <N>   telemetry window = 2^N cycles [default: 9]
    --flight-ring <N>   blackbox mode: arm a 2^N-event flight recorder
    --watchdog <N>      blackbox mode: progress-watchdog threshold in
                        cycles (fires on no-delivery-progress)
    --dump-state-out <P> blackbox mode: write the crash/state sidecar
                        (ring + full state dump + manifest) to <P>
    -h, --help          print this help

Any of the last three flags switches to blackbox mode: a fixed
inject-then-drain schedule with the flight recorder and watchdog armed,
capturing a replayable crash sidecar on watchdog trip, panic or drain
failure (inspect it with frfc-inspect). Blackbox mode supports
--flow vc8|vc32|fr6|fr13 on the uniform pattern.
";

#[derive(Debug)]
struct Args {
    flow: String,
    load: f64,
    length: u32,
    mesh: (u16, u16),
    timing: LinkTiming,
    horizon: u64,
    pattern: String,
    injection: InjectionKind,
    error_rate: f64,
    sync_margin: u64,
    scale: String,
    seed: u64,
    telemetry_out: Option<std::path::PathBuf>,
    window_log2: u32,
    flight_ring: Option<u32>,
    watchdog: Option<u64>,
    dump_state_out: Option<std::path::PathBuf>,
}

impl Args {
    /// Any blackbox knob switches the driver into blackbox mode.
    fn blackbox_mode(&self) -> bool {
        self.flight_ring.is_some() || self.watchdog.is_some() || self.dump_state_out.is_some()
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        flow: "fr6".into(),
        load: 0.5,
        length: 5,
        mesh: (8, 8),
        timing: LinkTiming::fast_control(),
        horizon: 32,
        pattern: "uniform".into(),
        injection: InjectionKind::ConstantRate,
        error_rate: 0.0,
        sync_margin: 0,
        scale: "quick".into(),
        seed: 2000,
        telemetry_out: None,
        window_log2: 9,
        flight_ring: None,
        watchdog: None,
        dump_state_out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "-h" || flag == "--help" {
            print!("{HELP}");
            std::process::exit(0);
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--flow" => args.flow = value.clone(),
            "--load" => {
                args.load = value.parse().map_err(|_| format!("bad load {value}"))?;
                if args.load <= 0.0 || args.load > 1.5 {
                    return Err("load must be in (0, 1.5]".into());
                }
            }
            "--length" => args.length = value.parse().map_err(|_| format!("bad length {value}"))?,
            "--mesh" => {
                let (w, h) = value
                    .split_once('x')
                    .ok_or_else(|| format!("mesh must look like 8x8, got {value}"))?;
                args.mesh = (
                    w.parse().map_err(|_| format!("bad width {w}"))?,
                    h.parse().map_err(|_| format!("bad height {h}"))?,
                );
            }
            "--timing" => {
                args.timing = if value == "fast" {
                    LinkTiming::fast_control()
                } else if let Some(lead) = value.strip_prefix("lead:") {
                    LinkTiming::leading_control(
                        lead.parse().map_err(|_| format!("bad lead {lead}"))?,
                    )
                } else {
                    return Err(format!("timing must be fast or lead:<N>, got {value}"));
                };
            }
            "--horizon" => {
                args.horizon = value.parse().map_err(|_| format!("bad horizon {value}"))?
            }
            "--pattern" => args.pattern = value.clone(),
            "--injection" => {
                args.injection = if value == "constant" {
                    InjectionKind::ConstantRate
                } else if value == "bernoulli" {
                    InjectionKind::Bernoulli
                } else if let Some(spec) = value.strip_prefix("onoff:") {
                    let (peak, on) = spec
                        .split_once(',')
                        .ok_or_else(|| format!("onoff needs <peak>,<mean_on>, got {spec}"))?;
                    InjectionKind::OnOff {
                        peak_rate: peak.parse().map_err(|_| format!("bad peak {peak}"))?,
                        mean_on: on.parse().map_err(|_| format!("bad mean_on {on}"))?,
                    }
                } else {
                    return Err(format!("unknown injection {value}"));
                };
            }
            "--error-rate" => {
                args.error_rate = value
                    .parse()
                    .map_err(|_| format!("bad error rate {value}"))?
            }
            "--sync-margin" => {
                args.sync_margin = value.parse().map_err(|_| format!("bad margin {value}"))?
            }
            "--scale" => args.scale = value.clone(),
            "--seed" => args.seed = value.parse().map_err(|_| format!("bad seed {value}"))?,
            "--telemetry-out" => args.telemetry_out = Some(value.into()),
            "--window-log2" => {
                args.window_log2 = value
                    .parse()
                    .map_err(|_| format!("bad window log2 {value}"))?;
                if args.window_log2 >= 32 {
                    return Err("window log2 must be below 32".into());
                }
            }
            "--flight-ring" => {
                let log2: u32 = value
                    .parse()
                    .map_err(|_| format!("bad ring log2 {value}"))?;
                if log2 >= 24 {
                    return Err("flight ring log2 must be below 24".into());
                }
                args.flight_ring = Some(log2);
            }
            "--watchdog" => {
                let cycles: u64 = value
                    .parse()
                    .map_err(|_| format!("bad watchdog threshold {value}"))?;
                if cycles == 0 {
                    return Err("watchdog threshold must be positive".into());
                }
                args.watchdog = Some(cycles);
            }
            "--dump-state-out" => args.dump_state_out = Some(value.into()),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
        i += 2;
    }
    Ok(args)
}

fn make_pattern(name: &str, mesh: Mesh) -> Result<Box<dyn TrafficPattern>, String> {
    Ok(match name {
        "uniform" => Box::new(Uniform),
        "transpose" => Box::new(Transpose),
        "tornado" => Box::new(Tornado),
        "bitcomp" => Box::new(BitComplement),
        other => {
            if let Some(frac) = other.strip_prefix("hotspot:") {
                let f: f64 = frac.parse().map_err(|_| format!("bad fraction {frac}"))?;
                let centre = mesh.node_at(mesh.width() / 2, mesh.height() / 2);
                Box::new(Hotspot::new(centre, f))
            } else {
                return Err(format!("unknown pattern {other}"));
            }
        }
    })
}

fn sim_for_scale(scale: &str, seed: u64) -> Result<SimConfig, String> {
    Ok(match scale {
        "quick" => SimConfig::quick(seed),
        "paper" => SimConfig::paper_scale(seed),
        "tiny" => {
            let mut s = SimConfig::quick(seed);
            s.sample_packets = 800;
            s.warmup.min_cycles = 1_000;
            s
        }
        other => return Err(format!("unknown scale {other}")),
    })
}

/// `foo.json` → `foo<suffix>` (e.g. `foo.profile.json`), next to the
/// telemetry sidecar.
fn sibling(path: &std::path::Path, suffix: &str) -> std::path::PathBuf {
    let stem = path.with_extension("");
    std::path::PathBuf::from(format!("{}{suffix}", stem.display()))
}

/// Runs one telemetry-armed simulation and writes the sidecars: the
/// metrics export (aggregates, series and windowed telemetry) to
/// `--telemetry-out`, plus the runtime profile and its Chrome trace next
/// to it.
fn simulate_telemetry<R: frfc::flow::Router + Send>(
    mut net: Network<R, NullSink, MetricsRegistry>,
    sim: &SimConfig,
    args: &Args,
    label: &str,
) -> Result<(RunResult, u64), String> {
    if args.error_rate > 0.0 {
        net.set_control_error_rate(args.error_rate, args.seed ^ 0xE44);
    }
    net.set_telemetry_windows(args.window_log2);
    net.set_profiling(true);
    let wall = std::time::Instant::now();
    let r = run_simulation(&mut net, sim);
    let retries = net.control_retries();
    let profile: EngineProfile = net.engine_profile();
    let registry = std::mem::take(net.metrics_mut());
    let out = args.telemetry_out.as_ref().expect("telemetry path set");
    let mut manifest = RunManifest::new("frfc-sim", args.seed, args.scale.clone(), label);
    manifest.wall_ms = wall.elapsed().as_millis() as u64;
    let write = |path: &std::path::Path, doc: &frfc::metrics::Json| {
        write_json_file(path, doc).map_err(|e| format!("cannot write {}: {e}", path.display()))
    };
    write(out, &registry.to_json(&manifest))?;
    let profile_path = sibling(out, ".profile.json");
    write(&profile_path, &profile.to_json())?;
    let trace_path = sibling(out, ".trace.json");
    write(&trace_path, &profile.chrome_trace())?;
    eprintln!(
        "telemetry : {} (+ {} / {})",
        out.display(),
        profile_path.display(),
        trace_path.display()
    );
    Ok((r, retries))
}

/// Blackbox mode: a fixed inject-then-drain schedule with the flight
/// recorder and progress watchdog armed. Any abnormal ending (watchdog,
/// panic, exhausted drain) captures a crash sidecar; with
/// `--dump-state-out` a clean run also writes an unconditional state
/// capture at its final cycle, which is the checkpoint write path.
fn run_blackbox_mode(args: &Args) -> Result<(), String> {
    use frfc::network::blackbox::{capture_at_cycle, run_blackbox, ReplaySpec, Trigger};
    let config = match args.flow.as_str() {
        "vc8" => "VC8",
        "vc32" => "VC32",
        "fr6" => "FR6",
        "fr13" => "FR13",
        other => {
            return Err(format!(
                "blackbox mode supports vc8|vc32|fr6|fr13, got {other}"
            ))
        }
    };
    if args.pattern != "uniform" {
        return Err("blackbox mode supports only the uniform pattern".into());
    }
    let inject_cycles = match args.scale.as_str() {
        "tiny" => 500,
        "quick" => 2_000,
        "paper" => 10_000,
        other => return Err(format!("unknown scale {other}")),
    };
    let spec = ReplaySpec {
        config: config.into(),
        mesh_width: args.mesh.0,
        mesh_height: args.mesh.1,
        load: args.load,
        packet_flits: args.length,
        seed: args.seed,
        inject_cycles,
        drain_cap: 20 * inject_cycles,
        ring_log2: args.flight_ring.unwrap_or(10),
        watchdog: Some(args.watchdog.unwrap_or(2_000)),
        fault: None,
    };
    let run = run_blackbox(&spec, 1)?;
    println!(
        "{config} blackbox on {}x{} mesh | {:.0}% load | seed {} | ring 2^{} | watchdog {}",
        spec.mesh_width,
        spec.mesh_height,
        spec.load * 100.0,
        spec.seed,
        spec.ring_log2,
        spec.watchdog.expect("armed above"),
    );
    println!(
        "outcome   : {} after {} cycles ({} flits delivered) — {}",
        run.trigger.label(),
        run.cycles,
        run.delivered_flits,
        run.detail
    );
    let sidecar = match run.sidecar {
        Some(doc) => Some(doc),
        None => match &args.dump_state_out {
            // Clean run: only capture when the caller asked for a dump.
            Some(_) => Some(capture_at_cycle(&spec, run.cycles, 1)?),
            None => None,
        },
    };
    if let Some(doc) = sidecar {
        let default_path = std::path::PathBuf::from(format!(
            "results/state/frfc-sim-{}-{}.json",
            config.to_lowercase(),
            spec.seed
        ));
        let path = args.dump_state_out.clone().unwrap_or(default_path);
        write_json_file(&path, &doc)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        let digest = doc
            .get("state_digest")
            .and_then(frfc::metrics::Json::as_str)
            .unwrap_or("?");
        println!("sidecar   : {} (state digest {digest})", path.display());
        println!("inspect   : frfc-inspect show {}", path.display());
    }
    if run.trigger != Trigger::Completed {
        std::process::exit(1);
    }
    Ok(())
}

fn run(args: &Args) -> Result<(String, RunResult, u64), String> {
    let mesh = Mesh::new(args.mesh.0, args.mesh.1);
    let sim = sim_for_scale(&args.scale, args.seed)?;
    let load = LoadSpec::fraction_of_capacity(args.load, args.length);
    let root = Rng::from_seed(sim.seed);
    let make_generator = || -> Result<TrafficGenerator, String> {
        let pattern = make_pattern(&args.pattern, mesh)?;
        Ok(TrafficGenerator::new(
            mesh,
            load,
            pattern,
            args.injection,
            root.fork(1),
        ))
    };

    let make_vc = |cfg: VcConfig| -> Result<(String, RunResult, u64), String> {
        let label = format!("VC{}", cfg.buffers_per_input());
        let generator = make_generator()?;
        let make_router = |n: NodeId| VcRouter::new(mesh, n, cfg, root.fork(n.raw() as u64));
        if args.telemetry_out.is_some() {
            let net = Network::with_instruments(
                mesh,
                args.timing,
                2,
                generator,
                make_router,
                NullSink,
                MetricsRegistry::new(),
            );
            let (r, retries) = simulate_telemetry(net, &sim, args, &label)?;
            return Ok((label, r, retries));
        }
        let mut net = Network::new(mesh, args.timing, 2, generator, make_router);
        if args.error_rate > 0.0 {
            net.set_control_error_rate(args.error_rate, args.seed ^ 0xE44);
        }
        let r = run_simulation(&mut net, &sim);
        Ok((label, r, net.control_retries()))
    };

    Ok(match args.flow.as_str() {
        "vc8" => make_vc(VcConfig::vc8())?,
        "vc16" => make_vc(VcConfig::vc16())?,
        "vc32" => make_vc(VcConfig::vc32())?,
        "vc8-shared" => make_vc(VcConfig::vc8().with_shared_pool())?,
        flow => {
            if let Some(bufs) = flow.strip_prefix("wormhole:") {
                let b: usize = bufs
                    .parse()
                    .map_err(|_| format!("bad buffer count {bufs}"))?;
                make_vc(VcConfig::new(1, b, CreditMode::PerVc))?
            } else {
                let base = match flow {
                    "fr6" => FrConfig::fr6(),
                    "fr13" => FrConfig::fr13(),
                    other => return Err(format!("unknown flow control {other}")),
                };
                let cfg = base
                    .with_timing(args.timing)
                    .with_horizon(args.horizon)
                    .with_sync_margin(args.sync_margin);
                let label = format!("FR{}", cfg.data_buffers);
                let generator = make_generator()?;
                let make_router =
                    |n: NodeId| FrRouter::new(mesh, n, cfg, root.fork(n.raw() as u64));
                if args.telemetry_out.is_some() {
                    let net = Network::with_instruments(
                        mesh,
                        cfg.timing,
                        cfg.control_lanes,
                        generator,
                        make_router,
                        NullSink,
                        MetricsRegistry::new(),
                    );
                    let (r, retries) = simulate_telemetry(net, &sim, args, &label)?;
                    return Ok((label, r, retries));
                }
                let mut net =
                    Network::new(mesh, cfg.timing, cfg.control_lanes, generator, make_router);
                if args.error_rate > 0.0 {
                    net.set_control_error_rate(args.error_rate, args.seed ^ 0xE44);
                }
                let r = run_simulation(&mut net, &sim);
                let retries = net.control_retries();
                (label, r, retries)
            }
        }
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    };
    if args.blackbox_mode() {
        if let Err(e) = run_blackbox_mode(&args) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let (label, r, retries) = match run(&args) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "{label} on {}x{} mesh | {} pattern | {:.0}% load | {}-flit packets | seed {}",
        args.mesh.0,
        args.mesh.1,
        args.pattern,
        args.load * 100.0,
        args.length,
        args.seed
    );
    if r.completed {
        println!(
            "latency   : {:.1} ± {:.1} cycles (p50 {}, p95 {}, p99 {})",
            r.mean_latency(),
            r.latency.ci95_half_width(),
            r.p50_latency.map_or("-".into(), |v| v.to_string()),
            r.p95_latency.map_or("-".into(), |v| v.to_string()),
            r.p99_latency.map_or("-".into(), |v| v.to_string()),
        );
    } else {
        println!(
            "latency   : SATURATED ({} of {} sample packets delivered)",
            r.delivered,
            r.delivered + 1 // at least one outstanding
        );
    }
    println!(
        "throughput: {:.1}% of capacity accepted ({:.4} flits/node/cycle)",
        r.accepted_fraction * 100.0,
        r.accepted_flits_per_node_cycle
    );
    println!(
        "probe     : centre pool full {:.1}% of cycles, mean occupancy {:.1}%",
        r.probe_full_fraction * 100.0,
        r.probe_mean_occupancy * 100.0
    );
    if retries > 0 {
        println!("errors    : {retries} control flits retransmitted");
    }
    println!(
        "window    : warm-up ended at cycle {}, run ended at cycle {}",
        r.measure_start, r.end_cycle
    );
}
