//! # frfc — Flit-Reservation Flow Control
//!
//! A complete, self-contained reproduction of *Flit-Reservation Flow
//! Control* (Li-Shiuan Peh and William J. Dally, HPCA 2000): a flit-level
//! network-on-chip simulation stack with the paper's flit-reservation
//! router, the virtual-channel baseline it is compared against, and the
//! measurement harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate is an umbrella that re-exports the workspace:
//!
//! * [`engine`] — deterministic cycle-driven simulation kernel;
//! * [`topology`] — the k-ary 2-mesh and dimension-ordered routing;
//! * [`traffic`] — traffic patterns and capacity-normalised loads;
//! * [`flow`] — flits, links, buffers and the router interface;
//! * [`vc`] — the virtual-channel / wormhole baselines;
//! * [`fr`] — flit-reservation flow control (the paper's contribution);
//! * [`network`] — network composition, measurement, sweeps;
//! * [`overhead`] — the Table 1/2 storage and bandwidth models;
//! * [`metrics`] — zero-cost-when-off counters and JSON export;
//! * [`provenance`] — per-flit latency attribution and Perfetto export;
//! * [`faults`] — deterministic fault injection and the end-to-end
//!   reliability layer (CRC, ACK/NACK retransmission, link masking).
//!
//! # Quickstart
//!
//! ```no_run
//! use frfc::fr::FrConfig;
//! use frfc::network::{FlowControl, SimConfig};
//! use frfc::topology::Mesh;
//! use frfc::traffic::LoadSpec;
//!
//! // The paper's network: 8x8 mesh, FR6 router, 50% offered load.
//! let mesh = Mesh::new(8, 8);
//! let fr6 = FlowControl::FlitReservation(FrConfig::fr6());
//! let result = fr6.run(mesh, LoadSpec::fraction_of_capacity(0.5, 5), &SimConfig::quick(1));
//! println!("mean latency: {:.1} cycles", result.mean_latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use flit_reservation as fr;
pub use noc_engine as engine;
pub use noc_faults as faults;
pub use noc_flow as flow;
pub use noc_metrics as metrics;
pub use noc_network as network;
pub use noc_overhead as overhead;
pub use noc_provenance as provenance;
pub use noc_topology as topology;
pub use noc_traffic as traffic;
pub use noc_vc as vc;
