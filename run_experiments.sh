#!/bin/sh
# Regenerates every table and figure of the paper, plus the fault-rate
# degradation sweep, writing text output and JSON sidecars under the
# results directory plus a results/manifest.json record of the run
# (scale, seed, toolchain, per-bin wall time).
#
# Each bin runs through the same redirect-then-check pattern: output is
# captured to $RESULTS/<bin>.txt, and a non-zero exit aborts the whole
# script loudly (no tee pipelines, which would mask exit statuses).
#
# FRFC_SCALE=tiny|quick|paper controls measurement size (see noc-bench docs).
# FRFC_SEED sets the root seed (default 2000).
# FRFC_RESULTS_DIR redirects the output directory (default results/).
set -eu

SCALE="${FRFC_SCALE:-quick}"
SEED="${FRFC_SEED:-2000}"
RESULTS="${FRFC_RESULTS_DIR:-results}"
export FRFC_SCALE="$SCALE"
export FRFC_SEED="$SEED"
export FRFC_RESULTS_DIR="$RESULTS"
mkdir -p "$RESULTS"

# Build once up front so per-bin wall times measure simulation, not
# compilation.
cargo build --release -p noc-bench

TOOLCHAIN="$(rustc --version 2>/dev/null || echo unknown)"
GIT_REV="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
RUN_START="$(date +%s)"
TIMINGS=""

for bin in table1 table2 fig5 fig6 fig7 fig8 fig9 table3 occupancy \
           ablation_scheduling ablation_shared_pool ablation_transfers \
           related_work ext_bursty ext_errors ext_sync_margin \
           fault_sweep telemetry_report; do
    echo "=== $bin (scale: $SCALE, seed: $SEED) ==="
    BIN_START="$(date +%s)"
    # Redirect into the .txt instead of piping through tee: a pipeline
    # would mask the bin's exit status and `set -e` would sail past a
    # failing experiment.
    if cargo run --release -q -p noc-bench --bin "$bin" \
        >"$RESULTS/$bin.txt" 2>&1; then
        cat "$RESULTS/$bin.txt"
    else
        STATUS=$?
        cat "$RESULTS/$bin.txt"
        echo "FAILED: experiment bin '$bin' exited with status $STATUS" >&2
        exit "$STATUS"
    fi
    BIN_WALL=$(( $(date +%s) - BIN_START ))
    ENTRY="{\"bin\": \"$bin\", \"wall_s\": $BIN_WALL}"
    TIMINGS="${TIMINGS:+$TIMINGS, }$ENTRY"
done

# Blackbox self-check: the dead-link livelock must trip the progress
# watchdog, and the resulting crash sidecar must replay bit-for-bit at
# 1/4/8 threads. Writes $RESULTS/state/self-check.json.
echo "=== frfc-inspect --self-check ==="
BIN_START="$(date +%s)"
if cargo run --release -q -p noc-bench --bin frfc-inspect -- --self-check \
    >"$RESULTS/frfc-inspect.txt" 2>&1; then
    cat "$RESULTS/frfc-inspect.txt"
else
    STATUS=$?
    cat "$RESULTS/frfc-inspect.txt"
    echo "FAILED: frfc-inspect --self-check exited with status $STATUS" >&2
    exit "$STATUS"
fi
BIN_WALL=$(( $(date +%s) - BIN_START ))
TIMINGS="${TIMINGS:+$TIMINGS, }{\"bin\": \"frfc-inspect\", \"wall_s\": $BIN_WALL}"

TOTAL_WALL=$(( $(date +%s) - RUN_START ))

# Telemetry sidecars the run produced (windowed metrics export, runtime
# profile, Chrome trace), recorded so the manifest names every artifact.
SIDECARS=""
for f in telemetry.metrics.json telemetry.profile.json telemetry.trace.json; do
    if [ -s "$RESULTS/$f" ]; then
        SIDECARS="${SIDECARS:+$SIDECARS, }\"$f\""
    fi
done

# Crash/state sidecars under $RESULTS/state/: the self-check's livelock
# capture plus anything frfc-sim's blackbox mode dumped there.
STATE_SIDECARS=""
if [ -d "$RESULTS/state" ]; then
    for f in "$RESULTS"/state/*.json; do
        [ -s "$f" ] || continue
        STATE_SIDECARS="${STATE_SIDECARS:+$STATE_SIDECARS, }\"state/$(basename "$f")\""
    done
fi

cat >"$RESULTS/manifest.json" <<EOF
{
  "schema_version": 1,
  "scale": "$SCALE",
  "seed": $SEED,
  "git_rev": "$GIT_REV",
  "toolchain": "$TOOLCHAIN",
  "total_wall_s": $TOTAL_WALL,
  "bins": [$TIMINGS],
  "telemetry_sidecars": [$SIDECARS],
  "state_sidecars": [$STATE_SIDECARS]
}
EOF
echo "wrote $RESULTS/manifest.json (total ${TOTAL_WALL}s)"
