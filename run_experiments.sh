#!/bin/sh
# Regenerates every table and figure of the paper.
# FRFC_SCALE=tiny|quick|paper controls measurement size (see noc-bench docs).
set -e
SCALE="${FRFC_SCALE:-quick}"
export FRFC_SCALE="$SCALE"
mkdir -p results
for bin in table1 table2 fig5 fig6 fig7 fig8 fig9 table3 occupancy \
           ablation_scheduling ablation_shared_pool ablation_transfers \
           related_work ext_bursty ext_errors ext_sync_margin; do
    echo "=== $bin (scale: $SCALE) ==="
    cargo run --release -p noc-bench --bin "$bin" | tee "results/$bin.txt"
done
