/root/repo/target/debug/libnoc_overhead.rlib: /root/repo/crates/overhead/src/lib.rs
