/root/repo/target/debug/examples/quickstart-2913ff276803d37c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2913ff276803d37c: examples/quickstart.rs

examples/quickstart.rs:
