/root/repo/target/debug/examples/adversarial_traffic-f7e3e2c5622682d6.d: examples/adversarial_traffic.rs

/root/repo/target/debug/examples/adversarial_traffic-f7e3e2c5622682d6: examples/adversarial_traffic.rs

examples/adversarial_traffic.rs:
