/root/repo/target/debug/examples/latency_sweep-618fc1098d031306.d: examples/latency_sweep.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_sweep-618fc1098d031306.rmeta: examples/latency_sweep.rs Cargo.toml

examples/latency_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
