/root/repo/target/debug/examples/latency_sweep-4089f1ce3320e310.d: examples/latency_sweep.rs

/root/repo/target/debug/examples/latency_sweep-4089f1ce3320e310: examples/latency_sweep.rs

examples/latency_sweep.rs:
