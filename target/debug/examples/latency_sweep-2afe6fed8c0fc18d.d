/root/repo/target/debug/examples/latency_sweep-2afe6fed8c0fc18d.d: examples/latency_sweep.rs

/root/repo/target/debug/examples/latency_sweep-2afe6fed8c0fc18d: examples/latency_sweep.rs

examples/latency_sweep.rs:
