/root/repo/target/debug/examples/adversarial_traffic-9bf4a48ff77eeea9.d: examples/adversarial_traffic.rs

/root/repo/target/debug/examples/adversarial_traffic-9bf4a48ff77eeea9: examples/adversarial_traffic.rs

examples/adversarial_traffic.rs:
