/root/repo/target/debug/examples/horizon_study-4a7f27e75302838a.d: examples/horizon_study.rs

/root/repo/target/debug/examples/horizon_study-4a7f27e75302838a: examples/horizon_study.rs

examples/horizon_study.rs:
