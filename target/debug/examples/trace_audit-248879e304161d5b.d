/root/repo/target/debug/examples/trace_audit-248879e304161d5b.d: examples/trace_audit.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_audit-248879e304161d5b.rmeta: examples/trace_audit.rs Cargo.toml

examples/trace_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
