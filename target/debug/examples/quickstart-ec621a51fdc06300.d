/root/repo/target/debug/examples/quickstart-ec621a51fdc06300.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ec621a51fdc06300.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
