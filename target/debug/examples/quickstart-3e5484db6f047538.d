/root/repo/target/debug/examples/quickstart-3e5484db6f047538.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3e5484db6f047538: examples/quickstart.rs

examples/quickstart.rs:
