/root/repo/target/debug/examples/trace_audit-42d7f681d052f7c5.d: examples/trace_audit.rs

/root/repo/target/debug/examples/trace_audit-42d7f681d052f7c5: examples/trace_audit.rs

examples/trace_audit.rs:
