/root/repo/target/debug/examples/horizon_study-669ac6711ad23eb0.d: examples/horizon_study.rs Cargo.toml

/root/repo/target/debug/examples/libhorizon_study-669ac6711ad23eb0.rmeta: examples/horizon_study.rs Cargo.toml

examples/horizon_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
