/root/repo/target/debug/examples/horizon_study-16dca49738f6efaa.d: examples/horizon_study.rs

/root/repo/target/debug/examples/horizon_study-16dca49738f6efaa: examples/horizon_study.rs

examples/horizon_study.rs:
