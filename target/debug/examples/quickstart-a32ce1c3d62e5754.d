/root/repo/target/debug/examples/quickstart-a32ce1c3d62e5754.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a32ce1c3d62e5754.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
