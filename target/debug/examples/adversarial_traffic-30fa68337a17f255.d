/root/repo/target/debug/examples/adversarial_traffic-30fa68337a17f255.d: examples/adversarial_traffic.rs Cargo.toml

/root/repo/target/debug/examples/libadversarial_traffic-30fa68337a17f255.rmeta: examples/adversarial_traffic.rs Cargo.toml

examples/adversarial_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
