/root/repo/target/debug/deps/ext_sync_margin-b7660cd035f1f5b8.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/debug/deps/ext_sync_margin-b7660cd035f1f5b8: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
