/root/repo/target/debug/deps/noc_bench-04376c365ddb2146.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_bench-04376c365ddb2146.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
