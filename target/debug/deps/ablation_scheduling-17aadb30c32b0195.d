/root/repo/target/debug/deps/ablation_scheduling-17aadb30c32b0195.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/debug/deps/ablation_scheduling-17aadb30c32b0195: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
