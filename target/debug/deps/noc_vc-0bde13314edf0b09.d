/root/repo/target/debug/deps/noc_vc-0bde13314edf0b09.d: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_vc-0bde13314edf0b09.rmeta: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs Cargo.toml

crates/vc/src/lib.rs:
crates/vc/src/config.rs:
crates/vc/src/router.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
