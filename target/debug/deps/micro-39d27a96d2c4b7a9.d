/root/repo/target/debug/deps/micro-39d27a96d2c4b7a9.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-39d27a96d2c4b7a9: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
