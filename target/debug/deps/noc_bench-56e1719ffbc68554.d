/root/repo/target/debug/deps/noc_bench-56e1719ffbc68554.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/noc_bench-56e1719ffbc68554: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
