/root/repo/target/debug/deps/noc_bench-2b8f787ef2b7e59d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_bench-2b8f787ef2b7e59d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
