/root/repo/target/debug/deps/ablation_transfers-0b03a037ccd72434.d: crates/bench/src/bin/ablation_transfers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_transfers-0b03a037ccd72434.rmeta: crates/bench/src/bin/ablation_transfers.rs Cargo.toml

crates/bench/src/bin/ablation_transfers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
