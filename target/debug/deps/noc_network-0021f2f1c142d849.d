/root/repo/target/debug/deps/noc_network-0021f2f1c142d849.d: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

/root/repo/target/debug/deps/noc_network-0021f2f1c142d849: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

crates/network/src/lib.rs:
crates/network/src/experiment.rs:
crates/network/src/network.rs:
crates/network/src/runner.rs:
crates/network/src/tracker.rs:
