/root/repo/target/debug/deps/fig7-22d9d9c5bcea15f1.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-22d9d9c5bcea15f1: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
