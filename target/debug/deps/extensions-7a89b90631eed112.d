/root/repo/target/debug/deps/extensions-7a89b90631eed112.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-7a89b90631eed112: tests/extensions.rs

tests/extensions.rs:
