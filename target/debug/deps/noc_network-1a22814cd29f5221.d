/root/repo/target/debug/deps/noc_network-1a22814cd29f5221.d: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_network-1a22814cd29f5221.rmeta: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs Cargo.toml

crates/network/src/lib.rs:
crates/network/src/experiment.rs:
crates/network/src/network.rs:
crates/network/src/runner.rs:
crates/network/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
