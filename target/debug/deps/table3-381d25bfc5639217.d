/root/repo/target/debug/deps/table3-381d25bfc5639217.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-381d25bfc5639217: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
