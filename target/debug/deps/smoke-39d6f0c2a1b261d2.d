/root/repo/target/debug/deps/smoke-39d6f0c2a1b261d2.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-39d6f0c2a1b261d2: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
