/root/repo/target/debug/deps/fig8-9c57096f192df8fa.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-9c57096f192df8fa: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
