/root/repo/target/debug/deps/noc_topology-6b1eaf2d1d173cbb.d: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_topology-6b1eaf2d1d173cbb.rmeta: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/coord.rs:
crates/topology/src/direction.rs:
crates/topology/src/mesh.rs:
crates/topology/src/routing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
