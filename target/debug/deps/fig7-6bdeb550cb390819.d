/root/repo/target/debug/deps/fig7-6bdeb550cb390819.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-6bdeb550cb390819: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
