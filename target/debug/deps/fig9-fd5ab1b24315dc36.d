/root/repo/target/debug/deps/fig9-fd5ab1b24315dc36.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-fd5ab1b24315dc36: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
