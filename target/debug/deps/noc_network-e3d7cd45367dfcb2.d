/root/repo/target/debug/deps/noc_network-e3d7cd45367dfcb2.d: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_network-e3d7cd45367dfcb2.rmeta: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs Cargo.toml

crates/network/src/lib.rs:
crates/network/src/experiment.rs:
crates/network/src/network.rs:
crates/network/src/runner.rs:
crates/network/src/tracker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
