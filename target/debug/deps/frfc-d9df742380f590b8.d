/root/repo/target/debug/deps/frfc-d9df742380f590b8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc-d9df742380f590b8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
