/root/repo/target/debug/deps/ext_sync_margin-129abbab549bd2ce.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/debug/deps/ext_sync_margin-129abbab549bd2ce: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
