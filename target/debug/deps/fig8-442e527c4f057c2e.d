/root/repo/target/debug/deps/fig8-442e527c4f057c2e.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-442e527c4f057c2e: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
