/root/repo/target/debug/deps/paper_claims-6f1697f0a15df9cd.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-6f1697f0a15df9cd: tests/paper_claims.rs

tests/paper_claims.rs:
