/root/repo/target/debug/deps/noc_bench-354b2fbc9a4f0259.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/noc_bench-354b2fbc9a4f0259: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
