/root/repo/target/debug/deps/noc_network-c75772fc742fea65.d: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

/root/repo/target/debug/deps/libnoc_network-c75772fc742fea65.rlib: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

/root/repo/target/debug/deps/libnoc_network-c75772fc742fea65.rmeta: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

crates/network/src/lib.rs:
crates/network/src/experiment.rs:
crates/network/src/network.rs:
crates/network/src/runner.rs:
crates/network/src/tracker.rs:
