/root/repo/target/debug/deps/ext_bursty-afb978c048293db7.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/debug/deps/ext_bursty-afb978c048293db7: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
