/root/repo/target/debug/deps/ablation_transfers-fe43ee42626aebe6.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/debug/deps/ablation_transfers-fe43ee42626aebe6: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
