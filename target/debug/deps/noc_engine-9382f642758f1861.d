/root/repo/target/debug/deps/noc_engine-9382f642758f1861.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

/root/repo/target/debug/deps/libnoc_engine-9382f642758f1861.rlib: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

/root/repo/target/debug/deps/libnoc_engine-9382f642758f1861.rmeta: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/propcheck.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/sweep.rs:
crates/engine/src/trace.rs:
crates/engine/src/warmup.rs:
