/root/repo/target/debug/deps/ext_bursty-66c678114840b05f.d: crates/bench/src/bin/ext_bursty.rs Cargo.toml

/root/repo/target/debug/deps/libext_bursty-66c678114840b05f.rmeta: crates/bench/src/bin/ext_bursty.rs Cargo.toml

crates/bench/src/bin/ext_bursty.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
