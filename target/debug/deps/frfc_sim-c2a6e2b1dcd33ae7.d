/root/repo/target/debug/deps/frfc_sim-c2a6e2b1dcd33ae7.d: src/bin/frfc-sim.rs

/root/repo/target/debug/deps/frfc_sim-c2a6e2b1dcd33ae7: src/bin/frfc-sim.rs

src/bin/frfc-sim.rs:
