/root/repo/target/debug/deps/noc_bench-bb2398675c6ea546.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libnoc_bench-bb2398675c6ea546.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libnoc_bench-bb2398675c6ea546.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
