/root/repo/target/debug/deps/noc_overhead-b63e0761187db795.d: crates/overhead/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_overhead-b63e0761187db795.rmeta: crates/overhead/src/lib.rs Cargo.toml

crates/overhead/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
