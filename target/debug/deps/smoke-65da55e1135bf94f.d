/root/repo/target/debug/deps/smoke-65da55e1135bf94f.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-65da55e1135bf94f: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
