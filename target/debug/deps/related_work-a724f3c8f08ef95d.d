/root/repo/target/debug/deps/related_work-a724f3c8f08ef95d.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-a724f3c8f08ef95d: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
