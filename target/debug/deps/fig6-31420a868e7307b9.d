/root/repo/target/debug/deps/fig6-31420a868e7307b9.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-31420a868e7307b9: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
