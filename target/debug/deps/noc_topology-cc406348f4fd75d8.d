/root/repo/target/debug/deps/noc_topology-cc406348f4fd75d8.d: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/libnoc_topology-cc406348f4fd75d8.rlib: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/libnoc_topology-cc406348f4fd75d8.rmeta: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/coord.rs:
crates/topology/src/direction.rs:
crates/topology/src/mesh.rs:
crates/topology/src/routing.rs:
