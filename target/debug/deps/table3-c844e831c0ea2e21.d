/root/repo/target/debug/deps/table3-c844e831c0ea2e21.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-c844e831c0ea2e21: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
