/root/repo/target/debug/deps/ablation_shared_pool-38e2b0873082ba99.d: crates/bench/src/bin/ablation_shared_pool.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shared_pool-38e2b0873082ba99.rmeta: crates/bench/src/bin/ablation_shared_pool.rs Cargo.toml

crates/bench/src/bin/ablation_shared_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
