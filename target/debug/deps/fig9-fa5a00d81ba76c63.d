/root/repo/target/debug/deps/fig9-fa5a00d81ba76c63.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-fa5a00d81ba76c63: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
