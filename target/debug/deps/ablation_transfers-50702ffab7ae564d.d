/root/repo/target/debug/deps/ablation_transfers-50702ffab7ae564d.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/debug/deps/ablation_transfers-50702ffab7ae564d: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
