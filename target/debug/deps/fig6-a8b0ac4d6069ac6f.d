/root/repo/target/debug/deps/fig6-a8b0ac4d6069ac6f.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a8b0ac4d6069ac6f: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
