/root/repo/target/debug/deps/trace_determinism-6c27dab4eaf8b1e5.d: tests/trace_determinism.rs

/root/repo/target/debug/deps/trace_determinism-6c27dab4eaf8b1e5: tests/trace_determinism.rs

tests/trace_determinism.rs:
