/root/repo/target/debug/deps/ext_errors-7f5476f55ae48707.d: crates/bench/src/bin/ext_errors.rs Cargo.toml

/root/repo/target/debug/deps/libext_errors-7f5476f55ae48707.rmeta: crates/bench/src/bin/ext_errors.rs Cargo.toml

crates/bench/src/bin/ext_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
