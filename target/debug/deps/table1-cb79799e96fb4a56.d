/root/repo/target/debug/deps/table1-cb79799e96fb4a56.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-cb79799e96fb4a56: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
