/root/repo/target/debug/deps/ext_sync_margin-8ef23c1c3d0fd85b.d: crates/bench/src/bin/ext_sync_margin.rs Cargo.toml

/root/repo/target/debug/deps/libext_sync_margin-8ef23c1c3d0fd85b.rmeta: crates/bench/src/bin/ext_sync_margin.rs Cargo.toml

crates/bench/src/bin/ext_sync_margin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
