/root/repo/target/debug/deps/occupancy-f54bf462221d00f2.d: crates/bench/src/bin/occupancy.rs Cargo.toml

/root/repo/target/debug/deps/liboccupancy-f54bf462221d00f2.rmeta: crates/bench/src/bin/occupancy.rs Cargo.toml

crates/bench/src/bin/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
