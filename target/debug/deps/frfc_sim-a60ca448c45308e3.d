/root/repo/target/debug/deps/frfc_sim-a60ca448c45308e3.d: src/bin/frfc-sim.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc_sim-a60ca448c45308e3.rmeta: src/bin/frfc-sim.rs Cargo.toml

src/bin/frfc-sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
