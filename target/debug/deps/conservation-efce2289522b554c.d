/root/repo/target/debug/deps/conservation-efce2289522b554c.d: tests/conservation.rs Cargo.toml

/root/repo/target/debug/deps/libconservation-efce2289522b554c.rmeta: tests/conservation.rs Cargo.toml

tests/conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
