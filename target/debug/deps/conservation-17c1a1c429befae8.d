/root/repo/target/debug/deps/conservation-17c1a1c429befae8.d: tests/conservation.rs

/root/repo/target/debug/deps/conservation-17c1a1c429befae8: tests/conservation.rs

tests/conservation.rs:
