/root/repo/target/debug/deps/fig7-f80ecd2319d715a8.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-f80ecd2319d715a8: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
