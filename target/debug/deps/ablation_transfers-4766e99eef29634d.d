/root/repo/target/debug/deps/ablation_transfers-4766e99eef29634d.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/debug/deps/ablation_transfers-4766e99eef29634d: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
