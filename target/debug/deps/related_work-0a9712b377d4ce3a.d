/root/repo/target/debug/deps/related_work-0a9712b377d4ce3a.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-0a9712b377d4ce3a: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
