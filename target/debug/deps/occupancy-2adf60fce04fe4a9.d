/root/repo/target/debug/deps/occupancy-2adf60fce04fe4a9.d: crates/bench/src/bin/occupancy.rs Cargo.toml

/root/repo/target/debug/deps/liboccupancy-2adf60fce04fe4a9.rmeta: crates/bench/src/bin/occupancy.rs Cargo.toml

crates/bench/src/bin/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
