/root/repo/target/debug/deps/ablation_transfers-57dc8fac620e68a4.d: crates/bench/src/bin/ablation_transfers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_transfers-57dc8fac620e68a4.rmeta: crates/bench/src/bin/ablation_transfers.rs Cargo.toml

crates/bench/src/bin/ablation_transfers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
