/root/repo/target/debug/deps/occupancy-968e20f177384bc1.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/debug/deps/occupancy-968e20f177384bc1: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
