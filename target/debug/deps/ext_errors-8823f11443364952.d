/root/repo/target/debug/deps/ext_errors-8823f11443364952.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/debug/deps/ext_errors-8823f11443364952: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
