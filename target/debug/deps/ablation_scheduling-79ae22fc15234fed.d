/root/repo/target/debug/deps/ablation_scheduling-79ae22fc15234fed.d: crates/bench/src/bin/ablation_scheduling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_scheduling-79ae22fc15234fed.rmeta: crates/bench/src/bin/ablation_scheduling.rs Cargo.toml

crates/bench/src/bin/ablation_scheduling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
