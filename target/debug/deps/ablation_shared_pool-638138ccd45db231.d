/root/repo/target/debug/deps/ablation_shared_pool-638138ccd45db231.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/debug/deps/ablation_shared_pool-638138ccd45db231: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
