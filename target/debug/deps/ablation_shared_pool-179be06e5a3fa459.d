/root/repo/target/debug/deps/ablation_shared_pool-179be06e5a3fa459.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/debug/deps/ablation_shared_pool-179be06e5a3fa459: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
