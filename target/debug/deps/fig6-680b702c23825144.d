/root/repo/target/debug/deps/fig6-680b702c23825144.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-680b702c23825144: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
