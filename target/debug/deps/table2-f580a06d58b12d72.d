/root/repo/target/debug/deps/table2-f580a06d58b12d72.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f580a06d58b12d72: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
