/root/repo/target/debug/deps/frfc_sim-7d52b6ac3da2c2b5.d: src/bin/frfc-sim.rs

/root/repo/target/debug/deps/frfc_sim-7d52b6ac3da2c2b5: src/bin/frfc-sim.rs

src/bin/frfc-sim.rs:
