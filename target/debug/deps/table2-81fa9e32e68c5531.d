/root/repo/target/debug/deps/table2-81fa9e32e68c5531.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-81fa9e32e68c5531: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
