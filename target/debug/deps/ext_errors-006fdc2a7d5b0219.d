/root/repo/target/debug/deps/ext_errors-006fdc2a7d5b0219.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/debug/deps/ext_errors-006fdc2a7d5b0219: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
