/root/repo/target/debug/deps/extensions-9a49d2ab4a324eff.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-9a49d2ab4a324eff.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
