/root/repo/target/debug/deps/flit_reservation-1310221b1a7bbcc2.d: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

/root/repo/target/debug/deps/flit_reservation-1310221b1a7bbcc2: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

crates/flit-reservation/src/lib.rs:
crates/flit-reservation/src/config.rs:
crates/flit-reservation/src/input_table.rs:
crates/flit-reservation/src/output_table.rs:
crates/flit-reservation/src/router.rs:
crates/flit-reservation/src/transfers.rs:
