/root/repo/target/debug/deps/network-2c88645ea6ca4a63.d: crates/bench/benches/network.rs

/root/repo/target/debug/deps/network-2c88645ea6ca4a63: crates/bench/benches/network.rs

crates/bench/benches/network.rs:
