/root/repo/target/debug/deps/reservation_properties-e39365a659fb7931.d: tests/reservation_properties.rs Cargo.toml

/root/repo/target/debug/deps/libreservation_properties-e39365a659fb7931.rmeta: tests/reservation_properties.rs Cargo.toml

tests/reservation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
