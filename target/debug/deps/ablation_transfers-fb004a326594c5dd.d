/root/repo/target/debug/deps/ablation_transfers-fb004a326594c5dd.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/debug/deps/ablation_transfers-fb004a326594c5dd: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
