/root/repo/target/debug/deps/ext_bursty-609a184f1accd421.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/debug/deps/ext_bursty-609a184f1accd421: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
