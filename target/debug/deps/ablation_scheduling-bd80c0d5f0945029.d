/root/repo/target/debug/deps/ablation_scheduling-bd80c0d5f0945029.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/debug/deps/ablation_scheduling-bd80c0d5f0945029: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
