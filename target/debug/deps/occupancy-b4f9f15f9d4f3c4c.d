/root/repo/target/debug/deps/occupancy-b4f9f15f9d4f3c4c.d: crates/bench/src/bin/occupancy.rs Cargo.toml

/root/repo/target/debug/deps/liboccupancy-b4f9f15f9d4f3c4c.rmeta: crates/bench/src/bin/occupancy.rs Cargo.toml

crates/bench/src/bin/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
