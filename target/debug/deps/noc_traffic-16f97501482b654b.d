/root/repo/target/debug/deps/noc_traffic-16f97501482b654b.d: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

/root/repo/target/debug/deps/libnoc_traffic-16f97501482b654b.rlib: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

/root/repo/target/debug/deps/libnoc_traffic-16f97501482b654b.rmeta: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

crates/traffic/src/lib.rs:
crates/traffic/src/burst.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/packet.rs:
crates/traffic/src/pattern.rs:
