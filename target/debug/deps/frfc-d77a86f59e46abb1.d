/root/repo/target/debug/deps/frfc-d77a86f59e46abb1.d: src/lib.rs

/root/repo/target/debug/deps/libfrfc-d77a86f59e46abb1.rlib: src/lib.rs

/root/repo/target/debug/deps/libfrfc-d77a86f59e46abb1.rmeta: src/lib.rs

src/lib.rs:
