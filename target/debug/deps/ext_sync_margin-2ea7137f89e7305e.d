/root/repo/target/debug/deps/ext_sync_margin-2ea7137f89e7305e.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/debug/deps/ext_sync_margin-2ea7137f89e7305e: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
