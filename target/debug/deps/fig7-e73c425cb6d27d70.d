/root/repo/target/debug/deps/fig7-e73c425cb6d27d70.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-e73c425cb6d27d70: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
