/root/repo/target/debug/deps/ablation_shared_pool-2eb8a486f569f02e.d: crates/bench/src/bin/ablation_shared_pool.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shared_pool-2eb8a486f569f02e.rmeta: crates/bench/src/bin/ablation_shared_pool.rs Cargo.toml

crates/bench/src/bin/ablation_shared_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
