/root/repo/target/debug/deps/noc_overhead-3b5f5f81b82a9f7e.d: crates/overhead/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_overhead-3b5f5f81b82a9f7e.rmeta: crates/overhead/src/lib.rs Cargo.toml

crates/overhead/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
