/root/repo/target/debug/deps/noc_bench-dbf81021c77dedc8.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libnoc_bench-dbf81021c77dedc8.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libnoc_bench-dbf81021c77dedc8.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
