/root/repo/target/debug/deps/frfc-ae8289355c59e237.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc-ae8289355c59e237.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
