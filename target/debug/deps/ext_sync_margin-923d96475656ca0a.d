/root/repo/target/debug/deps/ext_sync_margin-923d96475656ca0a.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/debug/deps/ext_sync_margin-923d96475656ca0a: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
