/root/repo/target/debug/deps/frfc_sim-009f24b5593d7173.d: src/bin/frfc-sim.rs

/root/repo/target/debug/deps/frfc_sim-009f24b5593d7173: src/bin/frfc-sim.rs

src/bin/frfc-sim.rs:
