/root/repo/target/debug/deps/noc_overhead-7ec91ebb00fbbe9e.d: crates/overhead/src/lib.rs

/root/repo/target/debug/deps/libnoc_overhead-7ec91ebb00fbbe9e.rlib: crates/overhead/src/lib.rs

/root/repo/target/debug/deps/libnoc_overhead-7ec91ebb00fbbe9e.rmeta: crates/overhead/src/lib.rs

crates/overhead/src/lib.rs:
