/root/repo/target/debug/deps/reservation_properties-21b9660cc63aef8d.d: tests/reservation_properties.rs

/root/repo/target/debug/deps/reservation_properties-21b9660cc63aef8d: tests/reservation_properties.rs

tests/reservation_properties.rs:
