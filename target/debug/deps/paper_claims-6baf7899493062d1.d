/root/repo/target/debug/deps/paper_claims-6baf7899493062d1.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-6baf7899493062d1: tests/paper_claims.rs

tests/paper_claims.rs:
