/root/repo/target/debug/deps/ext_errors-74e85132db27fe9c.d: crates/bench/src/bin/ext_errors.rs Cargo.toml

/root/repo/target/debug/deps/libext_errors-74e85132db27fe9c.rmeta: crates/bench/src/bin/ext_errors.rs Cargo.toml

crates/bench/src/bin/ext_errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
