/root/repo/target/debug/deps/frfc-66cb7359fc6634f8.d: src/lib.rs

/root/repo/target/debug/deps/frfc-66cb7359fc6634f8: src/lib.rs

src/lib.rs:
