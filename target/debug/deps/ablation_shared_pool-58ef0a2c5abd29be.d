/root/repo/target/debug/deps/ablation_shared_pool-58ef0a2c5abd29be.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/debug/deps/ablation_shared_pool-58ef0a2c5abd29be: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
