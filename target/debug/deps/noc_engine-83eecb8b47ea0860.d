/root/repo/target/debug/deps/noc_engine-83eecb8b47ea0860.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_engine-83eecb8b47ea0860.rmeta: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/propcheck.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/sweep.rs:
crates/engine/src/trace.rs:
crates/engine/src/warmup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
