/root/repo/target/debug/deps/noc_engine-b8055bbc34d18eab.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

/root/repo/target/debug/deps/noc_engine-b8055bbc34d18eab: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/propcheck.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/sweep.rs:
crates/engine/src/trace.rs:
crates/engine/src/warmup.rs:
