/root/repo/target/debug/deps/table1-43ec1aa5d24e1520.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-43ec1aa5d24e1520: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
