/root/repo/target/debug/deps/ext_errors-1a4177e8ef003b42.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/debug/deps/ext_errors-1a4177e8ef003b42: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
