/root/repo/target/debug/deps/table2-48983a2993fa51de.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-48983a2993fa51de: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
