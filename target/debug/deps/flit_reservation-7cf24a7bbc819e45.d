/root/repo/target/debug/deps/flit_reservation-7cf24a7bbc819e45.d: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs Cargo.toml

/root/repo/target/debug/deps/libflit_reservation-7cf24a7bbc819e45.rmeta: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs Cargo.toml

crates/flit-reservation/src/lib.rs:
crates/flit-reservation/src/config.rs:
crates/flit-reservation/src/input_table.rs:
crates/flit-reservation/src/output_table.rs:
crates/flit-reservation/src/router.rs:
crates/flit-reservation/src/transfers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
