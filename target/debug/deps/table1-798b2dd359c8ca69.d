/root/repo/target/debug/deps/table1-798b2dd359c8ca69.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-798b2dd359c8ca69: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
