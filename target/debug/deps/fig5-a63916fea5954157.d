/root/repo/target/debug/deps/fig5-a63916fea5954157.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-a63916fea5954157: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
