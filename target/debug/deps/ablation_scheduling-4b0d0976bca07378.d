/root/repo/target/debug/deps/ablation_scheduling-4b0d0976bca07378.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/debug/deps/ablation_scheduling-4b0d0976bca07378: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
