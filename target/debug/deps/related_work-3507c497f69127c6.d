/root/repo/target/debug/deps/related_work-3507c497f69127c6.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-3507c497f69127c6: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
