/root/repo/target/debug/deps/occupancy-0b63e025e6a1d5f9.d: crates/bench/src/bin/occupancy.rs Cargo.toml

/root/repo/target/debug/deps/liboccupancy-0b63e025e6a1d5f9.rmeta: crates/bench/src/bin/occupancy.rs Cargo.toml

crates/bench/src/bin/occupancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
