/root/repo/target/debug/deps/frfc-2f0fc1756ce542f2.d: src/lib.rs

/root/repo/target/debug/deps/frfc-2f0fc1756ce542f2: src/lib.rs

src/lib.rs:
