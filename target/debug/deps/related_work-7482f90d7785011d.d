/root/repo/target/debug/deps/related_work-7482f90d7785011d.d: crates/bench/src/bin/related_work.rs

/root/repo/target/debug/deps/related_work-7482f90d7785011d: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
