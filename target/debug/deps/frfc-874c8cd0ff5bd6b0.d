/root/repo/target/debug/deps/frfc-874c8cd0ff5bd6b0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc-874c8cd0ff5bd6b0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
