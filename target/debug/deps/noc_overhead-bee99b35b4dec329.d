/root/repo/target/debug/deps/noc_overhead-bee99b35b4dec329.d: crates/overhead/src/lib.rs

/root/repo/target/debug/deps/noc_overhead-bee99b35b4dec329: crates/overhead/src/lib.rs

crates/overhead/src/lib.rs:
