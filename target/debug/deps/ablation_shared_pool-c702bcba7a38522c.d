/root/repo/target/debug/deps/ablation_shared_pool-c702bcba7a38522c.d: crates/bench/src/bin/ablation_shared_pool.rs Cargo.toml

/root/repo/target/debug/deps/libablation_shared_pool-c702bcba7a38522c.rmeta: crates/bench/src/bin/ablation_shared_pool.rs Cargo.toml

crates/bench/src/bin/ablation_shared_pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
