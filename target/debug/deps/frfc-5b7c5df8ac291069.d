/root/repo/target/debug/deps/frfc-5b7c5df8ac291069.d: src/lib.rs

/root/repo/target/debug/deps/libfrfc-5b7c5df8ac291069.rlib: src/lib.rs

/root/repo/target/debug/deps/libfrfc-5b7c5df8ac291069.rmeta: src/lib.rs

src/lib.rs:
