/root/repo/target/debug/deps/fig9-08fee39aaa3f99fd.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-08fee39aaa3f99fd: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
