/root/repo/target/debug/deps/occupancy-f46932af7bb9a8e3.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/debug/deps/occupancy-f46932af7bb9a8e3: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
