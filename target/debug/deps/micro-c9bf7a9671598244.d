/root/repo/target/debug/deps/micro-c9bf7a9671598244.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-c9bf7a9671598244.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
