/root/repo/target/debug/deps/noc_bench-c3ac5e7bdd3cd156.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_bench-c3ac5e7bdd3cd156.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
