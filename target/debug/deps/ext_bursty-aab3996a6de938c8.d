/root/repo/target/debug/deps/ext_bursty-aab3996a6de938c8.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/debug/deps/ext_bursty-aab3996a6de938c8: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
