/root/repo/target/debug/deps/ext_sync_margin-341010781e323d16.d: crates/bench/src/bin/ext_sync_margin.rs Cargo.toml

/root/repo/target/debug/deps/libext_sync_margin-341010781e323d16.rmeta: crates/bench/src/bin/ext_sync_margin.rs Cargo.toml

crates/bench/src/bin/ext_sync_margin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
