/root/repo/target/debug/deps/noc_flow-5b0251b6ba484bb7.d: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

/root/repo/target/debug/deps/libnoc_flow-5b0251b6ba484bb7.rlib: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

/root/repo/target/debug/deps/libnoc_flow-5b0251b6ba484bb7.rmeta: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

crates/flow/src/lib.rs:
crates/flow/src/buffer.rs:
crates/flow/src/emit.rs:
crates/flow/src/flit.rs:
crates/flow/src/link.rs:
crates/flow/src/router.rs:
crates/flow/src/timing.rs:
