/root/repo/target/debug/deps/ext_bursty-3d2dda648e055ea1.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/debug/deps/ext_bursty-3d2dda648e055ea1: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
