/root/repo/target/debug/deps/ablation_shared_pool-039560b5711710b1.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/debug/deps/ablation_shared_pool-039560b5711710b1: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
