/root/repo/target/debug/deps/conservation-10312a6788d894aa.d: tests/conservation.rs

/root/repo/target/debug/deps/conservation-10312a6788d894aa: tests/conservation.rs

tests/conservation.rs:
