/root/repo/target/debug/deps/fig5-afa7c328e4699457.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-afa7c328e4699457: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
