/root/repo/target/debug/deps/noc_traffic-73a58b0f0c2342c1.d: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

/root/repo/target/debug/deps/noc_traffic-73a58b0f0c2342c1: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

crates/traffic/src/lib.rs:
crates/traffic/src/burst.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/packet.rs:
crates/traffic/src/pattern.rs:
