/root/repo/target/debug/deps/noc_vc-2ed325559355fafb.d: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

/root/repo/target/debug/deps/noc_vc-2ed325559355fafb: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

crates/vc/src/lib.rs:
crates/vc/src/config.rs:
crates/vc/src/router.rs:
