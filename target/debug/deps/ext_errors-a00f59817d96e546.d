/root/repo/target/debug/deps/ext_errors-a00f59817d96e546.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/debug/deps/ext_errors-a00f59817d96e546: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
