/root/repo/target/debug/deps/noc_topology-4e1ebc5ed38da8b9.d: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

/root/repo/target/debug/deps/noc_topology-4e1ebc5ed38da8b9: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/coord.rs:
crates/topology/src/direction.rs:
crates/topology/src/mesh.rs:
crates/topology/src/routing.rs:
