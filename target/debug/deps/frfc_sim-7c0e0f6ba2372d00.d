/root/repo/target/debug/deps/frfc_sim-7c0e0f6ba2372d00.d: src/bin/frfc-sim.rs

/root/repo/target/debug/deps/frfc_sim-7c0e0f6ba2372d00: src/bin/frfc-sim.rs

src/bin/frfc-sim.rs:
