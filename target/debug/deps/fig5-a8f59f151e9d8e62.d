/root/repo/target/debug/deps/fig5-a8f59f151e9d8e62.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-a8f59f151e9d8e62: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
