/root/repo/target/debug/deps/smoke-b3127540d5759e98.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-b3127540d5759e98: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
