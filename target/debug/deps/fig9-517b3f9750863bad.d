/root/repo/target/debug/deps/fig9-517b3f9750863bad.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-517b3f9750863bad: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
