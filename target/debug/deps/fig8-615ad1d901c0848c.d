/root/repo/target/debug/deps/fig8-615ad1d901c0848c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-615ad1d901c0848c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
