/root/repo/target/debug/deps/fig6-2ac53e60b376ba6c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-2ac53e60b376ba6c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
