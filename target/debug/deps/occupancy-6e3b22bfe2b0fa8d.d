/root/repo/target/debug/deps/occupancy-6e3b22bfe2b0fa8d.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/debug/deps/occupancy-6e3b22bfe2b0fa8d: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
