/root/repo/target/debug/deps/table1-a719726b65338af1.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a719726b65338af1: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
