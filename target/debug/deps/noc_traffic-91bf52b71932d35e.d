/root/repo/target/debug/deps/noc_traffic-91bf52b71932d35e.d: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_traffic-91bf52b71932d35e.rmeta: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/burst.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/packet.rs:
crates/traffic/src/pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
