/root/repo/target/debug/deps/noc_flow-fe0430c6ecd19247.d: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libnoc_flow-fe0430c6ecd19247.rmeta: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs Cargo.toml

crates/flow/src/lib.rs:
crates/flow/src/buffer.rs:
crates/flow/src/emit.rs:
crates/flow/src/flit.rs:
crates/flow/src/link.rs:
crates/flow/src/router.rs:
crates/flow/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
