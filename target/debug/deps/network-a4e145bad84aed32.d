/root/repo/target/debug/deps/network-a4e145bad84aed32.d: crates/bench/benches/network.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork-a4e145bad84aed32.rmeta: crates/bench/benches/network.rs Cargo.toml

crates/bench/benches/network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
