/root/repo/target/debug/deps/trace_determinism-4ea669e270b42ef3.d: tests/trace_determinism.rs

/root/repo/target/debug/deps/trace_determinism-4ea669e270b42ef3: tests/trace_determinism.rs

tests/trace_determinism.rs:
