/root/repo/target/debug/deps/table3-7c0cb58c6ed96bc7.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-7c0cb58c6ed96bc7: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
