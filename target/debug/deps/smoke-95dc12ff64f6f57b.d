/root/repo/target/debug/deps/smoke-95dc12ff64f6f57b.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-95dc12ff64f6f57b: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
