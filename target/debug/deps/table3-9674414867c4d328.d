/root/repo/target/debug/deps/table3-9674414867c4d328.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-9674414867c4d328: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
