/root/repo/target/debug/deps/flit_reservation-d1e0abfd83218384.d: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

/root/repo/target/debug/deps/libflit_reservation-d1e0abfd83218384.rlib: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

/root/repo/target/debug/deps/libflit_reservation-d1e0abfd83218384.rmeta: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

crates/flit-reservation/src/lib.rs:
crates/flit-reservation/src/config.rs:
crates/flit-reservation/src/input_table.rs:
crates/flit-reservation/src/output_table.rs:
crates/flit-reservation/src/router.rs:
crates/flit-reservation/src/transfers.rs:
