/root/repo/target/debug/deps/noc_vc-2d43731bfd70ad6b.d: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

/root/repo/target/debug/deps/libnoc_vc-2d43731bfd70ad6b.rlib: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

/root/repo/target/debug/deps/libnoc_vc-2d43731bfd70ad6b.rmeta: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

crates/vc/src/lib.rs:
crates/vc/src/config.rs:
crates/vc/src/router.rs:
