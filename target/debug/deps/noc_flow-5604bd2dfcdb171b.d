/root/repo/target/debug/deps/noc_flow-5604bd2dfcdb171b.d: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

/root/repo/target/debug/deps/noc_flow-5604bd2dfcdb171b: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

crates/flow/src/lib.rs:
crates/flow/src/buffer.rs:
crates/flow/src/emit.rs:
crates/flow/src/flit.rs:
crates/flow/src/link.rs:
crates/flow/src/router.rs:
crates/flow/src/timing.rs:
