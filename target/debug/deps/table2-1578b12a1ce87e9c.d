/root/repo/target/debug/deps/table2-1578b12a1ce87e9c.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-1578b12a1ce87e9c: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
