/root/repo/target/debug/deps/conservation-54dbd749b262f8e2.d: tests/conservation.rs Cargo.toml

/root/repo/target/debug/deps/libconservation-54dbd749b262f8e2.rmeta: tests/conservation.rs Cargo.toml

tests/conservation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
