/root/repo/target/debug/deps/ablation_transfers-1a497835b4051036.d: crates/bench/src/bin/ablation_transfers.rs Cargo.toml

/root/repo/target/debug/deps/libablation_transfers-1a497835b4051036.rmeta: crates/bench/src/bin/ablation_transfers.rs Cargo.toml

crates/bench/src/bin/ablation_transfers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
