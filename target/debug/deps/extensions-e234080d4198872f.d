/root/repo/target/debug/deps/extensions-e234080d4198872f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-e234080d4198872f: tests/extensions.rs

tests/extensions.rs:
