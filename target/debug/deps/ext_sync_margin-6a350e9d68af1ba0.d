/root/repo/target/debug/deps/ext_sync_margin-6a350e9d68af1ba0.d: crates/bench/src/bin/ext_sync_margin.rs Cargo.toml

/root/repo/target/debug/deps/libext_sync_margin-6a350e9d68af1ba0.rmeta: crates/bench/src/bin/ext_sync_margin.rs Cargo.toml

crates/bench/src/bin/ext_sync_margin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
