/root/repo/target/debug/deps/fig8-fe09f03c2add5192.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-fe09f03c2add5192: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
