/root/repo/target/debug/deps/frfc-5b9073ea5bdf4b9a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfrfc-5b9073ea5bdf4b9a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
