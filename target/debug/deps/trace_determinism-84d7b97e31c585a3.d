/root/repo/target/debug/deps/trace_determinism-84d7b97e31c585a3.d: tests/trace_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_determinism-84d7b97e31c585a3.rmeta: tests/trace_determinism.rs Cargo.toml

tests/trace_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
