/root/repo/target/debug/deps/fig5-937e37dc2c834e76.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-937e37dc2c834e76: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
