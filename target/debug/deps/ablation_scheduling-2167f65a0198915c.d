/root/repo/target/debug/deps/ablation_scheduling-2167f65a0198915c.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/debug/deps/ablation_scheduling-2167f65a0198915c: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
