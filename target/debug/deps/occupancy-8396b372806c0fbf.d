/root/repo/target/debug/deps/occupancy-8396b372806c0fbf.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/debug/deps/occupancy-8396b372806c0fbf: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
