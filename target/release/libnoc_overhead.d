/root/repo/target/release/libnoc_overhead.rlib: /root/repo/crates/overhead/src/lib.rs
