/root/repo/target/release/examples/trace_audit-2696b63856380923.d: examples/trace_audit.rs

/root/repo/target/release/examples/trace_audit-2696b63856380923: examples/trace_audit.rs

examples/trace_audit.rs:
