/root/repo/target/release/examples/adversarial_traffic-d82cdfef6db5fe38.d: examples/adversarial_traffic.rs

/root/repo/target/release/examples/adversarial_traffic-d82cdfef6db5fe38: examples/adversarial_traffic.rs

examples/adversarial_traffic.rs:
