/root/repo/target/release/deps/fig7-194aef089f071a54.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-194aef089f071a54: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
