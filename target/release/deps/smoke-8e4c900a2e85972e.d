/root/repo/target/release/deps/smoke-8e4c900a2e85972e.d: crates/bench/src/bin/smoke.rs

/root/repo/target/release/deps/smoke-8e4c900a2e85972e: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
