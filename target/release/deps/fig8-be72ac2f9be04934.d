/root/repo/target/release/deps/fig8-be72ac2f9be04934.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-be72ac2f9be04934: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
