/root/repo/target/release/deps/noc_network-04d195000c084573.d: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

/root/repo/target/release/deps/libnoc_network-04d195000c084573.rlib: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

/root/repo/target/release/deps/libnoc_network-04d195000c084573.rmeta: crates/network/src/lib.rs crates/network/src/experiment.rs crates/network/src/network.rs crates/network/src/runner.rs crates/network/src/tracker.rs

crates/network/src/lib.rs:
crates/network/src/experiment.rs:
crates/network/src/network.rs:
crates/network/src/runner.rs:
crates/network/src/tracker.rs:
