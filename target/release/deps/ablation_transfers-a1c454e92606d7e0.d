/root/repo/target/release/deps/ablation_transfers-a1c454e92606d7e0.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/release/deps/ablation_transfers-a1c454e92606d7e0: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
