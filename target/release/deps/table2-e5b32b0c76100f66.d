/root/repo/target/release/deps/table2-e5b32b0c76100f66.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-e5b32b0c76100f66: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
