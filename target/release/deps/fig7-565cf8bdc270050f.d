/root/repo/target/release/deps/fig7-565cf8bdc270050f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-565cf8bdc270050f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
