/root/repo/target/release/deps/frfc_sim-16b92b3a4e84c9ca.d: src/bin/frfc-sim.rs

/root/repo/target/release/deps/frfc_sim-16b92b3a4e84c9ca: src/bin/frfc-sim.rs

src/bin/frfc-sim.rs:
