/root/repo/target/release/deps/network-8ed52bb659e27ffa.d: crates/bench/benches/network.rs

/root/repo/target/release/deps/network-8ed52bb659e27ffa: crates/bench/benches/network.rs

crates/bench/benches/network.rs:
