/root/repo/target/release/deps/fig5-bcbf5b77145190cf.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-bcbf5b77145190cf: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
