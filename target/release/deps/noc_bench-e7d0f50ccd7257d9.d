/root/repo/target/release/deps/noc_bench-e7d0f50ccd7257d9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/noc_bench-e7d0f50ccd7257d9: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
