/root/repo/target/release/deps/table3-7c343b50c654a87a.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-7c343b50c654a87a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
