/root/repo/target/release/deps/ablation_scheduling-196e35ed4806640b.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/release/deps/ablation_scheduling-196e35ed4806640b: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
