/root/repo/target/release/deps/table2-06b471162ac19713.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-06b471162ac19713: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
