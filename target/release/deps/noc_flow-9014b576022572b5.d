/root/repo/target/release/deps/noc_flow-9014b576022572b5.d: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

/root/repo/target/release/deps/libnoc_flow-9014b576022572b5.rlib: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

/root/repo/target/release/deps/libnoc_flow-9014b576022572b5.rmeta: crates/flow/src/lib.rs crates/flow/src/buffer.rs crates/flow/src/emit.rs crates/flow/src/flit.rs crates/flow/src/link.rs crates/flow/src/router.rs crates/flow/src/timing.rs

crates/flow/src/lib.rs:
crates/flow/src/buffer.rs:
crates/flow/src/emit.rs:
crates/flow/src/flit.rs:
crates/flow/src/link.rs:
crates/flow/src/router.rs:
crates/flow/src/timing.rs:
