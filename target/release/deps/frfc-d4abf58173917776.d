/root/repo/target/release/deps/frfc-d4abf58173917776.d: src/lib.rs

/root/repo/target/release/deps/libfrfc-d4abf58173917776.rlib: src/lib.rs

/root/repo/target/release/deps/libfrfc-d4abf58173917776.rmeta: src/lib.rs

src/lib.rs:
