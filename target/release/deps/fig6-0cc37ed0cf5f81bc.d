/root/repo/target/release/deps/fig6-0cc37ed0cf5f81bc.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-0cc37ed0cf5f81bc: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
