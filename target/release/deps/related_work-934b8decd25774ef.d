/root/repo/target/release/deps/related_work-934b8decd25774ef.d: crates/bench/src/bin/related_work.rs

/root/repo/target/release/deps/related_work-934b8decd25774ef: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
