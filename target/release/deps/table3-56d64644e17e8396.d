/root/repo/target/release/deps/table3-56d64644e17e8396.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-56d64644e17e8396: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
