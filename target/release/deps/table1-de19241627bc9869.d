/root/repo/target/release/deps/table1-de19241627bc9869.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-de19241627bc9869: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
