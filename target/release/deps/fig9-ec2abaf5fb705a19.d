/root/repo/target/release/deps/fig9-ec2abaf5fb705a19.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-ec2abaf5fb705a19: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
