/root/repo/target/release/deps/ext_bursty-ace57387a6599bd6.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/release/deps/ext_bursty-ace57387a6599bd6: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
