/root/repo/target/release/deps/related_work-c7f0b74d6475dc04.d: crates/bench/src/bin/related_work.rs

/root/repo/target/release/deps/related_work-c7f0b74d6475dc04: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
