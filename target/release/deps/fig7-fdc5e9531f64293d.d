/root/repo/target/release/deps/fig7-fdc5e9531f64293d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-fdc5e9531f64293d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
