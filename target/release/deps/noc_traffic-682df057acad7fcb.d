/root/repo/target/release/deps/noc_traffic-682df057acad7fcb.d: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

/root/repo/target/release/deps/libnoc_traffic-682df057acad7fcb.rlib: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

/root/repo/target/release/deps/libnoc_traffic-682df057acad7fcb.rmeta: crates/traffic/src/lib.rs crates/traffic/src/burst.rs crates/traffic/src/generator.rs crates/traffic/src/injection.rs crates/traffic/src/packet.rs crates/traffic/src/pattern.rs

crates/traffic/src/lib.rs:
crates/traffic/src/burst.rs:
crates/traffic/src/generator.rs:
crates/traffic/src/injection.rs:
crates/traffic/src/packet.rs:
crates/traffic/src/pattern.rs:
