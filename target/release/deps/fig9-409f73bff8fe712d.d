/root/repo/target/release/deps/fig9-409f73bff8fe712d.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-409f73bff8fe712d: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
