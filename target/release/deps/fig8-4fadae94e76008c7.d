/root/repo/target/release/deps/fig8-4fadae94e76008c7.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-4fadae94e76008c7: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
