/root/repo/target/release/deps/micro-7b3f590ae5c1a2d6.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-7b3f590ae5c1a2d6: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
