/root/repo/target/release/deps/ext_bursty-261e3038a44d5b09.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/release/deps/ext_bursty-261e3038a44d5b09: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
