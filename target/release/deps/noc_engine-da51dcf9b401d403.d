/root/repo/target/release/deps/noc_engine-da51dcf9b401d403.d: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

/root/repo/target/release/deps/libnoc_engine-da51dcf9b401d403.rlib: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

/root/repo/target/release/deps/libnoc_engine-da51dcf9b401d403.rmeta: crates/engine/src/lib.rs crates/engine/src/cycle.rs crates/engine/src/propcheck.rs crates/engine/src/rng.rs crates/engine/src/stats.rs crates/engine/src/sweep.rs crates/engine/src/trace.rs crates/engine/src/warmup.rs

crates/engine/src/lib.rs:
crates/engine/src/cycle.rs:
crates/engine/src/propcheck.rs:
crates/engine/src/rng.rs:
crates/engine/src/stats.rs:
crates/engine/src/sweep.rs:
crates/engine/src/trace.rs:
crates/engine/src/warmup.rs:
