/root/repo/target/release/deps/ablation_scheduling-8e6209f91f1624a0.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/release/deps/ablation_scheduling-8e6209f91f1624a0: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
