/root/repo/target/release/deps/noc_bench-02ae6638e65dae1d.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libnoc_bench-02ae6638e65dae1d.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libnoc_bench-02ae6638e65dae1d.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
