/root/repo/target/release/deps/table1-a7a29b67fcb66155.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-a7a29b67fcb66155: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
