/root/repo/target/release/deps/flit_reservation-67937cab3c57442f.d: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

/root/repo/target/release/deps/libflit_reservation-67937cab3c57442f.rlib: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

/root/repo/target/release/deps/libflit_reservation-67937cab3c57442f.rmeta: crates/flit-reservation/src/lib.rs crates/flit-reservation/src/config.rs crates/flit-reservation/src/input_table.rs crates/flit-reservation/src/output_table.rs crates/flit-reservation/src/router.rs crates/flit-reservation/src/transfers.rs

crates/flit-reservation/src/lib.rs:
crates/flit-reservation/src/config.rs:
crates/flit-reservation/src/input_table.rs:
crates/flit-reservation/src/output_table.rs:
crates/flit-reservation/src/router.rs:
crates/flit-reservation/src/transfers.rs:
