/root/repo/target/release/deps/ext_bursty-5361e08fb3dc54d7.d: crates/bench/src/bin/ext_bursty.rs

/root/repo/target/release/deps/ext_bursty-5361e08fb3dc54d7: crates/bench/src/bin/ext_bursty.rs

crates/bench/src/bin/ext_bursty.rs:
