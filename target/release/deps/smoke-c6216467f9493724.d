/root/repo/target/release/deps/smoke-c6216467f9493724.d: crates/bench/src/bin/smoke.rs

/root/repo/target/release/deps/smoke-c6216467f9493724: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
