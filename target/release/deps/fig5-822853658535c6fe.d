/root/repo/target/release/deps/fig5-822853658535c6fe.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-822853658535c6fe: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
