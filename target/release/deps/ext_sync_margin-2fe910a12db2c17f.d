/root/repo/target/release/deps/ext_sync_margin-2fe910a12db2c17f.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/release/deps/ext_sync_margin-2fe910a12db2c17f: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
