/root/repo/target/release/deps/fig6-dea3bcace687ce94.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-dea3bcace687ce94: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
