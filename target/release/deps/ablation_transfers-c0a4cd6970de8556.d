/root/repo/target/release/deps/ablation_transfers-c0a4cd6970de8556.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/release/deps/ablation_transfers-c0a4cd6970de8556: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
