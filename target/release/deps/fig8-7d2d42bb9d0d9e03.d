/root/repo/target/release/deps/fig8-7d2d42bb9d0d9e03.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-7d2d42bb9d0d9e03: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
