/root/repo/target/release/deps/table3-72b20f6e6240a06a.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-72b20f6e6240a06a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
