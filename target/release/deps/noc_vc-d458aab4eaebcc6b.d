/root/repo/target/release/deps/noc_vc-d458aab4eaebcc6b.d: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

/root/repo/target/release/deps/libnoc_vc-d458aab4eaebcc6b.rlib: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

/root/repo/target/release/deps/libnoc_vc-d458aab4eaebcc6b.rmeta: crates/vc/src/lib.rs crates/vc/src/config.rs crates/vc/src/router.rs

crates/vc/src/lib.rs:
crates/vc/src/config.rs:
crates/vc/src/router.rs:
