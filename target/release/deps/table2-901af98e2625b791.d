/root/repo/target/release/deps/table2-901af98e2625b791.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-901af98e2625b791: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
