/root/repo/target/release/deps/ablation_transfers-7afe776dfa23c557.d: crates/bench/src/bin/ablation_transfers.rs

/root/repo/target/release/deps/ablation_transfers-7afe776dfa23c557: crates/bench/src/bin/ablation_transfers.rs

crates/bench/src/bin/ablation_transfers.rs:
