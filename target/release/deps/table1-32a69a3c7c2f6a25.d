/root/repo/target/release/deps/table1-32a69a3c7c2f6a25.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-32a69a3c7c2f6a25: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
