/root/repo/target/release/deps/noc_overhead-35a516362ed4898f.d: crates/overhead/src/lib.rs

/root/repo/target/release/deps/libnoc_overhead-35a516362ed4898f.rlib: crates/overhead/src/lib.rs

/root/repo/target/release/deps/libnoc_overhead-35a516362ed4898f.rmeta: crates/overhead/src/lib.rs

crates/overhead/src/lib.rs:
