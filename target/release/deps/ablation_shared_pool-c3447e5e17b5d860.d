/root/repo/target/release/deps/ablation_shared_pool-c3447e5e17b5d860.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/release/deps/ablation_shared_pool-c3447e5e17b5d860: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
