/root/repo/target/release/deps/ext_sync_margin-8a6e9a4ccbdfd64c.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/release/deps/ext_sync_margin-8a6e9a4ccbdfd64c: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
