/root/repo/target/release/deps/occupancy-aae34337fd8bcc2e.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/release/deps/occupancy-aae34337fd8bcc2e: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
