/root/repo/target/release/deps/related_work-e1b788095131d318.d: crates/bench/src/bin/related_work.rs

/root/repo/target/release/deps/related_work-e1b788095131d318: crates/bench/src/bin/related_work.rs

crates/bench/src/bin/related_work.rs:
