/root/repo/target/release/deps/occupancy-1e07199e320a764e.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/release/deps/occupancy-1e07199e320a764e: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
