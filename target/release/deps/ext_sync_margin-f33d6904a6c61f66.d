/root/repo/target/release/deps/ext_sync_margin-f33d6904a6c61f66.d: crates/bench/src/bin/ext_sync_margin.rs

/root/repo/target/release/deps/ext_sync_margin-f33d6904a6c61f66: crates/bench/src/bin/ext_sync_margin.rs

crates/bench/src/bin/ext_sync_margin.rs:
