/root/repo/target/release/deps/ext_errors-27c3c6ee80c0a50b.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/release/deps/ext_errors-27c3c6ee80c0a50b: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
