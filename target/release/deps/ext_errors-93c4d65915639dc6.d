/root/repo/target/release/deps/ext_errors-93c4d65915639dc6.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/release/deps/ext_errors-93c4d65915639dc6: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
