/root/repo/target/release/deps/noc_bench-f74f106403f92267.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libnoc_bench-f74f106403f92267.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libnoc_bench-f74f106403f92267.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
