/root/repo/target/release/deps/noc_topology-ac8852fed9a35069.d: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

/root/repo/target/release/deps/libnoc_topology-ac8852fed9a35069.rlib: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

/root/repo/target/release/deps/libnoc_topology-ac8852fed9a35069.rmeta: crates/topology/src/lib.rs crates/topology/src/coord.rs crates/topology/src/direction.rs crates/topology/src/mesh.rs crates/topology/src/routing.rs

crates/topology/src/lib.rs:
crates/topology/src/coord.rs:
crates/topology/src/direction.rs:
crates/topology/src/mesh.rs:
crates/topology/src/routing.rs:
