/root/repo/target/release/deps/fig9-262b1958c2d42d3c.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-262b1958c2d42d3c: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
