/root/repo/target/release/deps/ablation_scheduling-e55c84725b9704e6.d: crates/bench/src/bin/ablation_scheduling.rs

/root/repo/target/release/deps/ablation_scheduling-e55c84725b9704e6: crates/bench/src/bin/ablation_scheduling.rs

crates/bench/src/bin/ablation_scheduling.rs:
