/root/repo/target/release/deps/fig5-b0d079de4e241962.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-b0d079de4e241962: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
