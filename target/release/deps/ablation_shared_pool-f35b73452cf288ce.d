/root/repo/target/release/deps/ablation_shared_pool-f35b73452cf288ce.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/release/deps/ablation_shared_pool-f35b73452cf288ce: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
