/root/repo/target/release/deps/ext_errors-fab60c9d1830731a.d: crates/bench/src/bin/ext_errors.rs

/root/repo/target/release/deps/ext_errors-fab60c9d1830731a: crates/bench/src/bin/ext_errors.rs

crates/bench/src/bin/ext_errors.rs:
