/root/repo/target/release/deps/occupancy-c3e24488dcd11a6c.d: crates/bench/src/bin/occupancy.rs

/root/repo/target/release/deps/occupancy-c3e24488dcd11a6c: crates/bench/src/bin/occupancy.rs

crates/bench/src/bin/occupancy.rs:
