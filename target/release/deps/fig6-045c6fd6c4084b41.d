/root/repo/target/release/deps/fig6-045c6fd6c4084b41.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-045c6fd6c4084b41: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
