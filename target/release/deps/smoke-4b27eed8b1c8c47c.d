/root/repo/target/release/deps/smoke-4b27eed8b1c8c47c.d: crates/bench/src/bin/smoke.rs

/root/repo/target/release/deps/smoke-4b27eed8b1c8c47c: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
