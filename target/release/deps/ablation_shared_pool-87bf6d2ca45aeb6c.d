/root/repo/target/release/deps/ablation_shared_pool-87bf6d2ca45aeb6c.d: crates/bench/src/bin/ablation_shared_pool.rs

/root/repo/target/release/deps/ablation_shared_pool-87bf6d2ca45aeb6c: crates/bench/src/bin/ablation_shared_pool.rs

crates/bench/src/bin/ablation_shared_pool.rs:
