//! Contract suite for the staged router pipelines.
//!
//! Three layers of checking, weakest to strongest:
//!
//! * **checker-level** — drive [`StageContractChecker`] directly with
//!   well-formed and malformed request/grant streams and pin down
//!   exactly which contract each `code::*` constant enforces;
//! * **whole-router** — run both router families with contract checks
//!   enabled under load (with and without faults) and assert every
//!   router finishes contract-clean *and* the engine's
//!   `InvariantChecker` saw no `StageContractViolation` events;
//! * **arbiter swap** — the switch-allocation stage is the pluggable
//!   one, so the round-robin and age-based variants must pass the same
//!   whole-router gauntlet as the paper's random arbiter, and must stay
//!   trace-identical between the sequential engine and sharded
//!   stepping (they are *not* compared to the golden fixture — only
//!   `ArbiterKind::Random` reproduces the blessed traces).
//!
//! CI's staged-differential job re-runs this file across a
//! `FRFC_THREADS` × `FRFC_ARBITER` matrix; both env vars are honored
//! below.

use frfc::engine::trace::{InvariantChecker, SharedSink, TraceEvent, TraceSink, VecSink};
use frfc::engine::{Cycle, Rng};
use frfc::faults::{DeadLink, FaultPlan};
use frfc::flow::pipeline::{
    code, ReservationGrant, ReservationRequest, StageContractChecker, SwitchBid, SwitchContender,
    VcAllocGrant, VcAllocRequest,
};
use frfc::flow::{ArbiterKind, LinkTiming, Router};
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::Network;
use frfc::topology::{Mesh, Port};
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};
use std::fmt::Write as _;

const MESH: (u16, u16) = (4, 4);
const PACKET_FLITS: u32 = 5;
const LOAD: f64 = 0.55;
const SEED: u64 = 0xC0_47;

// ---------------------------------------------------------------------------
// Harness (mirrors tests/staged_golden.rs)
// ---------------------------------------------------------------------------

/// FNV-1a over the debug rendering of every event — same digest the
/// golden suite uses, so "equal fingerprints" means the same thing in
/// both files.
fn fingerprint(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for event in events {
        line.clear();
        write!(line, "{event:?}").expect("format into string");
        for &b in line.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x0a;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn fault_plan(seed: u64, mesh: Mesh) -> FaultPlan {
    let mut plan = FaultPlan::quiet(seed);
    plan.data_corrupt_rate = 2e-3;
    plan.control_drop_rate = 2e-3;
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    plan.dead_links.push(DeadLink {
        node: mesh.node_at(1, 1),
        port: Port::East,
        at_cycle: 300,
    });
    plan
}

fn vc_net<S: TraceSink + Clone>(
    cfg: VcConfig,
    load: f64,
    seed: u64,
    sink: S,
    checks: bool,
) -> Network<VcRouter<S>, S> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            let mut router = VcRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            );
            if checks {
                router.enable_contract_checks();
            }
            router
        },
        sink,
    )
}

fn fr_net<S: TraceSink + Clone>(
    load: f64,
    seed: u64,
    sink: S,
    checks: bool,
) -> Network<FrRouter<S>, S> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            let mut router = FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            );
            if checks {
                router.enable_contract_checks();
            }
            router
        },
        sink,
    )
}

/// Injects for 500 cycles, then drains in bounded chunks. `threads == 0`
/// is the sequential engine; anything else steps sharded.
fn run_to_drain<R: Router + Send, S: TraceSink>(net: &mut Network<R, S>, threads: usize) {
    let chunk = |net: &mut Network<R, S>, cycles: u64| {
        if threads == 0 {
            net.run_cycles(cycles);
        } else {
            net.run_cycles_sharded(cycles, threads);
        }
    };
    chunk(net, 500);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        chunk(net, 1_000);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network failed to drain");
}

/// Sequential-only variant for routers carrying a non-`Send` shared sink.
fn run_to_drain_seq<R: Router, S: TraceSink>(net: &mut Network<R, S>) {
    net.run_cycles(500);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        net.run_cycles(1_000);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network failed to drain");
}

fn shard_threads() -> usize {
    match std::env::var("FRFC_THREADS") {
        Ok(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&t| t > 0)
            .unwrap_or_else(|| panic!("FRFC_THREADS must be a positive integer, got {v}")),
        Err(_) => 4,
    }
}

/// Arbiter variants under test: `FRFC_ARBITER` pins one (the CI matrix
/// does this), the default exercises both non-random variants — the
/// random arbiter already carries the full golden suite.
fn arbiter_kinds() -> Vec<ArbiterKind> {
    match std::env::var("FRFC_ARBITER") {
        Ok(v) => {
            let kind = ArbiterKind::from_label(&v)
                .unwrap_or_else(|| panic!("FRFC_ARBITER must name an arbiter, got {v}"));
            vec![kind]
        }
        Err(_) => vec![ArbiterKind::RoundRobin, ArbiterKind::AgeBased],
    }
}

// ---------------------------------------------------------------------------
// Checker-level: the contracts themselves
// ---------------------------------------------------------------------------

fn vc_req(in_port: Port, in_vc: usize, out_port: Port) -> VcAllocRequest {
    VcAllocRequest {
        in_port,
        in_vc,
        out_port,
    }
}

#[test]
fn checker_accepts_well_formed_streams() {
    // A multi-cycle stream shaped like a real driver's: requests before
    // grants, nominations before switch grants, grants before
    // traversals, one traversal per output. A cheap LCG varies ports
    // and VCs so the stream is not one fixed pattern.
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut rand = move |m: u64| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((lcg >> 33) % m) as usize
    };
    const PORTS: [Port; 5] = [
        Port::Local,
        Port::North,
        Port::East,
        Port::South,
        Port::West,
    ];

    let mut ck = StageContractChecker::new();
    for cycle in 0..200u64 {
        ck.begin_cycle();
        let now = Cycle::new(cycle);

        // VC allocation: distinct inputs request, grants hand out
        // distinct (out_port, out_vc) pairs.
        let n_req = rand(4);
        for i in 0..n_req {
            let req = vc_req(PORTS[i], i % 2, PORTS[(i + 1 + rand(3)) % 5]);
            ck.note_vc_request(req);
            if rand(2) == 0 {
                ck.note_vc_grant(&req, VcAllocGrant { out_vc: i as u8 });
            }
        }

        // Switch allocation: each input nominates at most once; each
        // output grants one of its bidders; each granted output is
        // traversed at most once.
        let mut granted: Vec<Port> = Vec::new();
        for (i, &in_port) in PORTS.iter().enumerate().take(1 + rand(4)) {
            let out_port = PORTS[(i + 1) % 5];
            let bid = SwitchBid {
                in_vc: rand(4),
                out_port,
                arrived: now,
            };
            ck.note_nomination(in_port, bid);
            if !granted.contains(&out_port) {
                ck.note_switch_grant(
                    out_port,
                    SwitchContender {
                        in_port,
                        in_vc: bid.in_vc,
                        arrived: bid.arrived,
                    },
                );
                granted.push(out_port);
            }
        }
        for &out_port in &granted {
            if rand(4) != 0 {
                ck.note_traversal(out_port);
            }
        }

        // Reservation matching: every grant answers a request and never
        // departs before it arrives.
        for i in 0..rand(3) {
            let req = ReservationRequest {
                in_port: PORTS[i],
                out_port: PORTS[(i + 2) % 5],
                arrival: Cycle::new(cycle + 3),
                min_free: 1,
                allow_bypass: i == 0,
            };
            ck.note_reservation_request(req);
            if rand(2) == 0 {
                let grant = ReservationGrant {
                    departure: Cycle::new(cycle + 3 + rand(5) as u64),
                };
                ck.note_reservation_grant(&req, grant);
            }
        }

        assert!(
            ck.end_cycle().is_empty(),
            "well-formed cycle {cycle} flagged: {:?}",
            ck.violations()
        );
    }
    ck.assert_clean();
    assert_eq!(ck.violation_count(), 0);
}

#[test]
fn checker_flags_each_contract_breach() {
    // One minimal malformed stream per contract code, each in its own
    // cycle so the codes cannot mask each other.
    let mut ck = StageContractChecker::new();
    let req = vc_req(Port::North, 0, Port::East);

    // 1: grant with no matching request.
    ck.begin_cycle();
    ck.note_vc_grant(&req, VcAllocGrant { out_vc: 0 });
    assert_eq!(ck.end_cycle(), &[code::VC_GRANT_WITHOUT_REQUEST]);

    // Requests do not leak across begin_cycle: the same grant is
    // flagged again next cycle even after a cycle that requested it.
    ck.begin_cycle();
    ck.note_vc_request(req);
    ck.note_vc_grant(&req, VcAllocGrant { out_vc: 0 });
    assert!(ck.end_cycle().is_empty());
    ck.begin_cycle();
    ck.note_vc_grant(&req, VcAllocGrant { out_vc: 0 });
    assert_eq!(ck.end_cycle(), &[code::VC_GRANT_WITHOUT_REQUEST]);

    // 2: the same downstream VC granted twice in one cycle.
    ck.begin_cycle();
    ck.note_vc_request(req);
    let rival = vc_req(Port::South, 1, Port::East);
    ck.note_vc_request(rival);
    ck.note_vc_grant(&req, VcAllocGrant { out_vc: 3 });
    ck.note_vc_grant(&rival, VcAllocGrant { out_vc: 3 });
    assert_eq!(ck.end_cycle(), &[code::VC_DOUBLE_GRANT]);

    // 3: one input nominating twice.
    let bid = SwitchBid {
        in_vc: 0,
        out_port: Port::East,
        arrived: Cycle::new(1),
    };
    ck.begin_cycle();
    ck.note_nomination(Port::North, bid);
    ck.note_nomination(Port::North, bid);
    assert_eq!(ck.end_cycle(), &[code::DOUBLE_NOMINATION]);

    // 4: a switch grant to a flit nobody nominated.
    ck.begin_cycle();
    ck.note_switch_grant(
        Port::East,
        SwitchContender {
            in_port: Port::North,
            in_vc: 0,
            arrived: Cycle::new(1),
        },
    );
    assert_eq!(ck.end_cycle(), &[code::GRANT_WITHOUT_BID]);

    // 5: a granted output traversed twice.
    ck.begin_cycle();
    ck.note_nomination(Port::North, bid);
    ck.note_switch_grant(
        Port::East,
        SwitchContender {
            in_port: Port::North,
            in_vc: 0,
            arrived: Cycle::new(1),
        },
    );
    ck.note_traversal(Port::East);
    ck.note_traversal(Port::East);
    assert_eq!(ck.end_cycle(), &[code::DOUBLE_TRAVERSAL]);

    // 6: a traversal with no grant at all.
    ck.begin_cycle();
    ck.note_traversal(Port::West);
    assert_eq!(ck.end_cycle(), &[code::TRAVERSAL_WITHOUT_GRANT]);

    // 5 again, via the FR data path's grant-free variant: two scheduled
    // departures on one output channel in one cycle.
    ck.begin_cycle();
    ck.note_departure(Port::South);
    ck.note_departure(Port::South);
    assert_eq!(ck.end_cycle(), &[code::DOUBLE_TRAVERSAL]);

    // 7: a reservation grant with no matching request.
    let res = ReservationRequest {
        in_port: Port::North,
        out_port: Port::East,
        arrival: Cycle::new(10),
        min_free: 1,
        allow_bypass: false,
    };
    ck.begin_cycle();
    ck.note_reservation_grant(
        &res,
        ReservationGrant {
            departure: Cycle::new(12),
        },
    );
    assert_eq!(ck.end_cycle(), &[code::RESERVATION_GRANT_WITHOUT_REQUEST]);

    // 8: a departure scheduled before the flit arrives.
    ck.begin_cycle();
    ck.note_reservation_request(res);
    ck.note_reservation_grant(
        &res,
        ReservationGrant {
            departure: Cycle::new(9),
        },
    );
    assert_eq!(ck.end_cycle(), &[code::RESERVATION_BEFORE_ARRIVAL]);

    assert!(!ck.is_clean());
    assert_eq!(ck.violation_count(), 10);
    assert_eq!(ck.violations().len(), 10);
}

// ---------------------------------------------------------------------------
// Whole-router: staged drivers keep the contracts under load
// ---------------------------------------------------------------------------

/// Both router families expose `contract_checker`, but there is no
/// common trait for it, so each network type gets a tiny impl of this
/// assertion hook.
trait NetContracts {
    fn assert_router_contracts(&self, what: &str);
}

impl NetContracts
    for Network<VcRouter<SharedSink<InvariantChecker>>, SharedSink<InvariantChecker>>
{
    fn assert_router_contracts(&self, what: &str) {
        for router in self.routers() {
            let ck = router
                .contract_checker()
                .expect("contract checks were enabled");
            assert!(ck.is_clean(), "{what}: {:?}", ck.violations());
        }
    }
}

impl NetContracts
    for Network<FrRouter<SharedSink<InvariantChecker>>, SharedSink<InvariantChecker>>
{
    fn assert_router_contracts(&self, what: &str) {
        for router in self.routers() {
            let ck = router
                .contract_checker()
                .expect("contract checks were enabled");
            assert!(ck.is_clean(), "{what}: {:?}", ck.violations());
        }
    }
}

#[test]
fn vc_router_contracts_hold_under_load() {
    for faults in [false, true] {
        let shared = SharedSink::new(InvariantChecker::new());
        let mut net = vc_net(VcConfig::vc8(), LOAD, SEED, shared.clone(), true);
        if faults {
            net.set_fault_plan(fault_plan(0xFA_01, Mesh::new(MESH.0, MESH.1)));
        }
        run_to_drain_seq(&mut net);
        net.assert_router_contracts("vc8 staged driver broke a stage contract");
        drop(net);
        let checker = shared.into_inner();
        assert!(checker.events_seen() > 0, "tracer saw no events");
        checker.assert_clean();
    }
}

#[test]
fn fr_router_contracts_hold_under_load() {
    for faults in [false, true] {
        let shared = SharedSink::new(InvariantChecker::new());
        let mut net = fr_net(LOAD, SEED, shared.clone(), true);
        if faults {
            net.set_fault_plan(fault_plan(0xFA_02, Mesh::new(MESH.0, MESH.1)));
        }
        run_to_drain_seq(&mut net);
        net.assert_router_contracts("fr6 staged driver broke a stage contract");
        drop(net);
        let checker = shared.into_inner();
        assert!(checker.events_seen() > 0, "tracer saw no events");
        checker.assert_clean();
    }
}

// ---------------------------------------------------------------------------
// Arbiter swap: the switch-allocation stage is interchangeable
// ---------------------------------------------------------------------------

#[test]
fn swapped_arbiters_pass_invariants_and_contracts() {
    for kind in arbiter_kinds() {
        let cfg = VcConfig::vc8().with_switch_arbiter(kind);
        for faults in [false, true] {
            let shared = SharedSink::new(InvariantChecker::new());
            let mut net = vc_net(cfg, LOAD, SEED, shared.clone(), true);
            if faults {
                net.set_fault_plan(fault_plan(0xFA_01, Mesh::new(MESH.0, MESH.1)));
            }
            run_to_drain_seq(&mut net);
            net.assert_router_contracts(&format!("{kind:?} arbiter broke a stage contract"));
            drop(net);
            shared.into_inner().assert_clean();
        }
    }
}

#[test]
fn swapped_arbiters_are_thread_count_invariant() {
    // Sequential vs sharded stepping must agree bit-for-bit for every
    // arbiter, exactly as the golden suite proves for the random one.
    // The fingerprints are compared across engines, never to the golden
    // fixture: a non-random arbiter is *supposed* to diverge from the
    // blessed traces (that is the point of the knob), just not from
    // itself.
    let threads = shard_threads();
    for kind in arbiter_kinds() {
        let cfg = VcConfig::vc8().with_switch_arbiter(kind);
        let mut reference = None;
        for t in [0, 1, threads] {
            let mut net = vc_net(cfg, LOAD, SEED, VecSink::new(), false);
            run_to_drain(&mut net, t);
            let digest = (
                fingerprint(net.tracer().events()),
                net.tracer().events().len(),
            );
            match reference {
                None => reference = Some(digest),
                Some(expected) => assert_eq!(
                    digest, expected,
                    "{kind:?} arbiter diverged between sequential and {t}-thread stepping"
                ),
            }
        }
    }
}

#[test]
fn arbiter_label_round_trips() {
    // The config knob is driven by a string in CI; pin the labels.
    for (label, kind) in [
        ("random", ArbiterKind::Random),
        ("round-robin", ArbiterKind::RoundRobin),
        ("age-based", ArbiterKind::AgeBased),
    ] {
        assert_eq!(ArbiterKind::from_label(label), Some(kind));
    }
    assert_eq!(ArbiterKind::from_label("oracle"), None);
}
