//! Fault-layer determinism: the entire fault schedule is part of the
//! seed path.
//!
//! Three claims, each load-bearing for reproducibility:
//!
//! * **same seed, same faults** — two runs under the same randomized
//!   [`FaultPlan`] replay bit-identical event streams and export
//!   byte-identical metrics JSON (after stripping wall-clock data);
//! * **zero-cost when off** — a rate-zero (inactive) plan produces an
//!   event stream bit-identical to a run that never loaded the fault
//!   layer at all, and no `fault.*` metrics keys appear;
//! * **plans matter** — changing only the fault rates changes the
//!   stream, so the determinism above is not vacuous.

use frfc::engine::trace::{SharedSink, TraceEvent, VecSink};
use frfc::engine::Rng;
use frfc::faults::FaultPlan;
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::metrics::{strip_nondeterministic, MetricsRegistry, RunManifest};
use frfc::network::{run_simulation, Network, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};

type Shared = SharedSink<VecSink>;

fn traced_fr(mesh: Mesh, load: f64, seed: u64, sink: Shared) -> Network<FrRouter<Shared>, Shared> {
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

fn traced_vc(mesh: Mesh, load: f64, seed: u64, sink: Shared) -> Network<VcRouter<Shared>, Shared> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            VcRouter::with_tracer(
                mesh,
                node,
                VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

/// A short-run plan derived from [`FaultPlan::randomized`] with the
/// recovery knobs tightened so the drain converges quickly.
fn fast_plan(seed: u64, mesh: Mesh) -> FaultPlan {
    let mut plan = FaultPlan::randomized(seed, mesh);
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    for d in &mut plan.dead_links {
        d.at_cycle = d.at_cycle.min(256);
    }
    plan
}

/// Event stream of one FR run, optionally under a fault plan.
fn fr_trace(load: f64, seed: u64, plan: Option<&FaultPlan>) -> Vec<TraceEvent> {
    let shared = SharedSink::new(VecSink::new());
    let mut net = traced_fr(Mesh::new(4, 4), load, seed, shared.clone());
    if let Some(p) = plan {
        net.set_fault_plan(p.clone());
    }
    net.run_cycles(1_500);
    net.stop_injection();
    net.run_cycles(8_000);
    assert_eq!(net.tracker().in_flight(), 0, "run must drain");
    drop(net);
    shared.into_inner().into_events()
}

/// Event stream of one VC run, optionally under a fault plan.
fn vc_trace(load: f64, seed: u64, plan: Option<&FaultPlan>) -> Vec<TraceEvent> {
    let shared = SharedSink::new(VecSink::new());
    let mut net = traced_vc(Mesh::new(4, 4), load, seed, shared.clone());
    if let Some(p) = plan {
        net.set_fault_plan(p.clone());
    }
    net.run_cycles(1_500);
    net.stop_injection();
    net.run_cycles(8_000);
    assert_eq!(net.tracker().in_flight(), 0, "run must drain");
    drop(net);
    shared.into_inner().into_events()
}

#[test]
fn same_seed_fault_runs_replay_identical_event_streams() {
    let mesh = Mesh::new(4, 4);
    for plan_seed in [11u64, 12, 13] {
        let plan = fast_plan(plan_seed, mesh);
        let a = fr_trace(0.4, 21, Some(&plan));
        let b = fr_trace(0.4, 21, Some(&plan));
        assert!(!a.is_empty());
        assert_eq!(a, b, "plan seed {plan_seed}: fault runs diverged");
        let va = vc_trace(0.4, 21, Some(&plan));
        let vb = vc_trace(0.4, 21, Some(&plan));
        assert_eq!(va, vb, "plan seed {plan_seed}: VC fault runs diverged");
    }
}

#[test]
fn inactive_plan_is_bit_identical_to_no_fault_layer() {
    let quiet = FaultPlan::quiet(5);
    assert!(!quiet.is_active());
    let bare = fr_trace(0.4, 22, None);
    let quieted = fr_trace(0.4, 22, Some(&quiet));
    assert!(!bare.is_empty());
    assert_eq!(
        bare, quieted,
        "a rate-zero plan must not perturb a single event"
    );
    let bare_vc = vc_trace(0.4, 22, None);
    let quieted_vc = vc_trace(0.4, 22, Some(&quiet));
    assert_eq!(bare_vc, quieted_vc);
}

#[test]
fn fault_rates_actually_change_the_stream() {
    let mesh = Mesh::new(4, 4);
    let mut low = fast_plan(31, mesh);
    low.data_corrupt_rate = 1e-3;
    low.control_drop_rate = 1e-3;
    let mut high = low.clone();
    high.data_corrupt_rate = 5e-3;
    high.control_drop_rate = 5e-3;
    let a = fr_trace(0.4, 23, Some(&low));
    let b = fr_trace(0.4, 23, Some(&high));
    assert_ne!(a, b, "different fault rates must diverge somewhere");
}

/// Metrics export under a randomized plan: two same-seed runs must
/// render byte-identical JSON once nondeterministic fields (wall-clock)
/// are stripped, and the export must carry the `fault.*` counters.
#[test]
fn fault_metrics_exports_are_byte_identical_across_reruns() {
    let mesh = Mesh::new(4, 4);
    let plan = fast_plan(41, mesh);
    let sim = SimConfig {
        seed: 24,
        sample_packets: 300,
        ..SimConfig::quick(24)
    };
    let export = || {
        let root = Rng::from_seed(sim.seed);
        let cfg = FrConfig::fr6();
        let spec = LoadSpec::fraction_of_capacity(0.4, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(0x7261_6666_6963));
        let mut net = Network::with_instruments(
            mesh,
            cfg.timing,
            cfg.control_lanes,
            generator,
            |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
            frfc::engine::trace::NullSink,
            MetricsRegistry::new(),
        );
        net.set_fault_plan(plan.clone());
        run_simulation(&mut net, &sim);
        let registry = std::mem::take(net.metrics_mut());
        let mut manifest = RunManifest::new("fault_determinism", sim.seed, "test", "FR6");
        manifest.config = plan.summary();
        let mut doc = registry.to_json(&manifest);
        strip_nondeterministic(&mut doc);
        doc
    };
    let a = export();
    let b = export();
    let counters = a.get("counters").expect("export has counters");
    for key in ["fault.data_corrupted", "fault.retransmits", "fault.acks"] {
        assert!(
            counters.get(key).is_some(),
            "faulty export missing counter {key}"
        );
    }
    assert_eq!(
        a.render(),
        b.render(),
        "same-seed faulty metrics exports differ"
    );
}

/// Zero-cost-when-off at the metrics layer: no plan and an inactive
/// plan must both export without any `fault.*` keys, byte-identically.
#[test]
fn inactive_plan_exports_no_fault_keys() {
    let mesh = Mesh::new(4, 4);
    let sim = SimConfig {
        seed: 25,
        sample_packets: 300,
        ..SimConfig::quick(25)
    };
    let export = |plan: Option<FaultPlan>| {
        let root = Rng::from_seed(sim.seed);
        let spec = LoadSpec::fraction_of_capacity(0.4, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(0x7261_6666_6963));
        let mut net = Network::with_instruments(
            mesh,
            LinkTiming::fast_control(),
            2,
            generator,
            |node| VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64)),
            frfc::engine::trace::NullSink,
            MetricsRegistry::new(),
        );
        if let Some(p) = plan {
            net.set_fault_plan(p);
        }
        run_simulation(&mut net, &sim);
        let registry = std::mem::take(net.metrics_mut());
        let manifest = RunManifest::new("fault_determinism", sim.seed, "test", "VC8");
        let mut doc = registry.to_json(&manifest);
        strip_nondeterministic(&mut doc);
        doc
    };
    let bare = export(None);
    let quieted = export(Some(FaultPlan::quiet(9)));
    let counters = bare.get("counters").expect("export has counters");
    assert!(
        counters.get("fault.retransmits").is_none(),
        "fault keys must not appear in a fault-free export"
    );
    assert_eq!(bare.render(), quieted.render());
}
