//! Well-formedness of the latency-provenance layer, end to end.
//!
//! Drives real simulations (both flow controls, randomized seed, load
//! and sampling divisor) with the provenance collector attached and
//! checks the properties the layer is built on:
//!
//! * every reconstructed span closes: the collector reports zero
//!   malformed folds, and every hop's components tile its residency;
//! * exactness: each flit record's phase cycles sum to its measured
//!   end-to-end latency, and tail-flit records agree with the delivery
//!   tracker's ground-truth latencies;
//! * structural claims: FR data flits are never charged credit-stall or
//!   route-compute cycles (both happen on the control network);
//! * determinism: same-seed runs export byte-identical Chrome traces;
//! * exhaustiveness: `stall_phase` maps exactly the stall-marker trace
//!   kinds (the compile-time guard that every `TraceKind` variant has a
//!   decided provenance treatment).

use frfc::engine::propcheck::{check, AnyBool};
use frfc::engine::trace::TraceKind;
use frfc::engine::warmup::WarmupConfig;
use frfc::flow::LinkTiming;
use frfc::fr::FrConfig;
use frfc::network::{FlowControl, SimConfig};
use frfc::provenance::{chrome_trace, stall_phase, Phase, ProvenanceReport};
use frfc::topology::Mesh;
use frfc::traffic::LoadSpec;
use frfc::vc::VcConfig;

/// A seconds-fast measurement config on the 4x4 mesh.
fn tiny_sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup: WarmupConfig {
            min_cycles: 300,
            max_cycles: 2_000,
            window: 4,
            tolerance: 0.1,
        },
        sample_packets: 150,
        drain_cap: 10_000,
        warmup_probe_period: 16,
    }
}

fn assert_well_formed(label: &str, report: &ProvenanceReport) {
    assert_eq!(report.malformed, 0, "{label}: malformed folds");
    assert!(
        !report.records.is_empty(),
        "{label}: no flit records collected"
    );
    for r in &report.records {
        // Spans close: hops are ordered and each hop's components tile
        // its residency exactly.
        let mut prev_depart = 0;
        for hop in &r.hops {
            assert!(hop.arrive >= prev_depart, "{label}: hops out of order");
            assert!(hop.depart >= hop.arrive, "{label}: negative residency");
            prev_depart = hop.depart;
            let tiled = hop.route
                + hop.vc_alloc_stall
                + hop.credit_stall
                + hop.buffer_wait
                + hop.switch
                + hop.ejection;
            assert_eq!(
                tiled,
                hop.residency(),
                "{label}: hop at node {} does not tile its residency",
                hop.node
            );
        }
        // Exactness: phases sum to the measured end-to-end latency.
        assert_eq!(
            r.attributed(),
            r.end_to_end(),
            "{label}: flit ({}, {}) attribution != latency",
            r.packet,
            r.seq
        );
    }
    // The delivery tracker pegs a packet's latency to its last-ejected
    // flit (FR flits may eject out of seq order), so the max record
    // ejection per packet must reproduce the tracker's ground truth.
    let mut last_eject = std::collections::BTreeMap::new();
    for r in &report.records {
        let e = last_eject.entry(r.packet).or_insert((r.created, 0u64));
        e.1 = e.1.max(r.ejected);
    }
    for &(packet, latency) in &report.delivered {
        if let Some(&(created, ejected)) = last_eject.get(&packet) {
            assert_eq!(
                ejected - created,
                latency,
                "{label}: packet {packet} latency disagrees with tracker"
            );
        }
    }
}

/// Randomized runs of both flow controls: spans close, components sum
/// exactly, FR is structurally free of credit/route cycles, and the
/// Chrome export is byte-stable across same-seed runs.
#[test]
fn traced_runs_are_well_formed_and_deterministic() {
    let mesh = Mesh::new(4, 4);
    let strategy = (1u64..1_000, 0usize..3, 1u64..4, AnyBool);
    check(6, strategy, |(seed, load_idx, sample_every, use_fr)| {
        let load = [0.15, 0.35, 0.55][load_idx];
        let fc = if use_fr {
            FlowControl::FlitReservation(FrConfig::fr6())
        } else {
            FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control())
        };
        let label = format!("{}@{load}/s{seed}/k{sample_every}", fc.label());
        let sim = tiny_sim(seed);
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let (_, report) = fc.run_traced(mesh, spec, &sim, sample_every);
        assert_well_formed(&label, &report);
        if use_fr {
            for r in &report.records {
                assert_eq!(
                    r.phases[Phase::CreditStall.index()],
                    0,
                    "{label}: FR flit charged credit stalls"
                );
                assert_eq!(
                    r.phases[Phase::RouteCompute.index()],
                    0,
                    "{label}: FR flit charged route compute"
                );
            }
        }
        // Byte-identical export on a same-seed rerun.
        let (_, report2) = fc.run_traced(mesh, spec, &sim, sample_every);
        assert_eq!(
            chrome_trace(&report, mesh.width()).render(),
            chrome_trace(&report2, mesh.width()).render(),
            "{label}: same-seed export differs"
        );
    });
}

/// `stall_phase` is the crate's exhaustiveness guard: adding a
/// `TraceKind` variant without deciding its provenance treatment fails
/// to compile. This pins the mapping it encodes.
#[test]
fn stall_phase_maps_exactly_the_stall_markers() {
    assert_eq!(
        stall_phase(&TraceKind::VcAllocStall { packet: 1, seq: 0 }),
        Some(Phase::VcAllocStall)
    );
    assert_eq!(
        stall_phase(&TraceKind::CreditStall { packet: 1, seq: 0 }),
        Some(Phase::CreditStall)
    );
    assert_eq!(
        stall_phase(&TraceKind::SwitchStall { packet: 1, seq: 0 }),
        Some(Phase::SwitchTraversal)
    );
    assert_eq!(
        stall_phase(&TraceKind::ControlStall { packet: 1 }),
        Some(Phase::ControlLead)
    );
    // Non-stall kinds map to nothing.
    assert_eq!(
        stall_phase(&TraceKind::FlitEjected { packet: 1, seq: 0 }),
        None
    );
    assert_eq!(
        stall_phase(&TraceKind::PacketDelivered {
            packet: 1,
            latency: 9
        }),
        None
    );
}
