//! Differential tests for the phase-separated stepping engine.
//!
//! The engine refactor's contract is *trace equality*: idle-skipping and
//! step-phase sharding are pure performance features, so a run with them
//! on must produce an event stream bit-identical to a run with them off.
//! This suite pins that contract across traffic patterns (uniform,
//! transpose, hotspot), loads (low, moderate, near-saturation) and both
//! router microarchitectures (VC baseline, flit-reservation).
//!
//! Two comparisons per configuration:
//!
//! * **idle-skip on vs. off** — fully traced (every router plus the
//!   harness feed one shared [`VecSink`]), so any divergence down to a
//!   single buffer allocation or switch traversal fails the test;
//! * **sharded vs. sequential step phase** — traced at network level
//!   (injections, ejections, deliveries). [`SharedSink`] is deliberately
//!   not [`Send`], so routers stepped concurrently cannot share a sink;
//!   the per-router stream is instead covered by the sequential
//!   comparison above, and sharding only reorders *stepping*, never the
//!   cross-router effects, which all commit in the sequential apply
//!   phase.

use frfc::engine::trace::{SharedSink, TraceEvent, VecSink};
use frfc::engine::Rng;
use frfc::faults::FaultPlan;
use frfc::flow::{LinkTiming, Router};
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::Network;
use frfc::topology::Mesh;
use frfc::traffic::{
    Hotspot, InjectionKind, LoadSpec, TrafficGenerator, TrafficPattern, Transpose, Uniform,
};

const MESH: (u16, u16) = (4, 4);
const PACKET_FLITS: u32 = 5;

/// A named factory producing fresh boxed copies of one traffic pattern.
type PatternFactory = (&'static str, Box<dyn Fn() -> Box<dyn TrafficPattern>>);

/// The traffic patterns the suite sweeps.
fn patterns(mesh: Mesh) -> Vec<PatternFactory> {
    let hotspot = mesh.node_at(1, 1);
    vec![
        (
            "uniform",
            Box::new(|| Box::new(Uniform) as Box<dyn TrafficPattern>) as _,
        ),
        (
            "transpose",
            Box::new(|| Box::new(Transpose) as Box<dyn TrafficPattern>) as _,
        ),
        (
            "hotspot",
            Box::new(move || Box::new(Hotspot::new(hotspot, 0.2)) as Box<dyn TrafficPattern>) as _,
        ),
    ]
}

fn generator(
    mesh: Mesh,
    pattern: Box<dyn TrafficPattern>,
    load: f64,
    root: &Rng,
) -> TrafficGenerator {
    TrafficGenerator::new(
        mesh,
        LoadSpec::fraction_of_capacity(load, PACKET_FLITS),
        pattern,
        InjectionKind::ConstantRate,
        root.fork(99),
    )
}

/// Fully traced sequential FR run; returns the complete event stream.
fn fr_full_trace(
    pattern: Box<dyn TrafficPattern>,
    load: f64,
    seed: u64,
    idle_skip: bool,
    cycles: u64,
    drain: u64,
) -> Vec<TraceEvent> {
    let shared = SharedSink::new(VecSink::new());
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let router_sink = shared.clone();
    let mut net = Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator(mesh, pattern, load, &root),
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        shared.clone(),
    );
    net.set_idle_skip(idle_skip);
    net.run_cycles(cycles);
    net.stop_injection();
    net.run_cycles(drain);
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    drop(net);
    shared.into_inner().into_events()
}

/// Fully traced sequential VC run; returns the complete event stream.
fn vc_full_trace(
    pattern: Box<dyn TrafficPattern>,
    load: f64,
    seed: u64,
    idle_skip: bool,
    cycles: u64,
    drain: u64,
) -> Vec<TraceEvent> {
    let shared = SharedSink::new(VecSink::new());
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let router_sink = shared.clone();
    let mut net = Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator(mesh, pattern, load, &root),
        move |node| {
            frfc::vc::VcRouter::with_tracer(
                mesh,
                node,
                frfc::vc::VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        shared.clone(),
    );
    net.set_idle_skip(idle_skip);
    net.run_cycles(cycles);
    net.stop_injection();
    net.run_cycles(drain);
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    drop(net);
    shared.into_inner().into_events()
}

/// Network-level trace of a run whose step phase is sharded over
/// `threads` worker threads (untraced routers: they must be `Send`).
fn network_trace_sharded<R: Router + Send>(
    make: impl FnOnce(VecSink) -> Network<R, VecSink>,
    threads: usize,
    cycles: u64,
    drain: u64,
) -> Vec<TraceEvent> {
    let mut net = make(VecSink::new());
    if threads == 1 {
        net.run_cycles(cycles);
        net.stop_injection();
        net.run_cycles(drain);
    } else {
        net.run_cycles_sharded(cycles, threads);
        net.stop_injection();
        net.run_cycles_sharded(drain, threads);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    net.tracer().events().to_vec()
}

fn fr_net(
    pattern: Box<dyn TrafficPattern>,
    load: f64,
    seed: u64,
    sink: VecSink,
) -> Network<FrRouter, VecSink> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator(mesh, pattern, load, &root),
        |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
        sink,
    )
}

fn vc_net(
    pattern: Box<dyn TrafficPattern>,
    load: f64,
    seed: u64,
    sink: VecSink,
) -> Network<frfc::vc::VcRouter, VecSink> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator(mesh, pattern, load, &root),
        |node| {
            frfc::vc::VcRouter::new(
                mesh,
                node,
                frfc::vc::VcConfig::vc8(),
                root.fork(node.raw() as u64),
            )
        },
        sink,
    )
}

/// The load points swept: low (where idle-skip matters most), moderate,
/// and near saturation (where nearly every router is always awake).
const LOADS: [f64; 3] = [0.1, 0.4, 0.7];

#[test]
fn fr_idle_skip_preserves_full_trace() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    for (name, make_pattern) in patterns(mesh) {
        for (i, &load) in LOADS.iter().enumerate() {
            let seed = 0x1000 + i as u64;
            let skip = fr_full_trace(make_pattern(), load, seed, true, 700, 3_000);
            let step = fr_full_trace(make_pattern(), load, seed, false, 700, 3_000);
            assert!(!skip.is_empty(), "{name}@{load}: run produced no events");
            assert_eq!(
                skip, step,
                "{name}@{load}: idle-skip changed the FR event stream"
            );
        }
    }
}

#[test]
fn vc_idle_skip_preserves_full_trace() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    for (name, make_pattern) in patterns(mesh) {
        for (i, &load) in LOADS.iter().enumerate() {
            let seed = 0x2000 + i as u64;
            let skip = vc_full_trace(make_pattern(), load, seed, true, 700, 3_000);
            let step = vc_full_trace(make_pattern(), load, seed, false, 700, 3_000);
            assert!(!skip.is_empty(), "{name}@{load}: run produced no events");
            assert_eq!(
                skip, step,
                "{name}@{load}: idle-skip changed the VC event stream"
            );
        }
    }
}

#[test]
fn fr_sharded_step_preserves_network_trace() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    for (name, make_pattern) in patterns(mesh) {
        for (i, &load) in LOADS.iter().enumerate() {
            let seed = 0x3000 + i as u64;
            let seq =
                network_trace_sharded(|s| fr_net(make_pattern(), load, seed, s), 1, 700, 3_000);
            let par =
                network_trace_sharded(|s| fr_net(make_pattern(), load, seed, s), 4, 700, 3_000);
            assert!(!seq.is_empty(), "{name}@{load}: run produced no events");
            assert_eq!(
                seq, par,
                "{name}@{load}: sharding changed the FR network trace"
            );
        }
    }
}

#[test]
fn vc_sharded_step_preserves_network_trace() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    for (name, make_pattern) in patterns(mesh) {
        for (i, &load) in LOADS.iter().enumerate() {
            let seed = 0x4000 + i as u64;
            let seq =
                network_trace_sharded(|s| vc_net(make_pattern(), load, seed, s), 1, 700, 3_000);
            let par =
                network_trace_sharded(|s| vc_net(make_pattern(), load, seed, s), 4, 700, 3_000);
            assert!(!seq.is_empty(), "{name}@{load}: run produced no events");
            assert_eq!(
                seq, par,
                "{name}@{load}: sharding changed the VC network trace"
            );
        }
    }
}

/// Sharding composes with idle-skipping off too: the skip flag and the
/// thread count are independent axes, and every combination must agree.
#[test]
fn sharding_and_idle_skip_axes_are_independent() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let hotspot = mesh.node_at(1, 1);
    let make = |skip: bool, sink: VecSink| {
        let mut net = fr_net(Box::new(Hotspot::new(hotspot, 0.2)), 0.3, 0x5005, sink);
        net.set_idle_skip(skip);
        net
    };
    let mut traces = Vec::new();
    for skip in [true, false] {
        for threads in [1, 3] {
            let t = network_trace_sharded(|s| make(skip, s), threads, 700, 3_000);
            assert!(!t.is_empty());
            traces.push(t);
        }
    }
    for t in &traces[1..] {
        assert_eq!(&traces[0], t, "some (skip, threads) combination diverged");
    }
}

/// Faults, sharding and idle-skipping are three independent engine
/// features, and all eight combinations must agree. A corrupt+drop
/// fault plan forces the sharded engine onto its sequential-apply
/// fallback (fault RNG rides on sends) and keeps the fault-event /
/// generation ordering visible; the naive path — idle-skip off, plain
/// `cycle()` — is the reference every combination must replay
/// bit-for-bit.
#[test]
fn faulty_run_composes_with_sharding_and_idle_skip() {
    let mut plan = FaultPlan::quiet(0xFA17);
    plan.data_corrupt_rate = 2e-3;
    plan.control_drop_rate = 2e-3;
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    let run = |skip: bool, threads: usize| {
        let mut net = fr_net(Box::new(Uniform), 0.4, 0x7007, VecSink::new());
        net.set_fault_plan(plan.clone());
        net.set_idle_skip(skip);
        if threads == 1 {
            net.run_cycles(800);
            net.stop_injection();
            net.run_cycles(6_000);
        } else {
            net.run_cycles_sharded(800, threads);
            net.stop_injection();
            net.run_cycles_sharded(6_000, threads);
        }
        assert_eq!(net.tracker().in_flight(), 0, "faulty run must drain");
        let summary = net.fault_summary().expect("fault layer armed");
        (summary, net.tracer().events().to_vec())
    };
    let (naive_faults, naive) = run(false, 1);
    assert!(!naive.is_empty());
    // Non-vacuous: the plan actually corrupted and dropped something.
    assert!(
        naive_faults.counters.data_corrupted > 0,
        "corrupt rate must fire in the reference run"
    );
    assert!(
        naive_faults.counters.control_dropped > 0,
        "drop rate must fire in the reference run"
    );
    for skip in [false, true] {
        for threads in [1usize, 2, 4] {
            if !skip && threads == 1 {
                continue; // the reference itself
            }
            let (faults, events) = run(skip, threads);
            assert_eq!(
                faults.counters, naive_faults.counters,
                "skip={skip} threads={threads}: fault schedule diverged"
            );
            assert_eq!(
                naive, events,
                "skip={skip} threads={threads}: event stream diverged from naive path"
            );
        }
    }
}

/// The control-error model draws its RNG in the sequential apply phase,
/// so even a lossy control wire must not break sharded determinism.
#[test]
fn sharded_step_is_deterministic_under_control_errors() {
    let run = |threads: usize| {
        let mut net = fr_net(Box::new(Uniform), 0.3, 0x6006, VecSink::new());
        net.set_control_error_rate(0.02, 0xBAD5EED);
        if threads == 1 {
            net.run_cycles(700);
            net.stop_injection();
            net.run_cycles(4_000);
        } else {
            net.run_cycles_sharded(700, threads);
            net.stop_injection();
            net.run_cycles_sharded(4_000, threads);
        }
        assert_eq!(net.tracker().in_flight(), 0);
        assert!(net.control_retries() > 0, "2% error rate must retry");
        (net.control_retries(), net.tracer().events().to_vec())
    };
    let (seq_retries, seq) = run(1);
    let (par_retries, par) = run(4);
    assert_eq!(seq_retries, par_retries);
    assert_eq!(seq, par, "error-model RNG must be thread-count invariant");
}
