//! Property-based tests of the reservation tables against independent
//! reference models.
//!
//! The output reservation table is the heart of flit-reservation flow
//! control: if its window arithmetic drifts (off-by-one slots, wrong
//! steady-state inheritance, credit mis-application), the router either
//! deadlocks or silently overbooks buffers. We drive it with arbitrary
//! operation sequences and compare every observable against a brute-force
//! interval model. Generation runs on the repo's own
//! [`frfc::engine::propcheck`] harness, so the suite needs no external
//! crates and replays deterministically.

use frfc::engine::propcheck::{check, vec_of, AnyBool};
use frfc::engine::Cycle;
use frfc::fr::{InputReservationTable, OutputReservationTable};
use frfc::topology::{NodeId, Port};
use frfc::traffic::PacketId;

/// Brute-force reference: a list of buffer holds and busy cycles.
#[derive(Default)]
struct RefModel {
    capacity: i64,
    /// (hold_from, Option<frees_at>) — `None` until the credit arrives.
    holds: Vec<(u64, Option<u64>)>,
    busy: Vec<u64>,
}

impl RefModel {
    fn free_at(&self, t: u64) -> i64 {
        let held = self
            .holds
            .iter()
            .filter(|(from, until)| *from <= t && until.map(|u| t < u).unwrap_or(true))
            .count() as i64;
        self.capacity - held
    }
}

const HORIZON: u64 = 24;

/// Random schedule/credit/advance sequences: the table's free counts
/// always match the reference interval model, and `find_departure`
/// never returns a cycle that is busy, out of horizon, or that would
/// overbook a downstream buffer.
#[test]
fn output_table_matches_reference() {
    let strategy = (1usize..6, 0u64..5, vec_of(0u8..10, 1..120));
    check(64, strategy, |(capacity, prop_delay, ops)| {
        let mut table = OutputReservationTable::new(HORIZON, Some(capacity), prop_delay);
        let mut reference = RefModel {
            capacity: capacity as i64,
            ..Default::default()
        };
        let mut now = Cycle::ZERO;
        table.advance_to(now);
        // Reservations whose credit has not been sent yet.
        let mut uncredited: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                // Advance time 1-3 cycles.
                0..=3 => {
                    now = now + 1 + (op as u64 % 3);
                    table.advance_to(now);
                }
                // Try to schedule a flit arriving "now-ish".
                4..=7 => {
                    let t_a = now.saturating_sub(1);
                    if let Some(t_d) = table.find_departure(t_a, now, |_| true) {
                        assert!(t_d > t_a && t_d > now);
                        assert!(t_d <= now + HORIZON);
                        assert!(!reference.busy.contains(&t_d.raw()));
                        // A buffer must be free for the entire hold.
                        for t in (t_d.raw() + prop_delay)..(now.raw() + HORIZON + prop_delay + 2) {
                            assert!(reference.free_at(t) >= 1, "overbooked at {t}");
                        }
                        table.reserve(t_d);
                        reference.busy.push(t_d.raw());
                        reference.holds.push((t_d.raw() + prop_delay, None));
                        uncredited.push(t_d.raw());
                    }
                }
                // Deliver a credit for the oldest uncredited reservation.
                _ => {
                    if !uncredited.is_empty() {
                        let t_d = uncredited.remove(0);
                        // Downstream forwards the flit a few cycles after
                        // it lands; the wire keeps frees_at within the
                        // horizon of the upstream node's current time.
                        let frees_at =
                            (t_d + prop_delay + 1 + (op as u64 % 6)).min(now.raw() + HORIZON);
                        table.credit(Cycle::new(frees_at), now);
                        let hold = reference
                            .holds
                            .iter_mut()
                            .find(|(from, until)| *from == t_d + prop_delay && until.is_none())
                            .expect("uncredited hold exists");
                        hold.1 = Some(frees_at.max(now.raw()));
                    }
                }
            }
            // Compare observable free counts across the visible window.
            for t in now.raw()..now.raw() + HORIZON {
                assert_eq!(
                    table.free_at(Cycle::new(t)),
                    reference.free_at(t),
                    "free count diverged at cycle {t} (now {now})"
                );
            }
        }
    });
}

/// Advances to `target` inclusive, draining (and checking) any departure
/// that falls due along the way.
fn advance(
    table: &mut InputReservationTable,
    now: &mut Cycle,
    target: Cycle,
    expected: &mut Vec<(u64, u32)>,
) {
    while *now < target {
        *now = now.next();
        table.advance_to(*now);
        if let Some((f, port, _buffer)) = table.take_departure(*now) {
            assert_eq!(port, Port::East);
            let pos = expected.iter().position(|&(d, _)| d == now.raw());
            let pos = pos.unwrap_or_else(|| panic!("unexpected departure at {now}"));
            let (_, seq) = expected.remove(pos);
            assert_eq!(f.seq, seq);
        }
    }
}

/// The input reservation table delivers exactly the reserved flits at
/// exactly the reserved cycles, regardless of arrival/reservation
/// interleaving (early data flits go through the schedule list).
#[test]
fn input_table_delivers_reservations() {
    let strategy = vec_of((2u64..5, 1u64..8, AnyBool), 1..20);
    check(64, strategy, |flits| {
        let mut table = InputReservationTable::new(64, 32, 4);
        let mut now = Cycle::ZERO;
        table.advance_to(now);
        // (departure cycle, expected seq) of booked flits.
        let mut expected: Vec<(u64, u32)> = Vec::new();

        let mut t_a = Cycle::ZERO;
        let mut last_depart = 0u64;
        for (i, &(gap, extra, reservation_first)) in flits.iter().enumerate() {
            t_a += gap;
            let t_d = (t_a.raw() + extra).max(last_depart + 1);
            last_depart = t_d;
            let flit = frfc::flow::DataFlit {
                packet: PacketId::new(i as u64),
                seq: i as u32,
                length: flits.len() as u32,
                dest: NodeId::new(0),
                created_at: Cycle::ZERO,
                crc_ok: true,
            };
            if reservation_first {
                // Book while the arrival is still in the future...
                advance(&mut table, &mut now, t_a - 1, &mut expected);
                table.apply_reservation(t_a, Cycle::new(t_d), Port::East, now);
                // ...then the flit arrives on time.
                advance(&mut table, &mut now, t_a, &mut expected);
                table.on_data_arrival(flit, now);
            } else {
                // The flit arrives early and parks in the schedule list;
                // the reservation catches up afterwards.
                advance(&mut table, &mut now, t_a, &mut expected);
                table.on_data_arrival(flit, now);
                table.apply_reservation(t_a, Cycle::new(t_d), Port::East, now);
            }
            expected.push((t_d, i as u32));
        }
        // Drain every remaining departure.
        advance(
            &mut table,
            &mut now,
            Cycle::new(last_depart + 1),
            &mut expected,
        );
        assert!(
            expected.is_empty(),
            "undelivered reservations: {expected:?}"
        );
        assert_eq!(table.occupied(), 0);
        assert_eq!(table.parked(), 0);
    });
}
