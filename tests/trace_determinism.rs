//! Determinism and differential tests over the cycle-level trace.
//!
//! The trace turns "the simulation is deterministic" from a claim about
//! two latency numbers into a claim about every microarchitectural event:
//! two runs agree iff their event streams are bit-identical. On top of
//! that, the [`InvariantChecker`] audits whole simulations online — no
//! double-booked buffer, no data flit on an unreserved channel cycle,
//! no flit delivered twice — and the VC baseline and the FR router are
//! compared as black boxes: same offered traffic, same delivered set.

use frfc::engine::trace::{InvariantChecker, SharedSink, TraceEvent, TraceKind, VecSink};
use frfc::engine::{sweep, Rng};
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::Network;
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};
use std::collections::BTreeSet;

type Shared<S> = SharedSink<S>;

/// FR network with every router and the harness feeding one shared sink.
fn traced_fr<S: frfc::engine::trace::TraceSink>(
    mesh: Mesh,
    load: f64,
    seed: u64,
    sink: Shared<S>,
) -> Network<FrRouter<Shared<S>>, Shared<S>> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let cfg = FrConfig::fr6();
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

/// VC network with every router and the harness feeding one shared sink.
fn traced_vc<S: frfc::engine::trace::TraceSink>(
    mesh: Mesh,
    load: f64,
    seed: u64,
    sink: Shared<S>,
) -> Network<VcRouter<Shared<S>>, Shared<S>> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            VcRouter::with_tracer(
                mesh,
                node,
                VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

/// Full event stream of one traced FR run (inject, drain).
fn fr_trace(load: f64, seed: u64, cycles: u64, drain: u64) -> Vec<TraceEvent> {
    let shared = SharedSink::new(VecSink::new());
    let mut net = traced_fr(Mesh::new(4, 4), load, seed, shared.clone());
    net.run_cycles(cycles);
    net.stop_injection();
    net.run_cycles(drain);
    drop(net);
    shared.into_inner().into_events()
}

/// Full event stream of one traced VC run (inject, drain).
fn vc_trace(load: f64, seed: u64, cycles: u64, drain: u64) -> Vec<TraceEvent> {
    let shared = SharedSink::new(VecSink::new());
    let mut net = traced_vc(Mesh::new(4, 4), load, seed, shared.clone());
    net.run_cycles(cycles);
    net.stop_injection();
    net.run_cycles(drain);
    drop(net);
    shared.into_inner().into_events()
}

#[test]
fn same_seed_gives_bit_identical_fr_traces() {
    let a = fr_trace(0.4, 7, 1_000, 2_000);
    let b = fr_trace(0.4, 7, 1_000, 2_000);
    assert!(!a.is_empty(), "a moderate-load run must produce events");
    assert_eq!(a, b, "same seed must replay the exact event stream");
}

#[test]
fn same_seed_gives_bit_identical_vc_traces() {
    let a = vc_trace(0.4, 7, 1_000, 2_000);
    let b = vc_trace(0.4, 7, 1_000, 2_000);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_traces() {
    let a = fr_trace(0.4, 7, 1_000, 2_000);
    let b = fr_trace(0.4, 8, 1_000, 2_000);
    assert_ne!(a, b, "different seeds must diverge somewhere in the stream");
}

/// The sweep harness must not perturb simulations: each point's trace is
/// a pure function of its inputs, whatever the worker count.
#[test]
fn traces_are_identical_across_sweep_thread_counts() {
    let points: Vec<(f64, u64)> = vec![(0.2, 1), (0.3, 2), (0.4, 3), (0.5, 4), (0.3, 5), (0.2, 6)];
    let job = |_i: usize, &(load, seed): &(f64, u64)| fr_trace(load, seed, 600, 2_000);
    let serial = sweep::run_parallel(&points, 1, job);
    let threaded = sweep::run_parallel(&points, 8, job);
    assert_eq!(serial.len(), threaded.len());
    for (i, (a, b)) in serial.iter().zip(&threaded).enumerate() {
        assert!(!a.is_empty(), "point {i} produced no events");
        assert_eq!(a, b, "point {i} differs between 1 and 8 sweep threads");
    }
}

/// Extracts `(packet, latency-ignored)` delivery facts from a trace.
fn delivered_set(events: &[TraceEvent]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::PacketDelivered { packet, .. } => Some(packet),
            _ => None,
        })
        .collect()
}

fn injected_set(events: &[TraceEvent]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::PacketInjected { packet, .. } => Some(packet),
            _ => None,
        })
        .collect()
}

/// Differential test: the two flow controls are different machines, but
/// offered the same traffic (same generator seed) and fully drained,
/// they must deliver exactly the same set of packets.
#[test]
fn vc_and_fr_deliver_the_same_packet_set() {
    let vc = vc_trace(0.4, 21, 1_500, 4_000);
    let fr = fr_trace(0.4, 21, 1_500, 4_000);
    let vc_in = injected_set(&vc);
    let fr_in = injected_set(&fr);
    assert_eq!(
        vc_in, fr_in,
        "same generator seed must offer the same packets"
    );
    let vc_out = delivered_set(&vc);
    let fr_out = delivered_set(&fr);
    assert!(
        vc_out.len() > 50,
        "want a non-trivial sample, got {}",
        vc_out.len()
    );
    assert_eq!(vc_out, vc_in, "VC must drain completely");
    assert_eq!(fr_out, fr_in, "FR must drain completely");
    assert_eq!(vc_out, fr_out);
}

/// Fig. 5-style moderate-load FR run, audited event by event.
#[test]
fn invariant_checker_passes_a_moderate_load_fr_run() {
    let shared = SharedSink::new(InvariantChecker::new());
    let mut net = traced_fr(Mesh::new(4, 4), 0.5, 13, shared.clone());
    net.run_cycles(2_000);
    net.stop_injection();
    net.run_cycles(3_000);
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    drop(net);
    let checker = shared.into_inner();
    assert!(
        checker.events_seen() > 10_000,
        "expected a dense event stream"
    );
    checker.assert_clean();
    checker.assert_drained();
}

/// The same audit for the VC baseline (FIFO + conservation invariants).
#[test]
fn invariant_checker_passes_a_moderate_load_vc_run() {
    let shared = SharedSink::new(InvariantChecker::new());
    let mut net = traced_vc(Mesh::new(4, 4), 0.5, 13, shared.clone());
    net.run_cycles(2_000);
    net.stop_injection();
    net.run_cycles(3_000);
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    drop(net);
    let checker = shared.into_inner();
    assert!(checker.events_seen() > 10_000);
    checker.assert_clean();
    checker.assert_drained();
}

/// FR with leading control / slow data timing, plus the error model off:
/// the reservation discipline must hold in the harder timing regime too.
#[test]
fn invariant_checker_passes_leading_control_fr() {
    let shared = SharedSink::new(InvariantChecker::new());
    let root = Rng::from_seed(31);
    let mesh = Mesh::new(4, 4);
    let cfg = FrConfig::fr6().with_timing(LinkTiming::leading_control(2));
    let spec = LoadSpec::fraction_of_capacity(0.4, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = shared.clone();
    let mut net = Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        shared.clone(),
    );
    net.run_cycles(1_500);
    net.stop_injection();
    net.run_cycles(3_000);
    assert_eq!(net.tracker().in_flight(), 0);
    drop(net);
    let checker = shared.into_inner();
    checker.assert_clean();
    checker.assert_drained();
}

/// The control-wire error model retries are themselves traced, and the
/// run stays invariant-clean while retrying.
#[test]
fn invariant_checker_passes_with_control_errors() {
    let shared = SharedSink::new(InvariantChecker::new());
    let mut net = traced_fr(Mesh::new(4, 4), 0.3, 17, shared.clone());
    net.set_control_error_rate(0.02, 0xBAD5EED);
    net.run_cycles(1_500);
    net.stop_injection();
    net.run_cycles(4_000);
    assert_eq!(net.tracker().in_flight(), 0);
    let retries = net.control_retries();
    assert!(retries > 0, "a 2% error rate must produce some retries");
    drop(net);
    let checker = shared.into_inner();
    checker.assert_clean();
    checker.assert_drained();
}
