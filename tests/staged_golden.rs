//! Golden-trace differential suite for the pipeline-stage refactor.
//!
//! The staged routers must be *bit-identical* to the pre-refactor
//! monolithic step functions. This suite pins the full behavior of both
//! router families with fingerprints captured from the pre-refactor
//! code and committed in `tests/golden/staged_traces.txt`:
//!
//! * **network-level** streams (injections, deliveries, fault events)
//!   for every (family × load × faults) cell, proven equal across the
//!   sequential engine and 1/4-thread sharded stepping before being
//!   compared against the golden fingerprint;
//! * **router-level** streams (every queue enq/deq, VC/data send,
//!   credit, grant, reservation and stall marker) for the same cells on
//!   the sequential engine — the strongest equality the tracing layer
//!   can express.
//!
//! Regenerate the fixture with `FRFC_BLESS=1 cargo test -q --test
//! staged_golden` — but only when a behavior change is *intended*; the
//! whole point of this file is that the stage refactor is not one.

use frfc::engine::trace::{SharedSink, TraceEvent, TraceSink, VecSink};
use frfc::engine::Rng;
use frfc::faults::{DeadLink, FaultPlan};
use frfc::flow::{LinkTiming, Router};
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::Network;
use frfc::topology::{Mesh, Port};
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};
use std::fmt::Write as _;

const MESH: (u16, u16) = (4, 4);
const PACKET_FLITS: u32 = 5;

/// The acceptance matrix from the issue: light, moderate, near-saturation.
const LOADS: [f64; 3] = [0.2, 0.55, 0.8];

/// Thread counts the refactor must hold bit-identity under: 0 is the
/// plain sequential engine, 1 the planned engine's inline path, 4 real
/// concurrent shard rounds.
const THREADS: [usize; 3] = [0, 1, 4];

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/staged_traces.txt"
);

/// FNV-1a over the debug rendering of every event: cheap, dependency-free
/// and sensitive to any reordering, relabeling or drop.
fn fingerprint(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for event in events {
        line.clear();
        write!(line, "{event:?}").expect("format into string");
        for &b in line.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x0a;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The chaos-suite fault plan scaled for these runs: transient data
/// corruption, control drops and one permanent link failure.
fn fault_plan(seed: u64, mesh: Mesh) -> FaultPlan {
    let mut plan = FaultPlan::quiet(seed);
    plan.data_corrupt_rate = 2e-3;
    plan.control_drop_rate = 2e-3;
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    plan.dead_links.push(DeadLink {
        node: mesh.node_at(1, 1),
        port: Port::East,
        at_cycle: 300,
    });
    plan
}

fn vc_net<S: TraceSink + Clone>(load: f64, seed: u64, sink: S) -> Network<VcRouter<S>, S> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            VcRouter::with_tracer(
                mesh,
                node,
                VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

fn fr_net<S: TraceSink + Clone>(load: f64, seed: u64, sink: S) -> Network<FrRouter<S>, S> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

/// Injects for 500 cycles, then drains in bounded chunks (fault plans
/// with retransmission need an open-ended drain). `threads == 0` is the
/// sequential engine; anything else steps sharded.
fn run_to_drain<R: Router + Send, S: TraceSink>(net: &mut Network<R, S>, threads: usize) {
    let chunk = |net: &mut Network<R, S>, cycles: u64| {
        if threads == 0 {
            net.run_cycles(cycles);
        } else {
            net.run_cycles_sharded(cycles, threads);
        }
    };
    chunk(net, 500);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        chunk(net, 1_000);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network failed to drain");
}

/// Sequential-only variant of [`run_to_drain`] for routers carrying a
/// non-`Send` shared sink.
fn run_to_drain_seq<R: Router, S: TraceSink>(net: &mut Network<R, S>) {
    net.run_cycles(500);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        net.run_cycles(1_000);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network failed to drain");
}

/// One golden cell: the fingerprint and event count of a run.
fn net_cell(family: &str, load: f64, faults: bool, threads: usize) -> (u64, usize) {
    let seed = 0x60_1D + (load * 100.0) as u64;
    let mesh = Mesh::new(MESH.0, MESH.1);
    let events = match family {
        "vc8" => {
            let mut net = vc_net(load, seed, VecSink::new());
            if faults {
                net.set_fault_plan(fault_plan(0xFA_01, mesh));
            }
            run_to_drain(&mut net, threads);
            net.tracer().events().to_vec()
        }
        "fr6" => {
            let mut net = fr_net(load, seed, VecSink::new());
            if faults {
                net.set_fault_plan(fault_plan(0xFA_02, mesh));
            }
            run_to_drain(&mut net, threads);
            net.tracer().events().to_vec()
        }
        other => panic!("unknown family {other}"),
    };
    (fingerprint(&events), events.len())
}

/// Router-level cell: full per-router event streams through a shared
/// sink (single-threaded only — the shared sink is deliberately `Rc`).
fn router_cell(family: &str, load: f64, faults: bool) -> (u64, usize) {
    let seed = 0x60_1D + (load * 100.0) as u64;
    let mesh = Mesh::new(MESH.0, MESH.1);
    let shared = SharedSink::new(VecSink::new());
    match family {
        "vc8" => {
            let mut net = vc_net(load, seed, shared.clone());
            if faults {
                net.set_fault_plan(fault_plan(0xFA_01, mesh));
            }
            run_to_drain_seq(&mut net);
            drop(net);
        }
        "fr6" => {
            let mut net = fr_net(load, seed, shared.clone());
            if faults {
                net.set_fault_plan(fault_plan(0xFA_02, mesh));
            }
            run_to_drain_seq(&mut net);
            drop(net);
        }
        other => panic!("unknown family {other}"),
    }
    let events = shared.into_inner().into_events();
    (fingerprint(&events), events.len())
}

fn families() -> [&'static str; 2] {
    ["vc8", "fr6"]
}

/// Computes every golden line in a stable order.
fn compute_goldens() -> Vec<String> {
    let mut lines = Vec::new();
    for family in families() {
        for &load in &LOADS {
            for faults in [false, true] {
                // Network level: all thread counts must agree before the
                // fingerprint is compared against the fixture.
                let (hash, count) = net_cell(family, load, faults, 0);
                for &threads in &THREADS[1..] {
                    let (h, c) = net_cell(family, load, faults, threads);
                    assert_eq!(
                        (h, c),
                        (hash, count),
                        "{family}@{load} faults={faults}: {threads}-thread \
                         trace diverged from sequential"
                    );
                }
                lines.push(format!(
                    "net {family} load={load:.2} faults={faults} events={count} fnv={hash:016x}"
                ));
                let (rhash, rcount) = router_cell(family, load, faults);
                lines.push(format!(
                    "router {family} load={load:.2} faults={faults} events={rcount} fnv={rhash:016x}"
                ));
            }
        }
    }
    lines
}

#[test]
fn staged_routers_match_pre_refactor_golden_traces() {
    let lines = compute_goldens();
    if std::env::var("FRFC_BLESS").is_ok() {
        std::fs::write(GOLDEN_PATH, lines.join("\n") + "\n").expect("write golden fixture");
        eprintln!("blessed {} golden lines to {GOLDEN_PATH}", lines.len());
        return;
    }
    let fixture = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing; run with FRFC_BLESS=1 to create it");
    let want: Vec<&str> = fixture.lines().collect();
    let got: Vec<&str> = lines.iter().map(String::as_str).collect();
    assert_eq!(
        want, got,
        "staged routers diverged from the pre-refactor golden traces"
    );
}
