//! Chaos suite: whole simulations under active fault plans, audited
//! event by event by the [`InvariantChecker`].
//!
//! Each run injects CRC-caught data corruption, dropped-then-repaired
//! control flits and one permanent link failure, then drains with
//! injection stopped. The checks are the acceptance criteria of the
//! reliability layer: every packet is delivered exactly once (the
//! tracker rejects duplicates, the checker proves per-seq single
//! ejection), every injected flit copy is either ejected or explicitly
//! discarded, retransmission counts are bounded by the NACKs and
//! timeouts that caused them, and dead links are masked while traffic
//! keeps flowing around them.

use frfc::engine::trace::{InvariantChecker, SharedSink};
use frfc::engine::Rng;
use frfc::faults::{DeadLink, FaultPlan};
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::{FaultSummary, Network};
use frfc::topology::{Mesh, Port};
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};

type Checker = SharedSink<InvariantChecker>;

fn traced_vc(
    mesh: Mesh,
    load: f64,
    seed: u64,
    sink: Checker,
) -> Network<VcRouter<Checker>, Checker> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            VcRouter::with_tracer(
                mesh,
                node,
                VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

fn traced_fr(
    mesh: Mesh,
    load: f64,
    seed: u64,
    sink: Checker,
) -> Network<FrRouter<Checker>, Checker> {
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

/// A transient-plus-permanent plan sized for a short 4x4 test run: rates
/// high enough to fire dozens of times, recovery knobs fast enough that
/// the drain converges in a few thousand cycles.
fn chaos_plan(seed: u64, mesh: Mesh) -> FaultPlan {
    let mut plan = FaultPlan::quiet(seed);
    plan.data_corrupt_rate = 2e-3;
    plan.control_drop_rate = 2e-3;
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    plan.dead_links.push(DeadLink {
        node: mesh.node_at(1, 1),
        port: Port::East,
        at_cycle: 300,
    });
    plan
}

/// Runs until drained (bounded), then returns the fault summary.
fn run_and_drain<R: frfc::flow::Router>(net: &mut Network<R, Checker>) -> FaultSummary {
    net.run_cycles(2_000);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        net.run_cycles(1_000);
    }
    assert_eq!(
        net.tracker().in_flight(),
        0,
        "packets stuck in flight after a 20k-cycle drain under faults"
    );
    net.fault_summary().expect("fault layer must be armed")
}

fn check_protocol_accounting(label: &str, s: &FaultSummary) {
    let c = s.counters;
    assert!(c.data_corrupted > 0, "{label}: plan never corrupted a flit");
    assert!(
        c.corrupt_discarded <= c.data_corrupted,
        "{label}: more corrupt discards than corruptions"
    );
    assert!(
        c.retransmits <= c.nacks + c.timeout_retransmits,
        "{label}: retransmits unaccounted for by NACKs and timeouts"
    );
    assert_eq!(c.links_masked, 1, "{label}: dead link not applied");
    assert_eq!(
        s.retransmit_buffered, 0,
        "{label}: retransmit buffer not empty after drain"
    );
}

#[test]
fn vc_survives_chaos_with_exactly_once_delivery() {
    let mesh = Mesh::new(4, 4);
    let shared = SharedSink::new(InvariantChecker::new());
    let mut net = traced_vc(mesh, 0.4, 101, shared.clone());
    net.set_fault_plan(chaos_plan(0xC0A5, mesh));
    let summary = run_and_drain(&mut net);
    check_protocol_accounting("VC8", &summary);
    assert!(
        net.tracker().delivered_packets() > 100,
        "want a non-trivial sample, got {}",
        net.tracker().delivered_packets()
    );
    drop(net);
    let checker = shared.into_inner();
    assert!(
        checker.discarded_flits() > 0,
        "corrupt copies must be discarded at the NI"
    );
    checker.assert_drained_under_faults();
}

#[test]
fn fr_survives_chaos_with_exactly_once_delivery() {
    let mesh = Mesh::new(4, 4);
    let shared = SharedSink::new(InvariantChecker::new());
    let mut net = traced_fr(mesh, 0.4, 102, shared.clone());
    net.set_fault_plan(chaos_plan(0xC0A6, mesh));
    let summary = run_and_drain(&mut net);
    check_protocol_accounting("FR6", &summary);
    assert!(
        summary.counters.control_dropped > 0,
        "FR6: plan never dropped a control flit"
    );
    assert!(
        net.tracker().delivered_packets() > 100,
        "want a non-trivial sample, got {}",
        net.tracker().delivered_packets()
    );
    drop(net);
    let checker = shared.into_inner();
    assert!(checker.discarded_flits() > 0);
    checker.assert_drained_under_faults();
}

/// A permanent failure alone (no transient faults): routing must mask
/// the link, traffic must keep draining, and no retransmission machinery
/// should fire — CRC never fails, so no NACK is ever issued.
#[test]
fn dead_link_alone_degrades_gracefully_without_retransmits() {
    let mesh = Mesh::new(4, 4);
    for (label, chaos) in [("VC8", false), ("FR6", true)] {
        let shared = SharedSink::new(InvariantChecker::new());
        let mut plan = FaultPlan::quiet(7);
        plan.dead_links.push(DeadLink {
            node: mesh.node_at(1, 1),
            port: Port::East,
            at_cycle: 200,
        });
        let summary = if chaos {
            let mut net = traced_fr(mesh, 0.35, 103, shared.clone());
            net.set_fault_plan(plan);
            run_and_drain(&mut net)
        } else {
            let mut net = traced_vc(mesh, 0.35, 103, shared.clone());
            net.set_fault_plan(plan);
            run_and_drain(&mut net)
        };
        assert_eq!(summary.counters.links_masked, 1, "{label}");
        assert_eq!(
            summary.counters.retransmits, 0,
            "{label}: masking a link must not trigger retransmission"
        );
        assert_eq!(summary.counters.nacks, 0, "{label}");
        let checker = shared.into_inner();
        assert_eq!(
            checker.discarded_flits(),
            0,
            "{label}: no corruption, so nothing to discard"
        );
        checker.assert_drained_under_faults();
    }
}

/// The same chaos schedule replayed twice must produce the same protocol
/// activity, flit for flit — the fault layer is part of the seed path.
#[test]
fn chaos_runs_replay_deterministically() {
    let mesh = Mesh::new(4, 4);
    let mut summaries = Vec::new();
    let mut delivered = Vec::new();
    for _ in 0..2 {
        let shared = SharedSink::new(InvariantChecker::new());
        let mut net = traced_fr(mesh, 0.4, 104, shared.clone());
        net.set_fault_plan(chaos_plan(0xC0A7, mesh));
        summaries.push(run_and_drain(&mut net));
        delivered.push(net.tracker().delivered_packets());
    }
    assert_eq!(summaries[0], summaries[1], "fault activity must replay");
    assert_eq!(delivered[0], delivered[1], "deliveries must replay");
}
