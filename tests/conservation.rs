//! Cross-crate conservation tests: every injected packet is delivered
//! exactly once, at the right node, under both flow controls, all timing
//! regimes and both packet lengths. The `DeliveryTracker` panics on any
//! duplicate, loss-after-delivery or misdelivery, so "the run finishes
//! and drains" is itself a strong end-to-end check.

use frfc::engine::Rng;
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::Network;
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};

fn fr_net(mesh: Mesh, cfg: FrConfig, load: f64, length: u32, seed: u64) -> Network<FrRouter> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, length);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(1));
    Network::new(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
    )
}

fn vc_net(
    mesh: Mesh,
    cfg: VcConfig,
    timing: LinkTiming,
    load: f64,
    length: u32,
    seed: u64,
) -> Network<VcRouter> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, length);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(1));
    Network::new(mesh, timing, 2, generator, move |node| {
        VcRouter::new(mesh, node, cfg, root.fork(node.raw() as u64))
    })
}

fn assert_drains<R: frfc::flow::Router>(net: &mut Network<R>, run: u64, drain: u64, min: u64) {
    net.run_cycles(run);
    net.stop_injection();
    net.run_cycles(drain);
    assert_eq!(
        net.tracker().in_flight(),
        0,
        "packets stuck after {drain}-cycle drain"
    );
    assert!(
        net.tracker().delivered_packets() >= min,
        "expected at least {min} deliveries, got {}",
        net.tracker().delivered_packets()
    );
    assert_eq!(net.mean_queued_flits(), 0.0, "routers must be empty");
}

#[test]
fn fr_fast_control_conserves_short_packets() {
    let mesh = Mesh::new(6, 6);
    let mut net = fr_net(mesh, FrConfig::fr6(), 0.5, 5, 42);
    assert_drains(&mut net, 3_000, 3_000, 150);
}

#[test]
fn fr_fast_control_conserves_long_packets() {
    let mesh = Mesh::new(6, 6);
    let mut net = fr_net(mesh, FrConfig::fr13(), 0.4, 21, 43);
    assert_drains(&mut net, 3_000, 5_000, 30);
}

#[test]
fn fr_leading_control_conserves() {
    for lead in [1, 2, 4] {
        let mesh = Mesh::new(6, 6);
        let cfg = FrConfig::fr6().with_timing(LinkTiming::leading_control(lead));
        let mut net = fr_net(mesh, cfg, 0.5, 5, 44 + lead);
        assert_drains(&mut net, 3_000, 3_000, 150);
    }
}

#[test]
fn fr_wide_control_flits_conserve() {
    let mesh = Mesh::new(6, 6);
    let cfg = FrConfig::fr6().with_flits_per_control(4);
    let mut net = fr_net(mesh, cfg, 0.5, 5, 45);
    assert_drains(&mut net, 3_000, 3_000, 150);
}

#[test]
fn fr_all_or_nothing_conserves() {
    let mesh = Mesh::new(6, 6);
    let cfg = FrConfig::fr6()
        .with_flits_per_control(4)
        .with_policy(frfc::fr::SchedulingPolicy::AllOrNothing);
    let mut net = fr_net(mesh, cfg, 0.4, 5, 46);
    assert_drains(&mut net, 3_000, 4_000, 120);
}

#[test]
fn fr_small_horizon_conserves() {
    let mesh = Mesh::new(6, 6);
    let cfg = FrConfig::fr6().with_horizon(16);
    let mut net = fr_net(mesh, cfg, 0.5, 5, 47);
    assert_drains(&mut net, 3_000, 3_000, 150);
}

#[test]
fn fr_conserves_under_overload() {
    // Offered load beyond capacity: the network must still deliver
    // everything that was injected once injection stops.
    let mesh = Mesh::new(4, 4);
    let mut net = fr_net(mesh, FrConfig::fr6(), 1.3, 5, 48);
    net.run_cycles(2_000);
    net.stop_injection();
    net.run_cycles(20_000);
    assert_eq!(
        net.tracker().in_flight(),
        0,
        "overloaded network must drain"
    );
}

#[test]
fn vc_fast_control_conserves() {
    let mesh = Mesh::new(6, 6);
    let mut net = vc_net(
        mesh,
        VcConfig::vc8(),
        LinkTiming::fast_control(),
        0.5,
        5,
        49,
    );
    assert_drains(&mut net, 3_000, 3_000, 150);
}

#[test]
fn vc_shared_pool_conserves() {
    let mesh = Mesh::new(6, 6);
    let cfg = VcConfig::vc8().with_shared_pool();
    let mut net = vc_net(mesh, cfg, LinkTiming::fast_control(), 0.5, 5, 50);
    assert_drains(&mut net, 3_000, 3_000, 150);
}

#[test]
fn wormhole_conserves() {
    let mesh = Mesh::new(6, 6);
    let cfg = VcConfig::wormhole(8);
    let mut net = vc_net(mesh, cfg, LinkTiming::fast_control(), 0.3, 5, 51);
    assert_drains(&mut net, 3_000, 4_000, 90);
}

#[test]
fn vc_conserves_under_overload() {
    let mesh = Mesh::new(4, 4);
    let mut net = vc_net(
        mesh,
        VcConfig::vc8(),
        LinkTiming::fast_control(),
        1.3,
        5,
        52,
    );
    net.run_cycles(2_000);
    net.stop_injection();
    net.run_cycles(20_000);
    assert_eq!(net.tracker().in_flight(), 0);
}
