//! Integration tests for the metrics layer's two core contracts:
//!
//! 1. **Zero perturbation** — running metered must not change the
//!    simulation in any way: a metered run's `RunResult` is identical to
//!    the plain run's at the same seed.
//! 2. **Determinism** — two same-seed metered runs export byte-identical
//!    JSON once the wall-clock (`profile` / `wall_ms`) data is stripped.
//!
//! Plus sanity of the flit-reservation instrumentation: an FR run under
//! load must record reservation-table hits and zero-turnaround
//! departures — the paper's signature behaviours.

use flit_reservation::FrConfig;
use noc_flow::LinkTiming;
use noc_metrics::{strip_nondeterministic, Json, RunManifest};
use noc_network::{FlowControl, SimConfig};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn tiny_sim(seed: u64) -> SimConfig {
    let mut sim = SimConfig::quick(seed);
    sim.sample_packets = 300;
    sim.warmup.min_cycles = 500;
    sim.warmup.max_cycles = 4_000;
    sim
}

fn configs() -> [FlowControl; 2] {
    [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ]
}

#[test]
fn metered_run_does_not_perturb_the_simulation() {
    let mesh = Mesh::new(4, 4);
    let sim = tiny_sim(11);
    let load = LoadSpec::fraction_of_capacity(0.4, 5);
    for fc in configs() {
        let plain = fc.run(mesh, load, &sim);
        let (metered, _) = fc.run_metered(mesh, load, &sim, 32);
        let label = fc.label();
        assert_eq!(plain.delivered, metered.delivered, "{label}");
        assert_eq!(plain.end_cycle, metered.end_cycle, "{label}");
        assert_eq!(plain.measure_start, metered.measure_start, "{label}");
        assert_eq!(plain.completed, metered.completed, "{label}");
        assert_eq!(
            plain.mean_latency().to_bits(),
            metered.mean_latency().to_bits(),
            "{label}"
        );
        assert_eq!(
            plain.accepted_fraction.to_bits(),
            metered.accepted_fraction.to_bits(),
            "{label}"
        );
        assert_eq!(plain.p50_latency, metered.p50_latency, "{label}");
        assert_eq!(plain.p99_latency, metered.p99_latency, "{label}");
    }
}

#[test]
fn same_seed_metered_runs_export_identical_stripped_json() {
    let mesh = Mesh::new(4, 4);
    let sim = tiny_sim(17);
    let load = LoadSpec::fraction_of_capacity(0.4, 5);
    for fc in configs() {
        let label = fc.label();
        let (_, reg1) = fc.run_metered(mesh, load, &sim, 32);
        let (_, reg2) = fc.run_metered(mesh, load, &sim, 32);
        // Same manifest fields on both sides; wall_ms differs on purpose
        // to prove stripping removes it.
        let mut m1 = RunManifest::new("test", 17, "tiny", label.clone());
        let mut m2 = m1.clone();
        m1.wall_ms = 1;
        m2.wall_ms = 99;
        let mut doc1 = reg1.to_json(&m1);
        let mut doc2 = reg2.to_json(&m2);
        assert_ne!(doc1.render(), doc2.render(), "{label}: wall_ms must show");
        strip_nondeterministic(&mut doc1);
        strip_nondeterministic(&mut doc2);
        assert_eq!(doc1.render(), doc2.render(), "{label}");
    }
}

#[test]
fn fr_run_records_reservation_signature() {
    let mesh = Mesh::new(4, 4);
    let sim = tiny_sim(23);
    let load = LoadSpec::fraction_of_capacity(0.5, 5);
    let fc = FlowControl::FlitReservation(FrConfig::fr6());
    let (result, reg) = fc.run_metered(mesh, load, &sim, 32);
    assert!(result.completed, "moderate load must complete");
    assert!(
        reg.counter("total.reservation_hits") > 0,
        "FR under load must schedule flits through the reservation table"
    );
    assert!(
        reg.counter("total.zero_turnaround_departures") > 0,
        "some flits must depart on their arrival cycle (zero turnaround)"
    );
    assert!(
        reg.counter("total.control_flits_sent") > 0,
        "reservations travel in control flits"
    );
    assert!(reg.counter("net.cycles") > 0);
    // Link accounting is consistent: the network moved at least as many
    // data flits as the sample delivered (5 flits per packet, plus
    // warm-up traffic and multi-hop traversals).
    let link_data = reg.counter("total.link_data_flits");
    assert!(
        link_data >= result.delivered * 5,
        "links carried {link_data} data flits for {} delivered packets",
        result.delivered
    );
    // The export parses back to the same document.
    let doc = reg.to_json(&RunManifest::new("test", 23, "tiny", "FR6"));
    let reparsed = Json::parse(&doc.render()).expect("export round-trips");
    assert_eq!(doc.render(), reparsed.render());
}

#[test]
fn vc_run_records_stall_and_utilization_metrics() {
    let mesh = Mesh::new(4, 4);
    let sim = tiny_sim(29);
    let load = LoadSpec::fraction_of_capacity(0.6, 5);
    let fc = FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control());
    let (result, reg) = fc.run_metered(mesh, load, &sim, 32);
    assert!(result.delivered > 0);
    assert!(reg.counter("total.data_flits_sent") > 0);
    let util = reg
        .gauge("net.mean_data_link_utilization")
        .expect("utilization gauge");
    assert!(
        util > 0.0 && util < 1.0,
        "data-link utilization {util} out of range"
    );
    // Credit flits flow on a credit-based network.
    assert!(reg.counter("total.link_credit_flits") > 0);
}
