//! Large-mesh smoke: the full stack at scale, under heavy load.
//!
//! Every other suite runs on small meshes where a bug that only shows at
//! scale — a buffer pool that leaks one slot per thousand allocations, a
//! shard boundary off-by-one on meshes wider than a shard, a provenance
//! fold that misattributes long multi-hop spans — would never fire. This
//! suite pushes both router families across a large mesh at load 0.8
//! (near saturation) and checks the strongest end-state claims we have:
//! full delivery, a clean invariant audit with every buffer freed
//! ([`InvariantChecker::assert_drained`]), exact per-flit provenance
//! sums, and sharded-equals-sequential at a scale where shards span
//! multiple mesh rows.
//!
//! Two sizes share the test bodies:
//!
//! * the default **quick** variant (16×16) runs in the tier-1 suite and
//!   CI's debug profile;
//! * `FRFC_LARGE=full` switches to the full 32×32 mesh — minutes, not
//!   seconds, meant for release-profile soak runs.

use frfc::engine::trace::{InvariantChecker, SharedSink, VecSink};
use frfc::engine::warmup::WarmupConfig;
use frfc::engine::Rng;
use frfc::flow::LinkTiming;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::{FlowControl, Network, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};

const LOAD: f64 = 0.8;
const PACKET_FLITS: u32 = 5;

/// One scale of the smoke run.
struct Scale {
    mesh: Mesh,
    /// Cycles of injection before the drain.
    inject: u64,
    /// Drain budget: cycles allowed for the last flit to land.
    drain_cap: u64,
}

/// `FRFC_LARGE=full` selects the 32×32 mesh; anything else (including
/// unset — the CI quick variant) the 16×16 mesh.
fn scale() -> Scale {
    if std::env::var("FRFC_LARGE").as_deref() == Ok("full") {
        Scale {
            mesh: Mesh::new(32, 32),
            inject: 400,
            drain_cap: 40_000,
        }
    } else {
        Scale {
            mesh: Mesh::new(16, 16),
            inject: 150,
            drain_cap: 16_000,
        }
    }
}

/// Stops injection and steps until the tracker reports empty, within the
/// scale's drain budget.
fn drain<R: frfc::flow::Router, S: frfc::engine::trace::TraceSink>(
    net: &mut Network<R, S>,
    cap: u64,
) {
    net.stop_injection();
    let mut waited = 0;
    while net.tracker().in_flight() > 0 && waited < cap {
        net.run_cycles(200);
        waited += 200;
    }
    assert_eq!(
        net.tracker().in_flight(),
        0,
        "mesh failed to drain within {cap} cycles of stopping injection"
    );
}

/// Full-delivery + drained-audit smoke for the FR family: every router
/// feeds the invariant checker, so the end state proves every buffer
/// freed and every injected flit ejected exactly once.
#[test]
fn fr_large_mesh_at_heavy_load_delivers_everything_and_drains() {
    let s = scale();
    let shared = SharedSink::new(InvariantChecker::new());
    let root = Rng::from_seed(0x1A26E);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(LOAD, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(s.mesh, spec, root.fork(99));
    let router_sink = shared.clone();
    let mesh = s.mesh;
    let mut net = Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        shared.clone(),
    );
    net.run_cycles(s.inject);
    drain(&mut net, s.drain_cap);
    let delivered = net.tracker().delivered_packets();
    assert!(
        delivered > mesh.node_count() as u64,
        "heavy load must deliver a dense sample, got {delivered} packets"
    );
    drop(net);
    let checker = shared.into_inner();
    assert!(checker.events_seen() > 100_000, "expect a dense audit");
    checker.assert_drained();
}

/// The same smoke for the VC baseline.
#[test]
fn vc_large_mesh_at_heavy_load_delivers_everything_and_drains() {
    let s = scale();
    let shared = SharedSink::new(InvariantChecker::new());
    let root = Rng::from_seed(0x1A26F);
    let spec = LoadSpec::fraction_of_capacity(LOAD, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(s.mesh, spec, root.fork(99));
    let router_sink = shared.clone();
    let mesh = s.mesh;
    let mut net = Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            VcRouter::with_tracer(
                mesh,
                node,
                VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        shared.clone(),
    );
    net.run_cycles(s.inject);
    drain(&mut net, s.drain_cap);
    assert!(net.tracker().delivered_packets() > mesh.node_count() as u64);
    drop(net);
    let checker = shared.into_inner();
    assert!(checker.events_seen() > 100_000, "expect a dense audit");
    checker.assert_drained();
}

/// Sharded stepping at a scale where a shard owns multiple full mesh
/// rows: the network trace (every injection, ejection, delivery) must
/// match the sequential engine flit for flit.
#[test]
fn large_mesh_sharded_trace_matches_sequential() {
    let s = scale();
    let mesh = s.mesh;
    let run = |threads: usize| {
        let root = Rng::from_seed(0x5CA1E);
        let cfg = FrConfig::fr6();
        let spec = LoadSpec::fraction_of_capacity(LOAD, PACKET_FLITS);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        let mut net = Network::with_tracer(
            mesh,
            cfg.timing,
            cfg.control_lanes,
            generator,
            |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
            VecSink::new(),
        );
        if threads > 1 {
            net.run_cycles_sharded(s.inject, threads);
            net.stop_injection();
            let mut waited = 0;
            while net.tracker().in_flight() > 0 && waited < s.drain_cap {
                net.run_cycles_sharded(200, threads);
                waited += 200;
            }
        } else {
            net.run_cycles(s.inject);
            drain(&mut net, s.drain_cap);
        }
        assert_eq!(net.tracker().in_flight(), 0, "{threads}-thread drain");
        (
            net.tracker().delivered_packets(),
            net.tracer().events().to_vec(),
        )
    };
    let (seq_delivered, seq) = run(1);
    assert!(!seq.is_empty());
    let (par_delivered, par) = run(4);
    assert_eq!(seq_delivered, par_delivered);
    assert_eq!(seq, par, "sharded large-mesh trace diverged");
}

/// Exact provenance sums at scale: on long multi-hop paths every
/// sampled flit's phase attribution must still tile its measured
/// end-to-end latency cycle for cycle, for both families.
#[test]
fn large_mesh_provenance_sums_are_exact() {
    let s = scale();
    let sim = SimConfig {
        seed: 0xB16_F1A7,
        warmup: WarmupConfig {
            min_cycles: 200,
            max_cycles: 1_500,
            window: 4,
            tolerance: 0.1,
        },
        sample_packets: 200,
        drain_cap: s.drain_cap,
        warmup_probe_period: 16,
    };
    let spec = LoadSpec::fraction_of_capacity(LOAD, PACKET_FLITS);
    for fc in [
        FlowControl::FlitReservation(FrConfig::fr6()),
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
    ] {
        let label = fc.label();
        // Sample sparsely: the claim is exactness per record, not volume.
        let (_, report) = fc.run_traced(s.mesh, spec, &sim, 61);
        assert_eq!(report.malformed, 0, "{label}: malformed folds");
        assert!(!report.records.is_empty(), "{label}: nothing sampled");
        for r in &report.records {
            let mut prev_depart = 0;
            for hop in &r.hops {
                assert!(hop.arrive >= prev_depart, "{label}: hops out of order");
                prev_depart = hop.depart;
            }
            assert_eq!(
                r.attributed(),
                r.end_to_end(),
                "{label}: flit ({}, {}) attribution != end-to-end latency",
                r.packet,
                r.seq
            );
        }
    }
}
