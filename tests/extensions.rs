//! Tests for the extensions beyond the paper's evaluation: the control
//! wire error/retransmission model, the plesiochronous synchronization
//! margin, bursty injection and packet-length mixes — each exercised
//! end-to-end with conservation checking.

use frfc::engine::warmup::WarmupConfig;
use frfc::engine::Rng;
use frfc::fr::{FrConfig, FrRouter};
use frfc::network::{run_simulation, Network, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::{InjectionKind, LengthDistribution, LoadSpec, TrafficGenerator, Uniform};

fn sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup: WarmupConfig {
            min_cycles: 500,
            max_cycles: 4_000,
            window: 8,
            tolerance: 0.1,
        },
        sample_packets: 300,
        drain_cap: 20_000,
        warmup_probe_period: 32,
    }
}

fn fr_network(
    mesh: Mesh,
    cfg: FrConfig,
    load: LoadSpec,
    kind: InjectionKind,
    seed: u64,
) -> Network<FrRouter> {
    let root = Rng::from_seed(seed);
    let generator = TrafficGenerator::new(mesh, load, Box::new(Uniform), kind, root.fork(1));
    Network::new(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
    )
}

/// Section 5 error recovery: with control flits corrupted and
/// retransmitted, every packet is still delivered exactly once, and the
/// latency cost stays graceful at moderate error rates.
#[test]
fn control_errors_preserve_conservation() {
    let mesh = Mesh::new(6, 6);
    let load = LoadSpec::fraction_of_capacity(0.4, 5);
    let mut clean = fr_network(mesh, FrConfig::fr6(), load, InjectionKind::ConstantRate, 31);
    let r_clean = run_simulation(&mut clean, &sim(31));
    assert!(r_clean.completed);
    assert_eq!(clean.control_retries(), 0);

    let mut faulty = fr_network(mesh, FrConfig::fr6(), load, InjectionKind::ConstantRate, 31);
    faulty.set_control_error_rate(0.05, 99);
    let r_faulty = run_simulation(&mut faulty, &sim(31));
    assert!(r_faulty.completed, "5% control error rate must still drain");
    assert!(
        faulty.control_retries() > 100,
        "errors must actually fire ({} retries)",
        faulty.control_retries()
    );
    // Retransmissions delay control flits, so latency grows — but only
    // modestly at 5%.
    assert!(r_faulty.mean_latency() > r_clean.mean_latency());
    assert!(
        r_faulty.mean_latency() < r_clean.mean_latency() * 2.0,
        "degradation should be graceful: {:.1} vs {:.1}",
        r_faulty.mean_latency(),
        r_clean.mean_latency()
    );
}

/// A data flit that beats its retransmitted control flit must park in
/// the schedule list and still be delivered — errors exercise the
/// early-arrival path heavily under leading control.
#[test]
fn control_errors_with_leading_control() {
    let mesh = Mesh::new(6, 6);
    let cfg = FrConfig::fr6().with_timing(frfc::flow::LinkTiming::leading_control(1));
    let load = LoadSpec::fraction_of_capacity(0.4, 5);
    let mut net = fr_network(mesh, cfg, load, InjectionKind::ConstantRate, 32);
    net.set_control_error_rate(0.08, 7);
    let r = run_simulation(&mut net, &sim(32));
    assert!(r.completed, "leading control with errors must still drain");
    let parked: u64 = net.routers().map(|r| r.stats().parked_arrivals).sum();
    assert!(
        parked > 0,
        "delayed control flits must force schedule-list parking"
    );
}

/// Section 5 synchronization: a plesiochronous margin holds buffers one
/// extra accounting cycle. Conservation holds; throughput can only get
/// worse, never better.
#[test]
fn sync_margin_costs_throughput_not_correctness() {
    let mesh = Mesh::new(6, 6);
    let load = LoadSpec::fraction_of_capacity(0.6, 5);
    let meso = {
        let mut net = fr_network(mesh, FrConfig::fr6(), load, InjectionKind::ConstantRate, 33);
        run_simulation(&mut net, &sim(33))
    };
    let plesio = {
        let cfg = FrConfig::fr6().with_sync_margin(1);
        let mut net = fr_network(mesh, cfg, load, InjectionKind::ConstantRate, 33);
        run_simulation(&mut net, &sim(33))
    };
    assert!(meso.completed && plesio.completed);
    assert!(
        plesio.mean_latency() >= meso.mean_latency() * 0.98,
        "margin cannot speed the network up: {:.1} vs {:.1}",
        plesio.mean_latency(),
        meso.mean_latency()
    );
}

/// Bursty on/off sources: conservation and sane latency at equal mean
/// load (burstiness raises latency vs smooth arrivals).
#[test]
fn bursty_injection_conserves_and_costs_latency() {
    let mesh = Mesh::new(6, 6);
    let load = LoadSpec::fraction_of_capacity(0.4, 5);
    let smooth = {
        let mut net = fr_network(mesh, FrConfig::fr6(), load, InjectionKind::ConstantRate, 34);
        run_simulation(&mut net, &sim(34))
    };
    let bursty = {
        let kind = InjectionKind::OnOff {
            peak_rate: 0.6,
            mean_on: 16.0,
        };
        let mut net = fr_network(mesh, FrConfig::fr6(), load, kind, 34);
        run_simulation(&mut net, &sim(34))
    };
    assert!(smooth.completed && bursty.completed);
    assert!(
        bursty.mean_latency() > smooth.mean_latency(),
        "bursts must queue: {:.1} vs {:.1}",
        bursty.mean_latency(),
        smooth.mean_latency()
    );
}

/// Bimodal packet lengths flow end-to-end: short requests and long
/// replies share the network and all are delivered.
#[test]
fn bimodal_length_mix_conserves() {
    let mesh = Mesh::new(6, 6);
    let load = LoadSpec::with_lengths(
        0.4,
        LengthDistribution::Bimodal {
            short: 1,
            long: 21,
            short_fraction: 0.75,
        },
    );
    let mut net = fr_network(
        mesh,
        FrConfig::fr13(),
        load,
        InjectionKind::ConstantRate,
        35,
    );
    let r = run_simulation(&mut net, &sim(35));
    assert!(r.completed, "mixed lengths must drain");
    assert!(r.mean_latency() > 10.0);
    // Latency spread reflects the mix: some packets are single-flit.
    assert!(r.latency.min().unwrap() < r.latency.mean());
}

/// The sync margin composes with the error model and bursty arrivals —
/// the full robustness stack still conserves packets.
#[test]
fn robustness_stack_composes() {
    let mesh = Mesh::new(4, 4);
    let cfg = FrConfig::fr6().with_sync_margin(1);
    let load = LoadSpec::with_lengths(
        0.35,
        LengthDistribution::Bimodal {
            short: 1,
            long: 9,
            short_fraction: 0.5,
        },
    );
    let kind = InjectionKind::OnOff {
        peak_rate: 0.5,
        mean_on: 8.0,
    };
    let mut net = fr_network(mesh, cfg, load, kind, 36);
    net.set_control_error_rate(0.03, 11);
    let r = run_simulation(&mut net, &sim(36));
    assert!(r.completed, "the combined configuration must drain");
}
