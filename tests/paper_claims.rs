//! Shape-level reproduction of the paper's headline claims, at reduced
//! scale so the suite stays fast. Absolute numbers are checked loosely
//! (our router pipeline is a reconstruction, see DESIGN.md); *orderings*
//! — who wins, and roughly by how much — are checked strictly.

use frfc::engine::warmup::WarmupConfig;
use frfc::flow::LinkTiming;
use frfc::fr::FrConfig;
use frfc::network::{FlowControl, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::LoadSpec;
use frfc::vc::VcConfig;

fn sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup: WarmupConfig {
            min_cycles: 800,
            max_cycles: 5_000,
            window: 8,
            tolerance: 0.08,
        },
        sample_packets: 400,
        drain_cap: 15_000,
        warmup_probe_period: 32,
    }
}

fn latency(flow: &FlowControl, load: f64, length: u32) -> f64 {
    let mesh = Mesh::new(8, 8);
    let spec = LoadSpec::fraction_of_capacity(load, length);
    let r = flow.run(mesh, spec, &sim(2000));
    assert!(r.completed, "{} must sustain {load}", flow.label());
    r.mean_latency()
}

fn sustains(flow: &FlowControl, load: f64, length: u32, limit: f64) -> bool {
    let mesh = Mesh::new(8, 8);
    let spec = LoadSpec::fraction_of_capacity(load, length);
    let r = flow.run(mesh, spec, &sim(2000));
    r.completed && r.mean_latency() <= limit
}

fn vc8() -> FlowControl {
    FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control())
}

fn vc16() -> FlowControl {
    FlowControl::VirtualChannel(VcConfig::vc16(), LinkTiming::fast_control())
}

fn fr6() -> FlowControl {
    FlowControl::FlitReservation(FrConfig::fr6())
}

fn fr13() -> FlowControl {
    FlowControl::FlitReservation(FrConfig::fr13())
}

/// Section 4.1: FR has lower base latency than VC (paper: 27 vs 32
/// cycles, a 15.6% saving) because routing and arbitration are done in
/// advance by the control flits.
#[test]
fn fr_base_latency_beats_vc() {
    let vc = latency(&vc8(), 0.1, 5);
    let fr = latency(&fr6(), 0.1, 5);
    assert!(fr < vc, "FR base latency {fr:.1} must undercut VC {vc:.1}");
    let saving = (vc - fr) / vc;
    assert!(
        (0.05..0.35).contains(&saving),
        "latency saving {saving:.2} out of the paper's ballpark"
    );
}

/// Section 4.1: with equal storage, FR6 sustains loads that saturate VC8
/// (paper: 77% vs 63%).
#[test]
fn fr6_outlives_vc8_saturation() {
    let limit = 3.0 * latency(&vc8(), 0.1, 5);
    assert!(sustains(&vc8(), 0.45, 5, limit), "VC8 sustains 45%");
    assert!(
        !sustains(&vc8(), 0.72, 5, limit),
        "VC8 must be saturated at 72% (paper: 63%)"
    );
    assert!(
        sustains(&fr6(), 0.72, 5, limit),
        "FR6 must sustain 72% (paper: 77%)"
    );
}

/// Section 4.1: FR6 (6 buffers) approaches VC16 (16 buffers) — the
/// buffer-savings claim.
#[test]
fn fr6_matches_vc16_class_throughput() {
    let limit = 3.0 * latency(&vc16(), 0.1, 5);
    let load = 0.7;
    assert!(sustains(&vc16(), load, 5, limit), "VC16 sustains {load}");
    assert!(
        sustains(&fr6(), load, 5, limit),
        "FR6 with 6 buffers must keep up with VC16's 16 buffers at {load}"
    );
}

/// Section 4.1: FR13 extends throughput beyond VC16 (paper: 85% vs 80%).
#[test]
fn fr13_extends_vc16() {
    let limit = 3.0 * latency(&vc16(), 0.1, 5);
    let load = 0.82;
    assert!(
        !sustains(&vc16(), load, 5, limit),
        "VC16 saturates by {load}"
    );
    assert!(sustains(&fr13(), load, 5, limit), "FR13 sustains {load}");
}

/// Section 4.2: with 21-flit packets and only 6 buffers, FR6's edge is
/// tempered — it saturates well below its 5-flit saturation point.
#[test]
fn long_packets_temper_fr6() {
    let limit = 3.0 * latency(&fr6(), 0.1, 21);
    assert!(
        !sustains(&fr6(), 0.72, 21, limit),
        "FR6 must saturate below 72% with 21-flit packets (paper: 60%)"
    );
    assert!(sustains(&fr6(), 0.4, 21, limit), "FR6 sustains 40%");
}

/// Section 4.3: throughput is relatively insensitive to the scheduling
/// horizon — 16 vs 128 cycles changes mid-load latency only modestly.
#[test]
fn horizon_insensitivity() {
    let l16 = latency(
        &FlowControl::FlitReservation(FrConfig::fr6().with_horizon(16)),
        0.5,
        5,
    );
    let l128 = latency(
        &FlowControl::FlitReservation(FrConfig::fr6().with_horizon(128)),
        0.5,
        5,
    );
    let rel = (l16 - l128).abs() / l128;
    assert!(
        rel < 0.15,
        "horizon 16 vs 128 latency gap {rel:.2} too large at 50% load"
    );
}

/// Section 4.4: with leading control on uniform 1-cycle wires, FR and VC
/// have (approximately) equal base latency, and FR still wins at 50%
/// load (paper: 19 vs 21 cycles).
#[test]
fn leading_control_base_latency_parity_and_midload_win() {
    let wires = LinkTiming::leading_control(1);
    let fr = FlowControl::FlitReservation(FrConfig::fr6().with_timing(wires));
    let vc = FlowControl::VirtualChannel(VcConfig::vc8(), wires.vc_baseline_of());
    let fr_base = latency(&fr, 0.1, 5);
    let vc_base = latency(&vc, 0.1, 5);
    let rel = (fr_base - vc_base).abs() / vc_base;
    assert!(
        rel < 0.2,
        "leading-control base latencies should be close: FR {fr_base:.1} vs VC {vc_base:.1}"
    );
    let fr_mid = latency(&fr, 0.5, 5);
    let vc_mid = latency(&vc, 0.5, 5);
    assert!(
        fr_mid < vc_mid,
        "FR must win under load: {fr_mid:.1} vs {vc_mid:.1}"
    );
}

/// Section 4.4: throughput with leading control is independent of the
/// lead time (1 vs 4 cycles).
#[test]
fn lead_time_independence() {
    let mk = |lead| {
        FlowControl::FlitReservation(FrConfig::fr6().with_timing(LinkTiming::leading_control(lead)))
    };
    let l1 = latency(&mk(1), 0.55, 5);
    let l4 = latency(&mk(4), 0.55, 5);
    let rel = (l1 - l4).abs() / l1;
    assert!(
        rel < 0.25,
        "lead 1 vs 4 should perform alike at 55% load: {l1:.1} vs {l4:.1}"
    );
}

/// Section 5: the shared buffer pool does not rescue VC throughput — the
/// FR win comes from advance scheduling, not pooling.
#[test]
fn shared_pool_does_not_save_vc() {
    let shared = FlowControl::VirtualChannel(
        VcConfig::vc8().with_shared_pool(),
        LinkTiming::fast_control(),
    );
    let limit = 3.0 * latency(&shared, 0.1, 5);
    assert!(
        !sustains(&shared, 0.72, 5, limit),
        "shared-pool VC8 must still saturate where FR6 does not"
    );
}
