//! The windowed-telemetry acceptance suite.
//!
//! The telemetry layer's contract has two halves:
//!
//! * **Zero perturbation** — arming windows and the runtime profiler
//!   must not change the simulation by a single bit. Proven here by
//!   recomputing the golden network-trace fingerprints of
//!   `tests/golden/staged_traces.txt` with telemetry on: any divergence
//!   from the fixture (captured with telemetry off) fails the suite.
//! * **Shard-merge determinism** — a windowed export is a function of
//!   the simulated history, not of how the stepping was parallelised.
//!   Proven by byte-comparing stripped exports across 1/2/4/8 worker
//!   threads (plus CI's `FRFC_THREADS` pin) and across *random* shard
//!   partitions — arbitrary cut points, empty shards, single-node
//!   shards.
//!
//! On top sit the accounting identities: every Sum window's values must
//! sum exactly to the aggregate counter of the same name, and the
//! profiler must attribute the engine's measured wall-clock to named
//! phases.

use frfc::engine::propcheck::{check, vec_of};
use frfc::engine::trace::{TraceEvent, VecSink};
use frfc::engine::warmup::WarmupConfig;
use frfc::engine::Rng;
use frfc::faults::{DeadLink, FaultPlan};
use frfc::flow::{LinkTiming, Router};
use frfc::fr::{FrConfig, FrRouter};
use frfc::metrics::{strip_nondeterministic, MetricsRegistry, RunManifest, WindowKind};
use frfc::network::{FlowControl, Network, ShardPlan, SimConfig};
use frfc::topology::{Mesh, Port};
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};
use std::collections::HashMap;
use std::fmt::Write as _;

const MESH: (u16, u16) = (4, 4);
const PACKET_FLITS: u32 = 5;
const LOADS: [f64; 3] = [0.2, 0.55, 0.8];
const WINDOW_LOG2: u32 = 6;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/staged_traces.txt"
);

/// Same FNV-1a fingerprint as `tests/staged_golden.rs` — the fixture
/// lines were written with it.
fn fingerprint(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for event in events {
        line.clear();
        write!(line, "{event:?}").expect("format into string");
        for &b in line.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x0a;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The staged-golden fault plan, bit for bit.
fn fault_plan(seed: u64, mesh: Mesh) -> FaultPlan {
    let mut plan = FaultPlan::quiet(seed);
    plan.data_corrupt_rate = 2e-3;
    plan.control_drop_rate = 2e-3;
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    plan.dead_links.push(DeadLink {
        node: mesh.node_at(1, 1),
        port: Port::East,
        at_cycle: 300,
    });
    plan
}

/// A telemetry-armed network: network-level tracer for the fingerprint,
/// metrics registry with windows and the profiler on.
fn fr_net_telemetry(load: f64, seed: u64) -> Network<FrRouter, VecSink, MetricsRegistry> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let mut net = Network::with_instruments(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
        VecSink::new(),
        MetricsRegistry::new(),
    );
    net.set_telemetry_windows(WINDOW_LOG2);
    net.set_profiling(true);
    net
}

fn vc_net_telemetry(load: f64, seed: u64) -> Network<VcRouter, VecSink, MetricsRegistry> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let mut net = Network::with_instruments(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        |node| VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64)),
        VecSink::new(),
        MetricsRegistry::new(),
    );
    net.set_telemetry_windows(WINDOW_LOG2);
    net.set_profiling(true);
    net
}

/// The staged-golden drive: 500 cycles of injection, then bounded drain
/// chunks. `threads == 0` is the sequential engine.
fn run_to_drain<R: Router + Send>(net: &mut Network<R, VecSink, MetricsRegistry>, threads: usize) {
    let chunk = |net: &mut Network<R, VecSink, MetricsRegistry>, cycles: u64| {
        if threads == 0 {
            net.run_cycles(cycles);
        } else {
            net.run_cycles_sharded(cycles, threads);
        }
    };
    chunk(net, 500);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        chunk(net, 1_000);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network failed to drain");
}

/// Parses the golden fixture's network-level lines into
/// `(family, load-in-hundredths, faults) -> (events, fnv)`.
fn golden_net_lines() -> HashMap<(String, u64, bool), (usize, u64)> {
    let fixture = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing; run staged_golden with FRFC_BLESS=1 first");
    let mut map = HashMap::new();
    for line in fixture.lines() {
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 || fields[0] != "net" {
            continue;
        }
        let family = fields[1].to_string();
        let load: f64 = fields[2]
            .strip_prefix("load=")
            .expect("load field")
            .parse()
            .expect("load value");
        let faults = fields[3] == "faults=true";
        let events: usize = fields[4]
            .strip_prefix("events=")
            .expect("events field")
            .parse()
            .expect("event count");
        let fnv = u64::from_str_radix(fields[5].strip_prefix("fnv=").expect("fnv field"), 16)
            .expect("fnv hash");
        map.insert(
            (family, (load * 100.0).round() as u64, faults),
            (events, fnv),
        );
    }
    assert!(!map.is_empty(), "no net lines parsed from the fixture");
    map
}

/// Telemetry on, profiler on: the network trace must still match the
/// golden fingerprints captured with both off — on the sequential
/// engine and under concurrent shard rounds.
#[test]
fn telemetry_does_not_perturb_golden_traces() {
    let golden = golden_net_lines();
    let mesh = Mesh::new(MESH.0, MESH.1);
    for family in ["vc8", "fr6"] {
        for &load in &LOADS {
            for faults in [false, true] {
                let seed = 0x60_1D + (load * 100.0) as u64;
                for threads in [0usize, 4] {
                    let events = match family {
                        "vc8" => {
                            let mut net = vc_net_telemetry(load, seed);
                            if faults {
                                net.set_fault_plan(fault_plan(0xFA_01, mesh));
                            }
                            run_to_drain(&mut net, threads);
                            net.tracer().events().to_vec()
                        }
                        _ => {
                            let mut net = fr_net_telemetry(load, seed);
                            if faults {
                                net.set_fault_plan(fault_plan(0xFA_02, mesh));
                            }
                            run_to_drain(&mut net, threads);
                            net.tracer().events().to_vec()
                        }
                    };
                    let key = (family.to_string(), (load * 100.0).round() as u64, faults);
                    let &(want_events, want_fnv) = golden
                        .get(&key)
                        .unwrap_or_else(|| panic!("fixture has no net line for {key:?}"));
                    assert_eq!(
                        (events.len(), fingerprint(&events)),
                        (want_events, want_fnv),
                        "{family}@{load} faults={faults} threads={threads}: \
                         telemetry-on trace diverged from the golden fixture"
                    );
                }
            }
        }
    }
}

/// The tiny methodology config shared with `parallel_equivalence.rs`.
fn tiny_sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup: WarmupConfig {
            min_cycles: 400,
            max_cycles: 3_000,
            window: 4,
            tolerance: 0.1,
        },
        sample_packets: 150,
        drain_cap: 6_000,
        warmup_probe_period: 16,
    }
}

/// Thread counts the windowed export must be byte-identical under, with
/// CI's `FRFC_THREADS` pin appended like the rest of the tier-1 suite.
fn thread_matrix() -> Vec<usize> {
    let mut threads = vec![1, 2, 4, 8];
    if let Ok(v) = std::env::var("FRFC_THREADS") {
        let n: usize = v
            .parse()
            .unwrap_or_else(|_| panic!("FRFC_THREADS must be a positive integer, got {v}"));
        if n > 0 && !threads.contains(&n) {
            threads.push(n);
        }
    }
    threads
}

fn families() -> [FlowControl; 2] {
    [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ]
}

/// One telemetry run rendered with a fixed manifest and stripped of
/// wall-clock data, so only the simulated history remains.
fn stripped_export(fc: &FlowControl, load: f64, seed: u64, threads: usize) -> String {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let run = fc.run_telemetry(mesh, spec, &tiny_sim(seed), 32, WINDOW_LOG2, threads);
    let manifest = RunManifest::new("telemetry", seed, "tiny", fc.label());
    let mut doc = run.registry.to_json(&manifest);
    strip_nondeterministic(&mut doc);
    doc.render()
}

#[test]
fn windowed_export_is_byte_identical_across_thread_counts() {
    for fc in families() {
        let label = fc.label();
        for (i, &load) in LOADS.iter().enumerate() {
            let seed = 0x7E1E + i as u64;
            let base = stripped_export(&fc, load, seed, 1);
            assert!(
                base.contains("\"windows\""),
                "{label}@{load}: export carries no windows object"
            );
            for &threads in &thread_matrix()[1..] {
                let export = stripped_export(&fc, load, seed, threads);
                assert_eq!(
                    base, export,
                    "{label}@{load}: {threads}-thread windowed export diverged"
                );
            }
        }
    }
}

/// Drives one telemetry run under an arbitrary shard partition and
/// byte-compares the stripped export against the sequential baseline.
fn partition_export(cuts: Option<&[usize]>) -> String {
    let mut net = fr_net_telemetry(0.55, 0x9A9A);
    match cuts {
        None => {
            net.run_cycles(500);
            net.stop_injection();
            net.run_cycles(6_000);
        }
        Some(cuts) => {
            let nodes = net.mesh().node_count();
            net.set_shard_plan(ShardPlan::from_cuts(nodes, cuts));
            net.run_cycles_planned(500);
            net.stop_injection();
            net.run_cycles_planned(6_000);
        }
    }
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    net.flush_metrics();
    let registry = std::mem::take(net.metrics_mut());
    let manifest = RunManifest::new("telemetry", 0x9A9A, "tiny", "FR6");
    let mut doc = registry.to_json(&manifest);
    strip_nondeterministic(&mut doc);
    doc.render()
}

#[test]
fn windowed_export_is_byte_identical_across_random_shard_partitions() {
    let sequential = partition_export(None);
    assert!(sequential.contains("\"windows\""));
    // Cuts may exceed the node count (from_cuts clamps), repeat (empty
    // shards) or be absent entirely (one shard).
    check(8, vec_of(0usize..20, 0..6), |cuts| {
        assert_eq!(
            sequential,
            partition_export(Some(&cuts)),
            "partition {cuts:?} changed the windowed export"
        );
    });
}

#[test]
fn window_sums_equal_aggregate_totals_and_profiler_attributes() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    for fc in families() {
        let label = fc.label();
        for threads in [1usize, 4] {
            let spec = LoadSpec::fraction_of_capacity(0.55, PACKET_FLITS);
            let run = fc.run_telemetry(mesh, spec, &tiny_sim(0xACC7), 32, WINDOW_LOG2, threads);
            let reg = &run.registry;
            let mut sums = 0;
            for (name, w) in reg.windows() {
                if w.kind == WindowKind::Sum {
                    assert_eq!(
                        reg.window_total(name),
                        reg.counter(name) as f64,
                        "{label} threads={threads}: window {name} does not sum to its aggregate"
                    );
                    sums += 1;
                }
            }
            assert!(
                sums >= 8,
                "{label} threads={threads}: expected >= 8 Sum windows, found {sums}"
            );
            // The delivered-packet windows must also account for every
            // latency sample the run measured plus the warm-up/drain
            // deliveries — i.e. everything the tracker saw.
            assert!(
                reg.counter("net.delivered_packets") >= run.result.delivered,
                "{label} threads={threads}: fewer deliveries recorded than sampled"
            );
            // Debug builds time the same phases release builds do; the
            // release gate in telemetry_report --quick holds the 95%
            // acceptance line, this guards against gross regressions.
            assert!(
                run.profile.attributed_fraction() >= 0.90,
                "{label} threads={threads}: profiler attributes only {:.1}%",
                run.profile.attributed_fraction() * 100.0
            );
            assert_eq!(run.profile.threads as usize, threads);
        }
    }
}

/// Arming telemetry must not change the measurement record either: the
/// full methodology run (warm-up detection included) lands on the same
/// numbers as the uninstrumented harness.
#[test]
fn telemetry_run_result_matches_uninstrumented_run() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let spec = LoadSpec::fraction_of_capacity(0.55, PACKET_FLITS);
    for fc in families() {
        let label = fc.label();
        let plain = fc.run(mesh, spec, &tiny_sim(0xBEE));
        let telem = fc.run_telemetry(mesh, spec, &tiny_sim(0xBEE), 32, WINDOW_LOG2, 1);
        assert_eq!(plain.delivered, telem.result.delivered, "{label}");
        assert_eq!(plain.end_cycle, telem.result.end_cycle, "{label}");
        assert_eq!(plain.measure_start, telem.result.measure_start, "{label}");
        assert_eq!(
            plain.mean_latency().to_bits(),
            telem.result.mean_latency().to_bits(),
            "{label}"
        );
        assert_eq!(
            plain.accepted_fraction.to_bits(),
            telem.result.accepted_fraction.to_bits(),
            "{label}"
        );
    }
}
