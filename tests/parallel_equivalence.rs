//! The parallel-determinism suite: sharded multi-core stepping is a pure
//! performance feature, bit-identical to the sequential engine.
//!
//! The sharded engine runs deliver/offer/step concurrently on per-shard
//! slabs and hands cross-shard flits over in per-shard outboxes published
//! at the phase barrier, never mid-step. Its contract is equality, not
//! similarity: for every thread count, both router families and loads
//! from light to near-saturation, a sharded run must reproduce the
//! sequential run's **network trace** (every injection, ejection and
//! delivery, in order) and its **metrics export** (every counter, gauge
//! and series, byte-identical after wall-clock stripping).
//!
//! On top of the fixed thread-count matrix, property tests drive the
//! engine with *random* shard partitions — arbitrary cut points, empty
//! shards, single-node shards — and check the physical invariants
//! directly: every injected packet is delivered exactly once
//! (conservation) and the network drains to empty.

use frfc::engine::propcheck::{check, vec_of};
use frfc::engine::trace::{TraceEvent, TraceKind, VecSink};
use frfc::engine::warmup::WarmupConfig;
use frfc::engine::Rng;
use frfc::flow::{LinkTiming, Router};
use frfc::fr::{FrConfig, FrRouter};
use frfc::metrics::{strip_nondeterministic, RunManifest};
use frfc::network::{FlowControl, Network, ShardPlan, SimConfig};
use frfc::topology::Mesh;
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};
use std::collections::BTreeSet;

const MESH: (u16, u16) = (4, 4);
const PACKET_FLITS: u32 = 5;

/// The load matrix from the issue: light, moderate, near-saturation.
const LOADS: [f64; 3] = [0.2, 0.55, 0.8];

/// The thread-count matrix. 1 exercises the planned engine's inline
/// path; 2/4/8 exercise real concurrent shard rounds (8 shards on a
/// 16-node mesh leaves two nodes per shard, maximising hand-off
/// traffic). CI's `FRFC_THREADS` matrix appends its value so the tier-1
/// suite re-proves equivalence at whatever width the job pins.
fn thread_matrix() -> Vec<usize> {
    let mut threads = vec![1, 2, 4, 8];
    if let Ok(v) = std::env::var("FRFC_THREADS") {
        let n: usize = v
            .parse()
            .unwrap_or_else(|_| panic!("FRFC_THREADS must be a positive integer, got {v}"));
        if n > 0 && !threads.contains(&n) {
            threads.push(n);
        }
    }
    threads
}

fn fr_net(load: f64, seed: u64, sink: VecSink) -> Network<FrRouter, VecSink> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
        sink,
    )
}

fn vc_net(load: f64, seed: u64, sink: VecSink) -> Network<VcRouter, VecSink> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        |node| VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64)),
        sink,
    )
}

/// Injects, stops, drains; returns the full network-level event stream.
/// `threads == 0` is the sequential baseline ([`Network::cycle`]);
/// anything else steps sharded.
fn run_trace<R: Router + Send>(
    mut net: Network<R, VecSink>,
    threads: usize,
    cycles: u64,
    drain: u64,
) -> Vec<TraceEvent> {
    if threads == 0 {
        net.run_cycles(cycles);
        net.stop_injection();
        net.run_cycles(drain);
    } else {
        net.run_cycles_sharded(cycles, threads);
        net.stop_injection();
        net.run_cycles_sharded(drain, threads);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    net.tracer().events().to_vec()
}

#[test]
fn fr_trace_is_identical_across_all_thread_counts_and_loads() {
    for (i, &load) in LOADS.iter().enumerate() {
        let seed = 0xF100 + i as u64;
        let sequential = run_trace(fr_net(load, seed, VecSink::new()), 0, 500, 6_000);
        assert!(!sequential.is_empty(), "FR6@{load}: run produced no events");
        for threads in thread_matrix() {
            let sharded = run_trace(fr_net(load, seed, VecSink::new()), threads, 500, 6_000);
            assert_eq!(
                sequential, sharded,
                "FR6@{load}: {threads}-thread trace diverged from sequential"
            );
        }
    }
}

#[test]
fn vc_trace_is_identical_across_all_thread_counts_and_loads() {
    for (i, &load) in LOADS.iter().enumerate() {
        let seed = 0xC100 + i as u64;
        let sequential = run_trace(vc_net(load, seed, VecSink::new()), 0, 500, 6_000);
        assert!(!sequential.is_empty(), "VC8@{load}: run produced no events");
        for threads in thread_matrix() {
            let sharded = run_trace(vc_net(load, seed, VecSink::new()), threads, 500, 6_000);
            assert_eq!(
                sequential, sharded,
                "VC8@{load}: {threads}-thread trace diverged from sequential"
            );
        }
    }
}

/// A sim small enough to run the full metered matrix in the debug
/// profile while still exercising warm-up, measurement and drain.
fn tiny_sim(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup: WarmupConfig {
            min_cycles: 400,
            max_cycles: 3_000,
            window: 4,
            tolerance: 0.1,
        },
        sample_packets: 150,
        drain_cap: 6_000,
        warmup_probe_period: 16,
    }
}

fn families() -> [FlowControl; 2] {
    [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ]
}

/// Stripped JSON export of one metered sharded run, plus the facts of
/// its `RunResult` that must be thread-count invariant.
fn metered_export(fc: &FlowControl, load: f64, seed: u64, threads: usize) -> (String, Vec<u64>) {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let (result, reg) = fc.run_metered_sharded(mesh, spec, &tiny_sim(seed), 32, threads);
    let manifest = RunManifest::new("parallel-equivalence", seed, "tiny", fc.label());
    let mut doc = reg.to_json(&manifest);
    strip_nondeterministic(&mut doc);
    let facts = vec![
        result.delivered,
        result.end_cycle,
        result.measure_start,
        u64::from(result.completed),
        result.mean_latency().to_bits(),
        result.accepted_fraction.to_bits(),
    ];
    (doc.render(), facts)
}

#[test]
fn metrics_export_is_identical_across_all_thread_counts_and_loads() {
    for fc in families() {
        let label = fc.label();
        for (i, &load) in LOADS.iter().enumerate() {
            let seed = 0xE100 + i as u64;
            // threads == 1 runs the planned engine inline — itself
            // compared against the plain sequential harness below.
            let (base_json, base_facts) = metered_export(&fc, load, seed, 1);
            for &threads in &thread_matrix()[1..] {
                let (json, facts) = metered_export(&fc, load, seed, threads);
                assert_eq!(
                    base_facts, facts,
                    "{label}@{load}: {threads}-thread RunResult diverged"
                );
                assert_eq!(
                    base_json, json,
                    "{label}@{load}: {threads}-thread metrics export diverged"
                );
            }
        }
    }
}

/// Anchors the matrix above to the plain sequential harness: the metered
/// sharded run at one thread must equal `run_metered` exactly.
#[test]
fn metered_sharded_run_matches_the_sequential_harness() {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let spec = LoadSpec::fraction_of_capacity(0.55, PACKET_FLITS);
    for fc in families() {
        let label = fc.label();
        let (seq_result, seq_reg) = fc.run_metered(mesh, spec, &tiny_sim(0xA11), 32);
        let (shr_result, shr_reg) = fc.run_metered_sharded(mesh, spec, &tiny_sim(0xA11), 32, 4);
        assert_eq!(seq_result.delivered, shr_result.delivered, "{label}");
        assert_eq!(seq_result.end_cycle, shr_result.end_cycle, "{label}");
        assert_eq!(
            seq_result.mean_latency().to_bits(),
            shr_result.mean_latency().to_bits(),
            "{label}"
        );
        let manifest = RunManifest::new("parallel-equivalence", 0xA11, "tiny", label.clone());
        let mut seq_doc = seq_reg.to_json(&manifest);
        let mut shr_doc = shr_reg.to_json(&manifest);
        strip_nondeterministic(&mut seq_doc);
        strip_nondeterministic(&mut shr_doc);
        assert_eq!(
            seq_doc.render(),
            shr_doc.render(),
            "{label}: sharded metered export diverged from run_metered"
        );
    }
}

fn injected_set(events: &[TraceEvent]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::PacketInjected { packet, .. } => Some(packet),
            _ => None,
        })
        .collect()
}

fn delivered_set(events: &[TraceEvent]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::PacketDelivered { packet, .. } => Some(packet),
            _ => None,
        })
        .collect()
}

/// Drives one run under an arbitrary shard partition and checks the
/// physical invariants plus trace equality against `sequential`.
fn check_partition<R: Router + Send>(
    mut net: Network<R, VecSink>,
    cuts: &[usize],
    sequential: &[TraceEvent],
) {
    let nodes = net.mesh().node_count();
    net.set_shard_plan(ShardPlan::from_cuts(nodes, cuts));
    net.run_cycles_planned(500);
    net.stop_injection();
    net.run_cycles_planned(6_000);
    // Drained invariant: nothing in flight once injection stops and the
    // drain window passes.
    assert_eq!(
        net.tracker().in_flight(),
        0,
        "partition {cuts:?} left flits in flight"
    );
    let events = net.tracer().events();
    // Conservation: every injected packet is delivered, none invented.
    let injected = injected_set(events);
    let delivered = delivered_set(events);
    assert!(!injected.is_empty(), "partition {cuts:?} injected nothing");
    assert_eq!(
        injected, delivered,
        "partition {cuts:?} broke packet conservation"
    );
    // And the full stream still matches the sequential engine.
    assert_eq!(
        sequential, events,
        "partition {cuts:?} diverged from the sequential trace"
    );
}

#[test]
fn random_shard_partitions_preserve_fr_invariants() {
    let sequential = run_trace(fr_net(0.55, 0x9A9A, VecSink::new()), 0, 500, 6_000);
    // Cuts may exceed the node count (from_cuts clamps), repeat (empty
    // shards) or be absent entirely (one shard).
    check(10, vec_of(0usize..20, 0..6), |cuts| {
        check_partition(fr_net(0.55, 0x9A9A, VecSink::new()), &cuts, &sequential);
    });
}

#[test]
fn random_shard_partitions_preserve_vc_invariants() {
    let sequential = run_trace(vc_net(0.55, 0x9B9B, VecSink::new()), 0, 500, 6_000);
    check(6, vec_of(0usize..20, 0..6), |cuts| {
        check_partition(vc_net(0.55, 0x9B9B, VecSink::new()), &cuts, &sequential);
    });
}
