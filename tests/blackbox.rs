//! Acceptance suite for the blackbox observability layer.
//!
//! Three properties pin the flight recorder, the state-dump/replay
//! substrate and the progress watchdog:
//!
//! * **Zero perturbation** — running with a `RingSink` flight recorder
//!   teed next to a full `VecSink` reproduces the committed golden trace
//!   fingerprints (`tests/golden/staged_traces.txt`) bit for bit, and
//!   the ring holds exactly the tail of the full stream with an exact
//!   dropped count. The recorder observes; it never steers.
//! * **Replay equality** — a state dump captured at a cycle replays to
//!   the identical `state_digest` on 1, 4 and 8 threads, for both
//!   router families, with and without an active fault plan.
//! * **Watchdog** — a constructed dead-link livelock (every eastbound
//!   link out of column 0 cut at cycle 0) trips the progress watchdog,
//!   and the captured crash sidecar round-trips through the text form
//!   and replays cleanly.
//!
//! The network-construction helpers mirror `tests/staged_golden.rs`
//! exactly (same seeds, same RNG forks) — the golden fingerprints were
//! blessed through those recipes, and this suite's whole point is to
//! rerun them with the recorder armed.

use frfc::engine::trace::{RingSink, TeeSink, TraceEvent, TraceSink, VecSink};
use frfc::engine::Rng;
use frfc::faults::{DeadLink, FaultPlan};
use frfc::flow::{LinkTiming, Router};
use frfc::fr::{FrConfig, FrRouter};
use frfc::metrics::{json_diff, Json};
use frfc::network::{
    capture_at_cycle, replay_to_cycle, run_blackbox, Network, ReplaySpec, Trigger,
};
use frfc::topology::{Mesh, Port};
use frfc::traffic::{LoadSpec, TrafficGenerator};
use frfc::vc::{VcConfig, VcRouter};
use std::fmt::Write as _;

const MESH: (u16, u16) = (4, 4);
const PACKET_FLITS: u32 = 5;
/// Small enough that every golden cell overflows it, so the wraparound
/// path (not just the filling path) is what the proof exercises.
const RING_CAP: usize = 256;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/staged_traces.txt"
);

/// FNV-1a over the debug rendering of every event — the same
/// fingerprint `tests/staged_golden.rs` blessed the fixture with.
fn fingerprint(events: &[TraceEvent]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut line = String::new();
    for event in events {
        line.clear();
        write!(line, "{event:?}").expect("format into string");
        for &b in line.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= 0x0a;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The staged-golden fault plan: transient corruption, control drops
/// and one permanent link failure at cycle 300.
fn fault_plan(seed: u64, mesh: Mesh) -> FaultPlan {
    let mut plan = FaultPlan::quiet(seed);
    plan.data_corrupt_rate = 2e-3;
    plan.control_drop_rate = 2e-3;
    plan.repair_delay = 4;
    plan.ack_latency = 8;
    plan.retransmit_timeout = 64;
    plan.max_backoff_exp = 2;
    plan.dead_links.push(DeadLink {
        node: mesh.node_at(1, 1),
        port: Port::East,
        at_cycle: 300,
    });
    plan
}

fn vc_net<S: TraceSink + Clone>(load: f64, seed: u64, sink: S) -> Network<VcRouter<S>, S> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        LinkTiming::fast_control(),
        2,
        generator,
        move |node| {
            VcRouter::with_tracer(
                mesh,
                node,
                VcConfig::vc8(),
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

fn fr_net<S: TraceSink + Clone>(load: f64, seed: u64, sink: S) -> Network<FrRouter<S>, S> {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let root = Rng::from_seed(seed);
    let cfg = FrConfig::fr6();
    let spec = LoadSpec::fraction_of_capacity(load, PACKET_FLITS);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let router_sink = sink.clone();
    Network::with_tracer(
        mesh,
        cfg.timing,
        cfg.control_lanes,
        generator,
        move |node| {
            FrRouter::with_tracer(
                mesh,
                node,
                cfg,
                root.fork(node.raw() as u64),
                router_sink.clone(),
            )
        },
        sink,
    )
}

/// Sequential inject-then-drain schedule from the golden suite.
fn run_to_drain<R: Router, S: TraceSink>(net: &mut Network<R, S>) {
    net.run_cycles(500);
    net.stop_injection();
    for _ in 0..20 {
        if net.tracker().in_flight() == 0 {
            break;
        }
        net.run_cycles(1_000);
    }
    assert_eq!(net.tracker().in_flight(), 0, "network failed to drain");
}

/// Looks up one `net` line of the golden fixture: (event count, fnv).
fn golden_net_line(family: &str, load: f64, faults: bool) -> (usize, u64) {
    let fixture = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden fixture missing; bless it via tests/staged_golden.rs");
    let needle = format!("net {family} load={load:.2} faults={faults} ");
    let line = fixture
        .lines()
        .find(|l| l.starts_with(&needle))
        .unwrap_or_else(|| panic!("fixture has no line starting with `{needle}`"));
    let field = |prefix: &str| -> &str {
        line.split_whitespace()
            .find_map(|tok| tok.strip_prefix(prefix))
            .unwrap_or_else(|| panic!("`{line}` lacks a {prefix} field"))
    };
    let count = field("events=").parse().expect("events field parses");
    let hash = u64::from_str_radix(field("fnv="), 16).expect("fnv field parses");
    (count, hash)
}

/// The ring must be a pure observer: with a `RingSink` teed next to the
/// full recording, the full stream still matches the golden fingerprint
/// blessed *without* any ring, and the ring holds exactly the stream's
/// tail with an exact eviction count.
#[test]
fn ring_recorder_is_zero_perturbation() {
    let load = 0.55;
    let seed = 0x60_1D + (load * 100.0) as u64;
    let mesh = Mesh::new(MESH.0, MESH.1);
    for family in ["vc8", "fr6"] {
        for faults in [false, true] {
            let tee = TeeSink::new(VecSink::new(), RingSink::new(RING_CAP));
            let (full, ring) = match family {
                "vc8" => {
                    let mut net = vc_net(load, seed, tee);
                    if faults {
                        net.set_fault_plan(fault_plan(0xFA_01, mesh));
                    }
                    run_to_drain(&mut net);
                    (net.tracer().a.events().to_vec(), net.tracer().b.clone())
                }
                "fr6" => {
                    let mut net = fr_net(load, seed, tee);
                    if faults {
                        net.set_fault_plan(fault_plan(0xFA_02, mesh));
                    }
                    run_to_drain(&mut net);
                    (net.tracer().a.events().to_vec(), net.tracer().b.clone())
                }
                other => panic!("unknown family {other}"),
            };
            let cell = format!("{family} load={load:.2} faults={faults}");
            let (want_count, want_hash) = golden_net_line(family, load, faults);
            assert_eq!(full.len(), want_count, "{cell}: event count perturbed");
            assert_eq!(
                fingerprint(&full),
                want_hash,
                "{cell}: ring-armed trace diverged from the golden fingerprint"
            );
            let tail: Vec<TraceEvent> = ring.events().copied().collect();
            assert!(
                full.len() > RING_CAP,
                "{cell}: cell too small to wrap the ring"
            );
            assert_eq!(tail.len(), RING_CAP, "{cell}: ring not full");
            assert_eq!(
                tail.as_slice(),
                &full[full.len() - RING_CAP..],
                "{cell}: ring does not hold the stream's tail"
            );
            assert_eq!(
                ring.dropped() as usize,
                full.len() - RING_CAP,
                "{cell}: eviction count wrong"
            );
        }
    }
}

/// A dump captured at a cycle replays to the identical digest on 1, 4
/// and 8 threads, for both families — and a capture taken *by* a
/// sharded run equals the sequential capture.
#[test]
fn replay_digest_matches_across_thread_counts() {
    for config in ["FR6", "VC8"] {
        let mut spec = ReplaySpec::fr6_small(0xB1_AC);
        spec.config = config.into();
        spec.inject_cycles = 150;
        let sidecar = capture_at_cycle(&spec, 220, 1).expect("capture");
        for threads in [1usize, 4, 8] {
            let report = replay_to_cycle(&sidecar, threads).expect("replay");
            assert!(
                report.matches(),
                "{config}: replay at {threads} threads diverged \
                 (expected {} got {}, first diff {:?})",
                report.expected_digest,
                report.live_digest,
                report.diffs.first()
            );
        }
        let sharded = capture_at_cycle(&spec, 220, 4).expect("sharded capture");
        assert_eq!(
            sidecar.get("state_digest").and_then(Json::as_str),
            sharded.get("state_digest").and_then(Json::as_str),
            "{config}: sharded capture digest differs from sequential"
        );
    }
}

/// Replay equality holds with the staged-golden fault plan active —
/// capture lands after the dead link fires, mid-retransmission.
#[test]
fn replay_digest_matches_under_an_active_fault_plan() {
    let mut spec = ReplaySpec::fr6_small(0xFA_CE);
    spec.inject_cycles = 350;
    spec.fault = Some(fault_plan(0xFA_02, Mesh::new(MESH.0, MESH.1)));
    let sidecar = capture_at_cycle(&spec, 450, 1).expect("capture");
    for threads in [1usize, 4, 8] {
        let report = replay_to_cycle(&sidecar, threads).expect("replay");
        assert!(
            report.matches(),
            "faulted replay at {threads} threads diverged \
             (expected {} got {}, first diff {:?})",
            report.expected_digest,
            report.live_digest,
            report.diffs.first()
        );
    }
}

/// The livelock `frfc-inspect --self-check` also runs: cutting every
/// eastbound link out of column 0 strands eastbound traffic injected
/// there, so after the deliverable packets drain the network makes no
/// progress with packets still in flight.
fn livelock_spec() -> ReplaySpec {
    let mesh = Mesh::new(MESH.0, MESH.1);
    let mut spec = ReplaySpec::fr6_small(0xDEAD_0001);
    spec.watchdog = Some(500);
    spec.fault = Some(FaultPlan {
        dead_links: (0..MESH.1)
            .map(|y| DeadLink {
                node: mesh.node_at(0, y),
                port: Port::East,
                at_cycle: 0,
            })
            .collect(),
        ..FaultPlan::quiet(0xFA_11)
    });
    spec
}

/// The watchdog catches the constructed livelock, and the crash sidecar
/// survives a text round trip and replays bit for bit.
#[test]
fn watchdog_catches_a_dead_link_livelock() {
    let run = run_blackbox(&livelock_spec(), 1).expect("run");
    assert_eq!(
        run.trigger,
        Trigger::Watchdog,
        "expected a watchdog trip, got: {}",
        run.detail
    );
    let sidecar = run.sidecar.expect("watchdog trip captures a sidecar");
    assert_eq!(
        sidecar.get("trigger").and_then(Json::as_str),
        Some("watchdog")
    );
    assert!(
        sidecar.get("in_flight").and_then(Json::as_u64).unwrap_or(0) > 0,
        "a livelock sidecar must show packets still in flight"
    );
    let ring_events = sidecar
        .get("ring")
        .and_then(|r| r.get("events"))
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    assert!(ring_events > 0, "flight recorder captured nothing");

    // The sidecar is a disk artefact: render -> parse must be lossless.
    let reparsed = Json::parse(&sidecar.render()).expect("sidecar reparses");
    assert!(
        json_diff(&sidecar, &reparsed).is_empty(),
        "sidecar changed across the text round trip"
    );

    for threads in [1usize, 4] {
        let report = replay_to_cycle(&reparsed, threads).expect("replay");
        assert!(
            report.matches(),
            "livelock replay at {threads} threads diverged \
             (expected {} got {}, first diff {:?})",
            report.expected_digest,
            report.live_digest,
            report.diffs.first()
        );
    }
}

/// A mid-injection FR dump carries live reservation-table timelines —
/// the `busy` strings `frfc-inspect show` renders must have substance.
#[test]
fn state_dump_carries_reservation_timelines() {
    let mut spec = ReplaySpec::fr6_small(0x71_3E);
    spec.load = 0.6;
    let sidecar = capture_at_cycle(&spec, 120, 1).expect("capture");
    let routers = sidecar
        .get("state")
        .and_then(|s| s.get("routers"))
        .and_then(Json::as_array)
        .expect("dump has routers");
    let reserved: usize = routers
        .iter()
        .flat_map(|r| {
            r.get("reservation")
                .and_then(|s| s.get("tables"))
                .and_then(Json::as_array)
                .into_iter()
                .flatten()
        })
        .filter_map(|e| {
            e.get("table")
                .and_then(|t| t.get("busy"))
                .and_then(Json::as_str)
        })
        .map(|busy| busy.chars().filter(|&c| c == 'X').count())
        .sum();
    assert!(
        reserved > 0,
        "mid-injection FR dump shows no reserved output slots"
    );
}
