//! Flit wire formats.
//!
//! Two families of flits cross the simulated wires:
//!
//! * [`DataFlit`] — the wide payload flits (f = 256 bits in the paper).
//!   Under flit-reservation flow control they carry *no* control
//!   information at all ("The data flits themselves contain only payload
//!   information. They are identified solely by their time of arrival.");
//!   under virtual-channel flow control the link tags them with a VC id
//!   and a type field, represented by [`VcTag`].
//! * [`ControlFlit`] — the narrow flits of the FR control network. A
//!   control head flit carries the packet destination; every control flit
//!   carries a control-VC id and the arrival times of up to `d` data flits
//!   it leads (paper Figure 2).
//!
//! The `packet`/`seq` fields on [`DataFlit`] are simulator metadata used
//! for end-to-end checking and latency accounting; they do not model
//! transmitted bits (the overhead models in `noc-overhead` account for
//! real bit costs).

use noc_engine::Cycle;
use noc_topology::NodeId;
use noc_traffic::PacketId;

/// Position of a flit within its packet, as encoded by the type field of
/// virtual-channel flow control.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlitType {
    /// First flit; carries the route information.
    Head,
    /// Middle flit.
    Body,
    /// Last flit; releases the virtual channel.
    Tail,
    /// Single-flit packet: head and tail at once.
    HeadTail,
}

impl FlitType {
    /// Classifies flit `seq` of a packet with `length` flits.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= length` or `length == 0`.
    pub fn for_position(seq: u32, length: u32) -> FlitType {
        assert!(length > 0, "packets have at least one flit");
        assert!(seq < length, "flit sequence out of range");
        match (seq, length) {
            (0, 1) => FlitType::HeadTail,
            (0, _) => FlitType::Head,
            (s, l) if s + 1 == l => FlitType::Tail,
            _ => FlitType::Body,
        }
    }

    /// `true` for `Head` and `HeadTail`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitType::Head | FlitType::HeadTail)
    }

    /// `true` for `Tail` and `HeadTail`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitType::Tail | FlitType::HeadTail)
    }
}

/// One payload flit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataFlit {
    /// Owning packet (simulator metadata).
    pub packet: PacketId,
    /// Position within the packet, `0..length` (simulator metadata).
    pub seq: u32,
    /// Packet length in flits (simulator metadata).
    pub length: u32,
    /// Final destination (simulator metadata; on the VC network the head
    /// flit genuinely carries this, on the FR data network it is carried
    /// by the control flits instead).
    pub dest: NodeId,
    /// Creation time of the packet, for latency accounting.
    pub created_at: Cycle,
    /// Per-flit CRC status: `true` while the payload checksum verifies.
    /// Link-level fault injection clears the bit in place of flipping
    /// payload bits; the destination network interface discards flits
    /// whose CRC fails and NACKs the source (see `noc-faults`).
    pub crc_ok: bool,
}

impl DataFlit {
    /// The flit with its CRC bit cleared, as produced by a corrupting
    /// link traversal.
    pub fn corrupted(self) -> Self {
        DataFlit {
            crc_ok: false,
            ..self
        }
    }
}

/// The VC-network tag padded onto each data flit by virtual-channel flow
/// control: `log2(v)` bits of VC id plus a `t`-bit type field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VcTag {
    /// Virtual channel the flit travels on.
    pub vc: u8,
    /// Head/body/tail marker.
    pub ty: FlitType,
}

/// Role of a control flit (paper Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Control head flit: carries the packet destination, performs routing
    /// and leads the first data flit.
    Head {
        /// Packet destination used by the routing step.
        dest: NodeId,
    },
    /// Control body flit: looks up its route by control-VC id.
    Body,
}

/// A data flit led by a control flit, identified by its arrival time.
///
/// `arrival` is rewritten at every hop: once the output scheduler picks a
/// departure time `t_d`, the field becomes `t_d + t_p`, the arrival time
/// at the next router. `scheduled` marks whether the current router has
/// already booked this flit; it is cleared whenever the control flit
/// arrives at the next router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LedFlit {
    /// Arrival time of the data flit at the router currently holding this
    /// control flit.
    pub arrival: Cycle,
    /// Whether the current router has already reserved this flit's
    /// departure (per-flit scheduling can leave a control flit partially
    /// scheduled across cycles).
    pub scheduled: bool,
    /// The data flit being led (simulator metadata for checking).
    pub flit: DataFlit,
}

/// One flit of the FR control network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControlFlit {
    /// Control virtual channel id, tying the control flits of one packet
    /// together.
    pub vc: u8,
    /// Head (routes) or body (follows).
    pub kind: ControlKind,
    /// `true` on the last control flit of the packet; releases the
    /// control VC.
    pub is_tail: bool,
    /// The up-to-`d` data flits this control flit leads; empty for pure
    /// control packets.
    pub led: Vec<LedFlit>,
    /// Owning packet (simulator metadata).
    pub packet: PacketId,
}

impl ControlFlit {
    /// `true` if every led data flit has been scheduled at the current
    /// router (tracked externally); convenience for head detection.
    pub fn is_head(&self) -> bool {
        matches!(self.kind, ControlKind::Head { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_type_classification() {
        assert_eq!(FlitType::for_position(0, 1), FlitType::HeadTail);
        assert_eq!(FlitType::for_position(0, 5), FlitType::Head);
        assert_eq!(FlitType::for_position(2, 5), FlitType::Body);
        assert_eq!(FlitType::for_position(4, 5), FlitType::Tail);
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitType::Head.is_head());
        assert!(FlitType::HeadTail.is_head());
        assert!(FlitType::HeadTail.is_tail());
        assert!(FlitType::Tail.is_tail());
        assert!(!FlitType::Body.is_head());
        assert!(!FlitType::Body.is_tail());
    }

    #[test]
    #[should_panic(expected = "sequence out of range")]
    fn out_of_range_seq_panics() {
        FlitType::for_position(5, 5);
    }

    #[test]
    fn control_head_detection() {
        let head = ControlFlit {
            vc: 0,
            kind: ControlKind::Head {
                dest: NodeId::new(3),
            },
            is_tail: false,
            led: Vec::new(),
            packet: PacketId::new(0),
        };
        assert!(head.is_head());
        let body = ControlFlit {
            kind: ControlKind::Body,
            ..head
        };
        assert!(!body.is_head());
    }
}
