//! Flit buffer pools.
//!
//! Flit-reservation flow control keeps one *pool* of `b_d` data buffers
//! per input channel (no per-VC partitioning — data flits carry no tags to
//! distinguish packets). [`BufferPool`] provides allocation against
//! occupancy bits exactly as the paper's input scheduler does one cycle
//! before each flit arrives.

use crate::DataFlit;
use std::fmt;

/// Index of a buffer within one input channel's pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u8);

impl BufferId {
    /// Creates a buffer id.
    pub const fn new(raw: u8) -> Self {
        BufferId(raw)
    }

    /// Raw index.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Index widened for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// A pool of flit buffers with occupancy bits.
///
/// # Examples
///
/// ```
/// use noc_flow::BufferPool;
///
/// let mut pool = BufferPool::new(6);
/// assert_eq!(pool.free_count(), 6);
/// let id = pool.reserve_any().expect("pool has space");
/// assert_eq!(pool.free_count(), 5);
/// pool.release_empty(id);
/// assert_eq!(pool.free_count(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    slots: Vec<Option<DataFlit>>,
    /// Occupancy bits: a slot may be reserved (occupied) before its flit
    /// is written, mirroring the paper's allocate-one-cycle-early policy.
    occupied: Vec<bool>,
    free: usize,
}

impl BufferPool {
    /// Creates a pool of `capacity` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds 255.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool must have capacity");
        assert!(
            capacity <= 255,
            "buffer pool capacity exceeds BufferId range"
        );
        BufferPool {
            slots: vec![None; capacity],
            occupied: vec![false; capacity],
            free: capacity,
        }
    }

    /// Total number of buffers.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Buffers currently free.
    pub fn free_count(&self) -> usize {
        self.free
    }

    /// Buffers currently occupied (reserved or holding a flit).
    pub fn occupied_count(&self) -> usize {
        self.capacity() - self.free
    }

    /// `true` when every buffer is occupied.
    pub fn is_full(&self) -> bool {
        self.free == 0
    }

    /// Marks the lowest-numbered free buffer occupied and returns it, or
    /// `None` when the pool is full. The buffer holds no flit yet.
    pub fn reserve_any(&mut self) -> Option<BufferId> {
        let idx = self.occupied.iter().position(|&o| !o)?;
        self.occupied[idx] = true;
        self.free -= 1;
        Some(BufferId::new(idx as u8))
    }

    /// Stores `flit` in a previously reserved buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not reserved or already holds a flit.
    pub fn write(&mut self, id: BufferId, flit: DataFlit) {
        assert!(self.occupied[id.index()], "writing to unreserved buffer");
        assert!(
            self.slots[id.index()].is_none(),
            "buffer already holds a flit"
        );
        self.slots[id.index()] = Some(flit);
    }

    /// Reserves a free buffer and writes `flit` into it in one step.
    pub fn insert(&mut self, flit: DataFlit) -> Option<BufferId> {
        let id = self.reserve_any()?;
        self.write(id, flit);
        Some(id)
    }

    /// Reads the flit in a buffer without freeing it.
    pub fn peek(&self, id: BufferId) -> Option<&DataFlit> {
        self.slots.get(id.index())?.as_ref()
    }

    /// Removes the flit from a buffer and frees it.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds no flit.
    pub fn take(&mut self, id: BufferId) -> DataFlit {
        let flit = self.slots[id.index()]
            .take()
            .expect("taking from empty buffer");
        self.occupied[id.index()] = false;
        self.free += 1;
        flit
    }

    /// Frees a reserved buffer that never received its flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds a flit or is not reserved.
    pub fn release_empty(&mut self, id: BufferId) {
        assert!(
            self.slots[id.index()].is_none(),
            "buffer still holds a flit"
        );
        assert!(self.occupied[id.index()], "buffer was not reserved");
        self.occupied[id.index()] = false;
        self.free += 1;
    }

    /// Iterates over `(buffer, flit)` pairs currently stored.
    pub fn iter(&self) -> impl Iterator<Item = (BufferId, &DataFlit)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|f| (BufferId::new(i as u8), f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::Cycle;
    use noc_topology::NodeId;
    use noc_traffic::PacketId;

    fn flit(seq: u32) -> DataFlit {
        DataFlit {
            packet: PacketId::new(1),
            seq,
            length: 5,
            dest: NodeId::new(9),
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    #[test]
    fn reserve_write_take_cycle() {
        let mut pool = BufferPool::new(2);
        let a = pool.reserve_any().unwrap();
        pool.write(a, flit(0));
        assert_eq!(pool.peek(a).unwrap().seq, 0);
        assert_eq!(pool.occupied_count(), 1);
        let taken = pool.take(a);
        assert_eq!(taken.seq, 0);
        assert_eq!(pool.free_count(), 2);
        assert!(pool.peek(a).is_none());
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = BufferPool::new(2);
        assert!(pool.insert(flit(0)).is_some());
        assert!(pool.insert(flit(1)).is_some());
        assert!(pool.is_full());
        assert_eq!(pool.insert(flit(2)), None);
        assert_eq!(pool.reserve_any(), None);
    }

    #[test]
    fn freed_buffers_are_reused() {
        let mut pool = BufferPool::new(1);
        let a = pool.insert(flit(0)).unwrap();
        pool.take(a);
        let b = pool.insert(flit(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_lists_stored_flits() {
        let mut pool = BufferPool::new(4);
        pool.insert(flit(0));
        let b = pool.insert(flit(1)).unwrap();
        pool.take(b);
        pool.insert(flit(2));
        let seqs: Vec<u32> = pool.iter().map(|(_, f)| f.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "unreserved buffer")]
    fn write_without_reserve_panics() {
        let mut pool = BufferPool::new(1);
        pool.write(BufferId::new(0), flit(0));
    }

    #[test]
    #[should_panic(expected = "taking from empty buffer")]
    fn take_from_empty_panics() {
        let mut pool = BufferPool::new(1);
        let a = pool.reserve_any().unwrap();
        pool.take(a);
    }

    #[test]
    #[should_panic(expected = "must have capacity")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }

    #[test]
    fn release_empty_restores_free_count() {
        let mut pool = BufferPool::new(3);
        let a = pool.reserve_any().unwrap();
        assert_eq!(pool.free_count(), 2);
        pool.release_empty(a);
        assert_eq!(pool.free_count(), 3);
    }

    #[test]
    fn buffer_id_display() {
        assert_eq!(BufferId::new(5).to_string(), "buf5");
    }
}
