//! Flit buffer pools.
//!
//! Flit-reservation flow control keeps one *pool* of `b_d` data buffers
//! per input channel (no per-VC partitioning — data flits carry no tags to
//! distinguish packets). [`BufferPool`] provides allocation against
//! occupancy bits exactly as the paper's input scheduler does one cycle
//! before each flit arrives.

use crate::DataFlit;
use std::fmt;

/// Index of a buffer within one input channel's pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u8);

impl BufferId {
    /// Creates a buffer id.
    pub const fn new(raw: u8) -> Self {
        BufferId(raw)
    }

    /// Raw index.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// Index widened for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// Words in the occupancy bitmasks — covers the full 255-buffer
/// [`BufferId`] range.
const MASK_WORDS: usize = 4;

/// `(word, bit)` coordinates of slot `i` in a mask.
const fn mask_bit(i: usize) -> (usize, u64) {
    (i / 64, 1u64 << (i % 64))
}

/// A pool of flit buffers with occupancy bits.
///
/// Struct-of-arrays layout: flit payloads sit in one dense array while
/// reservation and fill state live in two bitmasks beside it, so the
/// per-cycle occupancy questions (`is_full`, `free_count`, find the
/// lowest free buffer) touch a few mask words instead of walking an
/// array of `Option`s, and the payload array stays contiguous for the
/// copies that do happen. This is the hot state of every input channel,
/// and the dense layout is what keeps a shard's routers inside their own
/// cache lines under parallel stepping.
///
/// # Examples
///
/// ```
/// use noc_flow::BufferPool;
///
/// let mut pool = BufferPool::new(6);
/// assert_eq!(pool.free_count(), 6);
/// let id = pool.reserve_any().expect("pool has space");
/// assert_eq!(pool.free_count(), 5);
/// pool.release_empty(id);
/// assert_eq!(pool.free_count(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct BufferPool {
    /// Dense flit storage, indexed by [`BufferId`]. A slot's contents
    /// are meaningful only while its `written` bit is set.
    flits: Vec<DataFlit>,
    /// Reservation bits: a slot may be reserved (occupied) before its
    /// flit is written, mirroring the paper's allocate-one-cycle-early
    /// policy. Bits past `capacity` are pre-set so the free-slot scan
    /// can never pick them.
    occupied: [u64; MASK_WORDS],
    /// Fill bits: the slot actually holds a flit.
    written: [u64; MASK_WORDS],
    free: usize,
}

impl BufferPool {
    /// Creates a pool of `capacity` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds 255.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool must have capacity");
        assert!(
            capacity <= 255,
            "buffer pool capacity exceeds BufferId range"
        );
        // Payload slots are plain storage behind the masks; the
        // placeholder is never observable (peek/take/iter all gate on
        // the `written` bit).
        let placeholder = DataFlit {
            packet: noc_traffic::PacketId::new(0),
            seq: 0,
            length: 0,
            dest: noc_topology::NodeId::new(0),
            created_at: noc_engine::Cycle::ZERO,
            crc_ok: true,
        };
        let mut occupied = [0u64; MASK_WORDS];
        for (w, word) in occupied.iter_mut().enumerate() {
            let lo = w * 64;
            *word = if capacity >= lo + 64 {
                0
            } else if capacity <= lo {
                u64::MAX
            } else {
                u64::MAX << (capacity - lo)
            };
        }
        BufferPool {
            flits: vec![placeholder; capacity],
            occupied,
            written: [0; MASK_WORDS],
            free: capacity,
        }
    }

    /// Total number of buffers.
    pub fn capacity(&self) -> usize {
        self.flits.len()
    }

    /// Buffers currently free.
    pub fn free_count(&self) -> usize {
        self.free
    }

    /// Buffers currently occupied (reserved or holding a flit).
    pub fn occupied_count(&self) -> usize {
        self.capacity() - self.free
    }

    /// `true` when every buffer is occupied.
    pub fn is_full(&self) -> bool {
        self.free == 0
    }

    /// Marks the lowest-numbered free buffer occupied and returns it, or
    /// `None` when the pool is full. The buffer holds no flit yet.
    pub fn reserve_any(&mut self) -> Option<BufferId> {
        if self.free == 0 {
            return None;
        }
        for (w, word) in self.occupied.iter_mut().enumerate() {
            let open = !*word;
            if open != 0 {
                let bit = open.trailing_zeros() as usize;
                *word |= 1 << bit;
                self.free -= 1;
                return Some(BufferId::new((w * 64 + bit) as u8));
            }
        }
        unreachable!("free count positive but no open occupancy bit");
    }

    /// Stores `flit` in a previously reserved buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not reserved or already holds a flit.
    pub fn write(&mut self, id: BufferId, flit: DataFlit) {
        let (w, bit) = mask_bit(id.index());
        assert!(
            id.index() < self.capacity() && self.occupied[w] & bit != 0,
            "writing to unreserved buffer"
        );
        assert!(self.written[w] & bit == 0, "buffer already holds a flit");
        self.written[w] |= bit;
        self.flits[id.index()] = flit;
    }

    /// Reserves a free buffer and writes `flit` into it in one step.
    pub fn insert(&mut self, flit: DataFlit) -> Option<BufferId> {
        let id = self.reserve_any()?;
        self.write(id, flit);
        Some(id)
    }

    /// Reads the flit in a buffer without freeing it.
    pub fn peek(&self, id: BufferId) -> Option<&DataFlit> {
        let (w, bit) = mask_bit(id.index());
        if id.index() < self.capacity() && self.written[w] & bit != 0 {
            Some(&self.flits[id.index()])
        } else {
            None
        }
    }

    /// Removes the flit from a buffer and frees it.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds no flit.
    pub fn take(&mut self, id: BufferId) -> DataFlit {
        let (w, bit) = mask_bit(id.index());
        assert!(
            id.index() < self.capacity() && self.written[w] & bit != 0,
            "taking from empty buffer"
        );
        self.written[w] &= !bit;
        self.occupied[w] &= !bit;
        self.free += 1;
        self.flits[id.index()]
    }

    /// Frees a reserved buffer that never received its flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer holds a flit or is not reserved.
    pub fn release_empty(&mut self, id: BufferId) {
        let (w, bit) = mask_bit(id.index());
        assert!(self.written[w] & bit == 0, "buffer still holds a flit");
        assert!(
            id.index() < self.capacity() && self.occupied[w] & bit != 0,
            "buffer was not reserved"
        );
        self.occupied[w] &= !bit;
        self.free += 1;
    }

    /// Iterates over `(buffer, flit)` pairs currently stored.
    pub fn iter(&self) -> impl Iterator<Item = (BufferId, &DataFlit)> {
        let written = self.written;
        self.flits.iter().enumerate().filter_map(move |(i, f)| {
            let (w, bit) = mask_bit(i);
            (written[w] & bit != 0).then(|| (BufferId::new(i as u8), f))
        })
    }

    /// Slot indices reserved ahead of their flit (occupied, not yet
    /// written) — the paper's allocate-one-cycle-early state.
    pub fn reserved_empty(&self) -> impl Iterator<Item = BufferId> + '_ {
        (0..self.capacity()).filter_map(move |i| {
            let (w, bit) = mask_bit(i);
            (self.occupied[w] & bit != 0 && self.written[w] & bit == 0)
                .then(|| BufferId::new(i as u8))
        })
    }
}

impl noc_metrics::Snapshot for BufferPool {
    fn snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::Json;
        let flits: Vec<Json> = self
            .iter()
            .map(|(id, f)| {
                Json::obj(vec![
                    ("buffer".into(), Json::Num(id.index() as f64)),
                    ("flit".into(), Json::str(format!("{f:?}"))),
                ])
            })
            .collect();
        let reserved: Vec<Json> = self
            .reserved_empty()
            .map(|id| Json::Num(id.index() as f64))
            .collect();
        Json::obj(vec![
            ("capacity".into(), Json::Num(self.capacity() as f64)),
            ("occupied".into(), Json::Num(self.occupied_count() as f64)),
            ("reserved_empty".into(), Json::Arr(reserved)),
            ("flits".into(), Json::Arr(flits)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::Cycle;
    use noc_topology::NodeId;
    use noc_traffic::PacketId;

    fn flit(seq: u32) -> DataFlit {
        DataFlit {
            packet: PacketId::new(1),
            seq,
            length: 5,
            dest: NodeId::new(9),
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    #[test]
    fn reserve_write_take_cycle() {
        let mut pool = BufferPool::new(2);
        let a = pool.reserve_any().unwrap();
        pool.write(a, flit(0));
        assert_eq!(pool.peek(a).unwrap().seq, 0);
        assert_eq!(pool.occupied_count(), 1);
        let taken = pool.take(a);
        assert_eq!(taken.seq, 0);
        assert_eq!(pool.free_count(), 2);
        assert!(pool.peek(a).is_none());
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut pool = BufferPool::new(2);
        assert!(pool.insert(flit(0)).is_some());
        assert!(pool.insert(flit(1)).is_some());
        assert!(pool.is_full());
        assert_eq!(pool.insert(flit(2)), None);
        assert_eq!(pool.reserve_any(), None);
    }

    #[test]
    fn freed_buffers_are_reused() {
        let mut pool = BufferPool::new(1);
        let a = pool.insert(flit(0)).unwrap();
        pool.take(a);
        let b = pool.insert(flit(1)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn iter_lists_stored_flits() {
        let mut pool = BufferPool::new(4);
        pool.insert(flit(0));
        let b = pool.insert(flit(1)).unwrap();
        pool.take(b);
        pool.insert(flit(2));
        let seqs: Vec<u32> = pool.iter().map(|(_, f)| f.seq).collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "unreserved buffer")]
    fn write_without_reserve_panics() {
        let mut pool = BufferPool::new(1);
        pool.write(BufferId::new(0), flit(0));
    }

    #[test]
    #[should_panic(expected = "taking from empty buffer")]
    fn take_from_empty_panics() {
        let mut pool = BufferPool::new(1);
        let a = pool.reserve_any().unwrap();
        pool.take(a);
    }

    #[test]
    #[should_panic(expected = "must have capacity")]
    fn zero_capacity_panics() {
        BufferPool::new(0);
    }

    #[test]
    fn release_empty_restores_free_count() {
        let mut pool = BufferPool::new(3);
        let a = pool.reserve_any().unwrap();
        assert_eq!(pool.free_count(), 2);
        pool.release_empty(a);
        assert_eq!(pool.free_count(), 3);
    }

    #[test]
    fn buffer_id_display() {
        assert_eq!(BufferId::new(5).to_string(), "buf5");
    }

    #[test]
    fn fill_and_drain_across_mask_word_boundaries() {
        // 200 slots spans four mask words; every slot must be reachable,
        // in ascending order, and fully reclaimable.
        let mut pool = BufferPool::new(200);
        let mut ids = Vec::new();
        for seq in 0..200 {
            let id = pool.insert(flit(seq)).unwrap();
            assert_eq!(id.index(), seq as usize);
            ids.push(id);
        }
        assert!(pool.is_full());
        assert_eq!(pool.reserve_any(), None);
        assert_eq!(pool.iter().count(), 200);
        for (seq, id) in ids.into_iter().enumerate() {
            assert_eq!(pool.take(id).seq, seq as u32);
        }
        assert_eq!(pool.free_count(), 200);
    }

    #[test]
    fn reserve_reuses_lowest_free_slot_after_scattered_frees() {
        let mut pool = BufferPool::new(130);
        let ids: Vec<BufferId> = (0..130).map(|s| pool.insert(flit(s)).unwrap()).collect();
        // Free slots 127 and 3 (different mask words); the next two
        // reservations must come back lowest-first.
        pool.take(ids[127]);
        pool.take(ids[3]);
        assert_eq!(pool.reserve_any().unwrap().index(), 3);
        assert_eq!(pool.reserve_any().unwrap().index(), 127);
    }

    #[test]
    fn max_capacity_pool_round_trips() {
        let mut pool = BufferPool::new(255);
        while pool.insert(flit(0)).is_some() {}
        assert_eq!(pool.occupied_count(), 255);
        assert_eq!(pool.peek(BufferId::new(254)).unwrap().seq, 0);
        assert_eq!(pool.take(BufferId::new(254)).seq, 0);
        assert_eq!(pool.free_count(), 1);
    }
}
