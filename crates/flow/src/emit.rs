//! Typed emit API over the raw trace events of `noc-engine`.
//!
//! [`noc_engine::trace::TraceEvent`] deliberately carries only raw
//! integers, because the engine crate sits below the crates that define
//! [`NodeId`], [`Port`], [`PacketId`] and [`DataFlit`]. This module adds
//! the typed surface the routers actually use: [`TraceEmit`], an
//! extension trait blanket-implemented for every [`TraceSink`], with one
//! method per event kind that does the id conversions in one place.
//!
//! Every method funnels through [`TraceSink::record`], so with the
//! default [`noc_engine::trace::NullSink`] each call compiles to
//! nothing.
//!
//! # Examples
//!
//! ```
//! use noc_engine::Cycle;
//! use noc_engine::trace::{TraceKind, VecSink};
//! use noc_flow::TraceEmit;
//! use noc_topology::{NodeId, Port};
//!
//! let mut sink = VecSink::new();
//! sink.credit_sent(Cycle::new(9), NodeId::new(3), Port::West, 1);
//! assert_eq!(sink.events()[0].kind, TraceKind::CreditSent { port: 3, class: 1 });
//! ```

use crate::{BufferId, DataFlit};
use noc_engine::trace::{TraceEvent, TraceKind, TraceSink};
use noc_engine::Cycle;
use noc_topology::{NodeId, Port};
use noc_traffic::PacketId;

/// Builds one raw event; shared by every method below.
#[inline(always)]
fn event(cycle: Cycle, node: NodeId, kind: TraceKind) -> TraceEvent {
    TraceEvent {
        cycle,
        node: node.raw(),
        kind,
    }
}

#[inline(always)]
fn port(p: Port) -> u8 {
    p.index() as u8
}

/// Typed emit methods for every [`TraceSink`].
///
/// All methods are `#[inline(always)]` wrappers around
/// [`TraceSink::record`]; when the sink is the no-op default they
/// vanish entirely.
pub trait TraceEmit: TraceSink {
    /// A packet entered its source queue.
    #[inline(always)]
    fn packet_injected(
        &mut self,
        now: Cycle,
        node: NodeId,
        packet: PacketId,
        src: NodeId,
        dest: NodeId,
        length: u32,
    ) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::PacketInjected {
                    packet: packet.raw(),
                    src: src.raw(),
                    dest: dest.raw(),
                    length,
                },
            )
        });
    }

    /// A data flit left the network interface into the router.
    #[inline(always)]
    fn flit_injected(&mut self, now: Cycle, node: NodeId, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::FlitInjected {
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// A control flit was sent on `out_port`, control VC `vc` (FR only).
    #[inline(always)]
    fn control_sent(&mut self, now: Cycle, node: NodeId, out_port: Port, vc: u8, packet: PacketId) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::ControlSent {
                    out_port: port(out_port),
                    vc,
                    packet: packet.raw(),
                },
            )
        });
    }

    /// A control flit hit a wire error and will be retransmitted.
    #[inline(always)]
    fn control_retried(&mut self, now: Cycle, node: NodeId, out_port: Port) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::ControlRetried {
                    out_port: port(out_port),
                },
            )
        });
    }

    /// A reservation was written into the tables for `flit` (FR only).
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn reservation_made(
        &mut self,
        now: Cycle,
        node: NodeId,
        flit: &DataFlit,
        in_port: Port,
        out_port: Port,
        arrival: Cycle,
        departure: Cycle,
    ) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::ReservationMade {
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                    in_port: port(in_port),
                    out_port: port(out_port),
                    arrival: arrival.raw(),
                    departure: departure.raw(),
                },
            )
        });
    }

    /// One cycle of `out_port`'s bandwidth was reserved.
    #[inline(always)]
    fn channel_grant(&mut self, now: Cycle, node: NodeId, out_port: Port, at: Cycle) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::ChannelGrant {
                    out_port: port(out_port),
                    at: at.raw(),
                },
            )
        });
    }

    /// `flit` was written into `buffer` of `in_port`'s pool.
    #[inline(always)]
    fn buffer_alloc(
        &mut self,
        now: Cycle,
        node: NodeId,
        in_port: Port,
        buffer: BufferId,
        flit: &DataFlit,
    ) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::BufferAlloc {
                    port: port(in_port),
                    buffer: buffer.raw() as u16,
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// `flit` left `buffer` of `in_port`'s pool.
    #[inline(always)]
    fn buffer_free(
        &mut self,
        now: Cycle,
        node: NodeId,
        in_port: Port,
        buffer: BufferId,
        flit: &DataFlit,
    ) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::BufferFree {
                    port: port(in_port),
                    buffer: buffer.raw() as u16,
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// `flit` departed on a reserved channel cycle (FR only).
    #[inline(always)]
    fn data_sent(&mut self, now: Cycle, node: NodeId, out_port: Port, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::DataSent {
                    out_port: port(out_port),
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// `flit` departed on virtual channel `vc` (VC baseline).
    #[inline(always)]
    fn vc_data_sent(&mut self, now: Cycle, node: NodeId, out_port: Port, vc: u8, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::VcDataSent {
                    out_port: port(out_port),
                    vc,
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// `flit` entered the per-VC queue `(in_port, vc)`.
    #[inline(always)]
    fn queue_enq(&mut self, now: Cycle, node: NodeId, in_port: Port, vc: u8, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::QueueEnq {
                    port: port(in_port),
                    vc,
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// `flit` left the per-VC queue `(in_port, vc)`.
    #[inline(always)]
    fn queue_deq(&mut self, now: Cycle, node: NodeId, in_port: Port, vc: u8, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::QueueDeq {
                    port: port(in_port),
                    vc,
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// A credit was returned upstream on `to_port` for buffer class
    /// `class` (the VC id, or 0 for the FR pool).
    #[inline(always)]
    fn credit_sent(&mut self, now: Cycle, node: NodeId, to_port: Port, class: u8) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::CreditSent {
                    port: port(to_port),
                    class,
                },
            )
        });
    }

    /// `flit` reached its destination and left the network.
    #[inline(always)]
    fn flit_ejected(&mut self, now: Cycle, node: NodeId, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::FlitEjected {
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// The last flit of `packet` was ejected.
    #[inline(always)]
    fn packet_delivered(&mut self, now: Cycle, node: NodeId, packet: PacketId, latency: u64) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::PacketDelivered {
                    packet: packet.raw(),
                    latency,
                },
            )
        });
    }

    /// A head flit spent this cycle waiting for a VC grant (VC baseline).
    #[inline(always)]
    fn vc_alloc_stall(&mut self, now: Cycle, node: NodeId, packet: PacketId, seq: u32) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::VcAllocStall {
                    packet: packet.raw(),
                    seq,
                },
            )
        });
    }

    /// A flit spent this cycle blocked on downstream credit.
    #[inline(always)]
    fn credit_stall(&mut self, now: Cycle, node: NodeId, packet: PacketId, seq: u32) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::CreditStall {
                    packet: packet.raw(),
                    seq,
                },
            )
        });
    }

    /// A flit spent this cycle losing switch arbitration.
    #[inline(always)]
    fn switch_stall(&mut self, now: Cycle, node: NodeId, packet: PacketId, seq: u32) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::SwitchStall {
                    packet: packet.raw(),
                    seq,
                },
            )
        });
    }

    /// A control flit spent this cycle blocked in a control queue (FR).
    #[inline(always)]
    fn control_stall(&mut self, now: Cycle, node: NodeId, packet: PacketId) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::ControlStall {
                    packet: packet.raw(),
                },
            )
        });
    }

    /// The stage-contract checker caught a pipeline-interface breach;
    /// `code` names the broken contract (see `pipeline::contract`).
    #[inline(always)]
    fn stage_violation(&mut self, now: Cycle, node: NodeId, code: u8) {
        self.record(|| event(now, node, TraceKind::StageContractViolation { code }));
    }

    /// A link fault cleared `flit`'s CRC bit in transit.
    #[inline(always)]
    fn data_corrupted(&mut self, now: Cycle, node: NodeId, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::DataCorrupted {
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// A link fault dropped a control flit on `out_port`; the link-level
    /// repair re-drives it after the repair delay.
    #[inline(always)]
    fn control_dropped(&mut self, now: Cycle, node: NodeId, out_port: Port) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::ControlDropped {
                    out_port: port(out_port),
                },
            )
        });
    }

    /// The destination NI discarded a CRC-failed copy of `flit`.
    #[inline(always)]
    fn corrupt_discarded(&mut self, now: Cycle, node: NodeId, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::CorruptDiscarded {
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// The destination NI discarded a duplicate copy of `flit`.
    #[inline(always)]
    fn duplicate_discarded(&mut self, now: Cycle, node: NodeId, flit: &DataFlit) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::DuplicateDiscarded {
                    packet: flit.packet.raw(),
                    seq: flit.seq,
                },
            )
        });
    }

    /// The destination NI issued a NACK for `packet`.
    #[inline(always)]
    fn nack_issued(&mut self, now: Cycle, node: NodeId, packet: PacketId) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::NackIssued {
                    packet: packet.raw(),
                },
            )
        });
    }

    /// The destination NI acknowledged complete delivery of `packet`.
    #[inline(always)]
    fn ack_issued(&mut self, now: Cycle, node: NodeId, packet: PacketId) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::AckIssued {
                    packet: packet.raw(),
                },
            )
        });
    }

    /// The source NI re-injected `packet` (attempt `attempt`).
    #[inline(always)]
    fn packet_retransmitted(&mut self, now: Cycle, node: NodeId, packet: PacketId, attempt: u32) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::PacketRetransmitted {
                    packet: packet.raw(),
                    attempt,
                },
            )
        });
    }

    /// A retransmit timer fired for `packet`, still unacknowledged.
    #[inline(always)]
    fn retransmit_timeout(&mut self, now: Cycle, node: NodeId, packet: PacketId) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::RetransmitTimeout {
                    packet: packet.raw(),
                },
            )
        });
    }

    /// A permanently dead outgoing link on `out_port` was masked out of
    /// this node's routing function.
    #[inline(always)]
    fn link_masked(&mut self, now: Cycle, node: NodeId, out_port: Port) {
        self.record(|| {
            event(
                now,
                node,
                TraceKind::LinkMasked {
                    port: port(out_port),
                },
            )
        });
    }
}

impl<S: TraceSink + ?Sized> TraceEmit for S {}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::trace::{NullSink, VecSink};

    fn flit() -> DataFlit {
        DataFlit {
            packet: PacketId::new(11),
            seq: 3,
            length: 5,
            dest: NodeId::new(63),
            created_at: Cycle::new(2),
            crc_ok: true,
        }
    }

    #[test]
    fn typed_emits_lower_to_raw_ids() {
        let mut sink = VecSink::new();
        let now = Cycle::new(10);
        let node = NodeId::new(12);
        let f = flit();
        sink.flit_injected(now, node, &f);
        sink.reservation_made(
            now,
            node,
            &f,
            Port::North,
            Port::East,
            Cycle::new(12),
            Cycle::new(14),
        );
        sink.channel_grant(now, node, Port::East, Cycle::new(14));
        sink.buffer_alloc(now, node, Port::North, BufferId::new(4), &f);
        sink.data_sent(Cycle::new(14), node, Port::East, &f);

        let kinds: Vec<TraceKind> = sink.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds[0], TraceKind::FlitInjected { packet: 11, seq: 3 });
        assert_eq!(
            kinds[1],
            TraceKind::ReservationMade {
                packet: 11,
                seq: 3,
                in_port: Port::North.index() as u8,
                out_port: Port::East.index() as u8,
                arrival: 12,
                departure: 14,
            }
        );
        assert_eq!(
            kinds[2],
            TraceKind::ChannelGrant {
                out_port: Port::East.index() as u8,
                at: 14
            }
        );
        assert_eq!(
            kinds[3],
            TraceKind::BufferAlloc {
                port: Port::North.index() as u8,
                buffer: 4,
                packet: 11,
                seq: 3
            }
        );
        assert!(sink.events().iter().all(|e| e.node == 12));
    }

    #[test]
    fn null_sink_accepts_typed_emits() {
        let mut sink = NullSink;
        sink.flit_injected(Cycle::ZERO, NodeId::new(0), &flit());
        sink.packet_delivered(Cycle::ZERO, NodeId::new(0), PacketId::new(1), 7);
    }
}
