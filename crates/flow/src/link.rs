//! Pipelined point-to-point links.
//!
//! A [`Link`] models a pipelined wire: anything pushed at cycle `t`
//! arrives at `t + delay`, and at most `bandwidth` items may be pushed per
//! cycle. The paper's fast-control configuration uses 4-cycle data wires,
//! 1-cycle control wires (4× faster, footnote 9) and 1-cycle credit
//! wires; the leading-control configuration makes everything 1 cycle.

use noc_engine::Cycle;
use std::collections::VecDeque;

/// A fixed-delay, bandwidth-limited FIFO link.
///
/// # Examples
///
/// ```
/// use noc_engine::Cycle;
/// use noc_flow::Link;
///
/// let mut link: Link<&str> = Link::new(4, 1);
/// link.push(Cycle::new(0), "flit").unwrap();
/// assert!(link.take_arrivals(Cycle::new(3)).is_empty());
/// assert_eq!(link.take_arrivals(Cycle::new(4)), vec!["flit"]);
/// ```
#[derive(Clone, Debug)]
pub struct Link<T> {
    delay: u64,
    bandwidth: u32,
    in_flight: VecDeque<(Cycle, T)>,
    last_push: Option<(Cycle, u32)>,
}

/// Error returned when pushing onto a link past its per-cycle bandwidth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandwidthExceeded;

impl std::fmt::Display for BandwidthExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("link bandwidth exceeded this cycle")
    }
}

impl std::error::Error for BandwidthExceeded {}

impl<T> Link<T> {
    /// Creates a link with the given propagation `delay` (cycles) and
    /// per-cycle `bandwidth` (items).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    pub fn new(delay: u64, bandwidth: u32) -> Self {
        assert!(bandwidth > 0, "link bandwidth must be positive");
        Link {
            delay,
            bandwidth,
            in_flight: VecDeque::new(),
            last_push: None,
        }
    }

    /// Propagation delay in cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// Per-cycle bandwidth in items.
    pub fn bandwidth(&self) -> u32 {
        self.bandwidth
    }

    /// Number of items pushed during cycle `now` so far.
    pub fn pushed_this_cycle(&self, now: Cycle) -> u32 {
        match self.last_push {
            Some((t, n)) if t == now => n,
            _ => 0,
        }
    }

    /// `true` if another item may be pushed during cycle `now`.
    pub fn can_push(&self, now: Cycle) -> bool {
        self.pushed_this_cycle(now) < self.bandwidth
    }

    /// Sends `item` at cycle `now`; it will arrive at `now + delay`.
    ///
    /// # Errors
    ///
    /// Returns [`BandwidthExceeded`] if `bandwidth` items were already
    /// pushed this cycle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if pushes go backwards in time.
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), BandwidthExceeded> {
        self.push_with_extra_delay(now, item, 0)
    }

    /// Sends `item` with `extra` additional cycles of delay (e.g. a
    /// modelled retransmission). Later pushes are delivered only after
    /// this one (head-of-line order is preserved, as in link-level
    /// go-back-N retransmission).
    ///
    /// # Errors
    ///
    /// Returns [`BandwidthExceeded`] if `bandwidth` items were already
    /// pushed this cycle.
    pub fn push_with_extra_delay(
        &mut self,
        now: Cycle,
        item: T,
        extra: u64,
    ) -> Result<(), BandwidthExceeded> {
        if let Some((t, _)) = self.last_push {
            debug_assert!(now >= t, "link pushes must be in time order");
        }
        if !self.can_push(now) {
            return Err(BandwidthExceeded);
        }
        let n = self.pushed_this_cycle(now);
        self.last_push = Some((now, n + 1));
        self.in_flight.push_back((now + self.delay + extra, item));
        Ok(())
    }

    /// Removes and returns the next item arriving at or before cycle
    /// `now`, or `None` once every due arrival has been drained.
    ///
    /// This is the allocation-free form of [`Link::take_arrivals`]: the
    /// network's delivery phase pops arrivals one by one straight off the
    /// in-flight queue instead of collecting them into a fresh `Vec`
    /// every cycle. Items come out in push order; an item with extra
    /// delay blocks the items behind it until it delivers (FIFO links).
    pub fn pop_arrival(&mut self, now: Cycle) -> Option<T> {
        match self.in_flight.front() {
            Some((arrives, _)) if *arrives <= now => {
                self.in_flight.pop_front().map(|(_, item)| item)
            }
            _ => None,
        }
    }

    /// Removes and returns every item arriving at or before cycle `now`.
    ///
    /// Items are returned in push order; an item with extra delay blocks
    /// the items behind it until it delivers (FIFO links).
    pub fn take_arrivals(&mut self, now: Cycle) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(item) = self.pop_arrival(now) {
            out.push(item);
        }
        out
    }

    /// Number of items currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Iterates over in-flight items in delivery order as
    /// `(arrival_cycle, item)` pairs. Read-only; used by state snapshots.
    pub fn iter_in_flight(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.in_flight.iter().map(|(at, item)| (*at, item))
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_delay_in_order() {
        let mut link: Link<u32> = Link::new(2, 4);
        link.push(Cycle::new(0), 1).unwrap();
        link.push(Cycle::new(0), 2).unwrap();
        link.push(Cycle::new(1), 3).unwrap();
        assert_eq!(link.take_arrivals(Cycle::new(1)), Vec::<u32>::new());
        assert_eq!(link.take_arrivals(Cycle::new(2)), vec![1, 2]);
        assert_eq!(link.take_arrivals(Cycle::new(3)), vec![3]);
        assert!(link.is_empty());
    }

    #[test]
    fn bandwidth_enforced_per_cycle() {
        let mut link: Link<u32> = Link::new(1, 2);
        assert!(link.can_push(Cycle::ZERO));
        link.push(Cycle::ZERO, 1).unwrap();
        link.push(Cycle::ZERO, 2).unwrap();
        assert!(!link.can_push(Cycle::ZERO));
        assert_eq!(link.push(Cycle::ZERO, 3), Err(BandwidthExceeded));
        // The next cycle the budget resets.
        assert!(link.can_push(Cycle::new(1)));
        link.push(Cycle::new(1), 3).unwrap();
        assert_eq!(link.pushed_this_cycle(Cycle::new(1)), 1);
    }

    #[test]
    fn pop_arrival_drains_in_place() {
        let mut link: Link<u32> = Link::new(2, 4);
        link.push(Cycle::new(0), 1).unwrap();
        link.push(Cycle::new(0), 2).unwrap();
        link.push(Cycle::new(1), 3).unwrap();
        assert_eq!(link.pop_arrival(Cycle::new(1)), None);
        assert_eq!(link.pop_arrival(Cycle::new(2)), Some(1));
        assert_eq!(link.pop_arrival(Cycle::new(2)), Some(2));
        assert_eq!(link.pop_arrival(Cycle::new(2)), None, "3 arrives at 3");
        assert_eq!(link.pop_arrival(Cycle::new(3)), Some(3));
        assert!(link.is_empty());
    }

    #[test]
    fn zero_delay_link_delivers_same_cycle() {
        let mut link: Link<&str> = Link::new(0, 1);
        link.push(Cycle::new(5), "x").unwrap();
        assert_eq!(link.take_arrivals(Cycle::new(5)), vec!["x"]);
    }

    #[test]
    fn skipped_cycles_still_drain() {
        let mut link: Link<u32> = Link::new(1, 1);
        link.push(Cycle::new(0), 7).unwrap();
        // Collect late: the item still comes out.
        assert_eq!(link.take_arrivals(Cycle::new(10)), vec![7]);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        Link::<u32>::new(1, 0);
    }

    #[test]
    fn extra_delay_preserves_fifo_order() {
        let mut link: Link<u32> = Link::new(1, 4);
        // Item 1 is "retransmitted twice": +2 cycles. Item 2 pushed a
        // cycle later would arrive sooner, but FIFO order holds it back.
        link.push_with_extra_delay(Cycle::new(0), 1, 2).unwrap();
        link.push(Cycle::new(1), 2).unwrap();
        assert!(link.take_arrivals(Cycle::new(2)).is_empty());
        // Both deliver together once the delayed head clears.
        assert_eq!(link.take_arrivals(Cycle::new(3)), vec![1, 2]);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            BandwidthExceeded.to_string(),
            "link bandwidth exceeded this cycle"
        );
    }
}
