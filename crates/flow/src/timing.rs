//! Wire and pipeline timing configuration.
//!
//! The paper evaluates two physical realisations of the control lead:
//!
//! * **Fast control** — control and credit signals travel on wires 4×
//!   faster than the data wires (thicker top-metal wires, footnote 9):
//!   1-cycle control/credit links, 4-cycle data links.
//! * **Leading control** — every wire has the same 1-cycle delay, and
//!   control flits are injected N cycles ahead of their data flits.

/// Propagation delays and control lead for one experiment configuration.
///
/// # Examples
///
/// ```
/// use noc_flow::LinkTiming;
///
/// let fast = LinkTiming::fast_control();
/// assert_eq!(fast.data_delay, 4);
/// assert_eq!(fast.control_delay, 1);
/// let leading = LinkTiming::leading_control(2);
/// assert_eq!(leading.data_delay, 1);
/// assert_eq!(leading.control_lead, 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkTiming {
    /// Propagation delay of data-network links, in cycles.
    pub data_delay: u64,
    /// Propagation delay of control-network links, in cycles.
    pub control_delay: u64,
    /// Propagation delay of credit wires (both directions), in cycles.
    pub credit_delay: u64,
    /// Cycles by which control flits are injected ahead of their data
    /// flits at the source (0 under fast control, N ≥ 1 under leading
    /// control).
    pub control_lead: u64,
}

impl LinkTiming {
    /// The paper's on-chip configuration: control and credit wires 4×
    /// faster than data wires.
    pub fn fast_control() -> Self {
        LinkTiming {
            data_delay: 4,
            control_delay: 1,
            credit_delay: 1,
            control_lead: 0,
        }
    }

    /// The paper's off-chip configuration: all wires 1 cycle, control
    /// flits injected `lead` cycles ahead of data flits.
    ///
    /// # Panics
    ///
    /// Panics if `lead` is zero — with no lead and equal wire speed,
    /// control flits could never get ahead of their data.
    pub fn leading_control(lead: u64) -> Self {
        assert!(
            lead > 0,
            "leading control requires a lead of at least one cycle"
        );
        LinkTiming {
            data_delay: 1,
            control_delay: 1,
            credit_delay: 1,
            control_lead: lead,
        }
    }

    /// Timing used for the *virtual-channel baseline* matching a given FR
    /// configuration: the VC network uses the same data wires, and its
    /// credits use the fast credit wires.
    pub fn vc_baseline_of(self) -> LinkTiming {
        LinkTiming {
            control_lead: 0,
            ..self
        }
    }
}

impl Default for LinkTiming {
    /// Defaults to the paper's primary (fast control) configuration.
    fn default() -> Self {
        LinkTiming::fast_control()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_control_matches_paper() {
        let t = LinkTiming::fast_control();
        assert_eq!(t.data_delay, 4);
        assert_eq!(t.control_delay, 1);
        assert_eq!(t.credit_delay, 1);
        assert_eq!(t.control_lead, 0);
    }

    #[test]
    fn leading_control_uniform_wires() {
        for lead in [1, 2, 4] {
            let t = LinkTiming::leading_control(lead);
            assert_eq!(t.data_delay, 1);
            assert_eq!(t.control_delay, 1);
            assert_eq!(t.credit_delay, 1);
            assert_eq!(t.control_lead, lead);
        }
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_lead_panics() {
        LinkTiming::leading_control(0);
    }

    #[test]
    fn default_is_fast_control() {
        assert_eq!(LinkTiming::default(), LinkTiming::fast_control());
    }

    #[test]
    fn vc_baseline_strips_lead() {
        let t = LinkTiming::leading_control(4).vc_baseline_of();
        assert_eq!(t.control_lead, 0);
        assert_eq!(t.data_delay, 1);
    }
}
