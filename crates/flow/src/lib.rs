//! # noc-flow
//!
//! Shared flow-control substrate: the wire formats, links, buffers,
//! timing configuration and the [`Router`] trait that both the
//! virtual-channel baseline (`noc-vc`) and flit-reservation flow control
//! (`flit-reservation`) are built on.
//!
//! # Examples
//!
//! ```
//! use noc_engine::Cycle;
//! use noc_flow::{Link, LinkTiming};
//!
//! // The paper's fast-control wires: data 4 cycles, control 1 cycle.
//! let timing = LinkTiming::fast_control();
//! let mut data_link: Link<u32> = Link::new(timing.data_delay, 1);
//! data_link.push(Cycle::ZERO, 7)?;
//! assert_eq!(data_link.take_arrivals(Cycle::new(4)), vec![7]);
//! # Ok::<(), noc_flow::BandwidthExceeded>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod emit;
mod flit;
mod link;
pub mod pipeline;
mod router;
mod timing;

pub use buffer::{BufferId, BufferPool};
pub use emit::TraceEmit;
pub use flit::{ControlFlit, ControlKind, DataFlit, FlitType, LedFlit, VcTag};
pub use link::{BandwidthExceeded, Link};
pub use pipeline::{ArbiterKind, RouteCompute, StageContractChecker, SwitchArbiter};
pub use router::{Ejection, LinkEvent, Router, RouterCounters, StepOutputs, WireClass};
pub use timing::LinkTiming;
