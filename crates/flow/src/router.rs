//! The interface between routers and the network fabric.
//!
//! `noc-network` owns the links and drives every router through the same
//! three-phase cycle:
//!
//! 1. **receive** — all link arrivals for cycle `t` are delivered;
//! 2. **inject** — pending source packets are offered to the router;
//! 3. **step** — the router advances one cycle, emitting link sends and
//!    ejected flits through [`StepOutputs`].
//!
//! Everything a router can put on a wire is a [`LinkEvent`]; which wire it
//! travels on (data, control or credit, each with its own delay and
//! bandwidth) is decided by the event's class.

use crate::{ControlFlit, DataFlit, VcTag};
use noc_engine::Cycle;
use noc_topology::{NodeId, Port};

/// Anything that can travel between two adjacent routers.
#[derive(Clone, Debug, PartialEq)]
pub enum LinkEvent {
    /// A bare data flit on the FR data network.
    Data(DataFlit),
    /// A data flit tagged with VC id and type on the VC network.
    VcData(VcTag, DataFlit),
    /// A per-VC credit of the VC network (one buffer slot freed).
    VcCredit {
        /// Virtual channel whose downstream buffer was freed.
        vc: u8,
    },
    /// A control flit on the FR control network.
    Control(ControlFlit),
    /// A per-VC credit of the FR *control* network.
    ControlCredit {
        /// Control virtual channel whose downstream buffer was freed.
        vc: u8,
    },
    /// An advance credit of the FR *data* network: the downstream buffer
    /// will be free from `frees_at` onwards (the scheduled departure time
    /// of the flit occupying it).
    FrCredit {
        /// Cycle from which the buffer counts as free again.
        frees_at: Cycle,
    },
}

/// Which physical wire class an event travels on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireClass {
    /// Wide data wires.
    Data,
    /// Narrow, fast control wires.
    Control,
    /// Credit wires.
    Credit,
}

impl LinkEvent {
    /// The wire class this event travels on.
    pub fn wire_class(&self) -> WireClass {
        match self {
            LinkEvent::Data(_) | LinkEvent::VcData(..) => WireClass::Data,
            LinkEvent::Control(_) => WireClass::Control,
            LinkEvent::VcCredit { .. }
            | LinkEvent::ControlCredit { .. }
            | LinkEvent::FrCredit { .. } => WireClass::Credit,
        }
    }
}

/// A flit delivered to its destination's network interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ejection {
    /// The ejected flit.
    pub flit: DataFlit,
    /// Cycle at which the flit left the network.
    pub at: Cycle,
}

/// Collector for everything a router produces in one cycle.
#[derive(Clone, Debug, Default)]
pub struct StepOutputs {
    /// Events to place on outgoing links, with the port they leave by.
    pub sends: Vec<(Port, LinkEvent)>,
    /// Flits delivered to the local network interface this cycle.
    pub ejections: Vec<Ejection>,
}

impl StepOutputs {
    /// Creates an empty collector.
    pub fn new() -> Self {
        StepOutputs::default()
    }

    /// Queues an event for transmission out of `port`.
    pub fn send(&mut self, port: Port, event: LinkEvent) {
        self.sends.push((port, event));
    }

    /// Records a flit ejection.
    pub fn eject(&mut self, flit: DataFlit, at: Cycle) {
        self.ejections.push(Ejection { flit, at });
    }

    /// Clears both queues, keeping allocations.
    pub fn clear(&mut self) {
        self.sends.clear();
        self.ejections.clear();
    }
}

/// Event counts a router can report to the metrics layer.
///
/// One flat struct shared by every flow-control discipline keeps the
/// `Router` trait object-safe-ish and the network's collection loop free of
/// downcasts; fields that do not apply to a discipline simply stay zero and
/// are omitted from exports. All fields are cumulative since construction
/// except `bookings_in_flight`, which is an instantaneous gauge sampled at
/// collection time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Flits that could not traverse the switch for lack of downstream
    /// credit (virtual-channel disciplines).
    pub credit_stalls: u64,
    /// Packets that requested an output VC in a cycle where every candidate
    /// VC was already held (virtual-channel disciplines).
    pub vc_alloc_conflicts: u64,
    /// Losing requests in switch output arbitration: contenders that had a
    /// flit ready but were not picked this cycle and must retry.
    pub switch_arb_retries: u64,
    /// Control flits whose reservation schedule was fully booked
    /// (flit-reservation: scheduling attempts that failed and stalled).
    pub reservation_misses: u64,
    /// Data flits successfully scheduled into reservation tables
    /// (flit-reservation: table hits).
    pub reservation_hits: u64,
    /// Control flits forwarded onto control links (flit-reservation).
    pub control_flits_sent: u64,
    /// Data flits that departed on their arrival cycle without being
    /// buffered — the paper's zero-turnaround signature (flit-reservation).
    pub zero_turnaround_departures: u64,
    /// Data flits that arrived without a booked departure and had to park
    /// in the reservation table (flit-reservation).
    pub parked_arrivals: u64,
    /// Data flits forwarded onto data links (any discipline).
    pub data_flits_sent: u64,
    /// Reservations currently booked but not yet departed, summed over all
    /// input tables; an instantaneous gauge (flit-reservation).
    pub bookings_in_flight: u64,
    /// Route computations that detoured around a permanently dead output
    /// link (any discipline; zero while no link has been masked).
    pub masked_routes: u64,
}

impl RouterCounters {
    /// Adds every cumulative field of `other` into `self` (including the
    /// `bookings_in_flight` gauge, which sums into a network-wide total).
    pub fn absorb(&mut self, other: &RouterCounters) {
        self.credit_stalls += other.credit_stalls;
        self.vc_alloc_conflicts += other.vc_alloc_conflicts;
        self.switch_arb_retries += other.switch_arb_retries;
        self.reservation_misses += other.reservation_misses;
        self.reservation_hits += other.reservation_hits;
        self.control_flits_sent += other.control_flits_sent;
        self.zero_turnaround_departures += other.zero_turnaround_departures;
        self.parked_arrivals += other.parked_arrivals;
        self.data_flits_sent += other.data_flits_sent;
        self.bookings_in_flight += other.bookings_in_flight;
        self.masked_routes += other.masked_routes;
    }

    /// Per-window delta against an earlier snapshot of the same counters.
    /// Every monotonic field subtracts; `bookings_in_flight` is an
    /// instantaneous gauge, so the current value passes through unchanged.
    pub fn delta(&self, prev: &RouterCounters) -> RouterCounters {
        RouterCounters {
            credit_stalls: self.credit_stalls - prev.credit_stalls,
            vc_alloc_conflicts: self.vc_alloc_conflicts - prev.vc_alloc_conflicts,
            switch_arb_retries: self.switch_arb_retries - prev.switch_arb_retries,
            reservation_misses: self.reservation_misses - prev.reservation_misses,
            reservation_hits: self.reservation_hits - prev.reservation_hits,
            control_flits_sent: self.control_flits_sent - prev.control_flits_sent,
            zero_turnaround_departures: self.zero_turnaround_departures
                - prev.zero_turnaround_departures,
            parked_arrivals: self.parked_arrivals - prev.parked_arrivals,
            data_flits_sent: self.data_flits_sent - prev.data_flits_sent,
            bookings_in_flight: self.bookings_in_flight,
            masked_routes: self.masked_routes - prev.masked_routes,
        }
    }
}

/// A flow-control router that can be wired into a `Network`.
pub trait Router {
    /// The node this router serves.
    fn node(&self) -> NodeId;

    /// Delivers one event arriving on `port` at the start of cycle `now`.
    fn receive(&mut self, port: Port, event: LinkEvent, now: Cycle);

    /// Offers a packet from the node's source queue. Returns `true` if the
    /// router accepted it (took ownership); `false` leaves it queued and
    /// the network retries next cycle.
    fn try_inject(&mut self, packet: noc_traffic::Packet, now: Cycle) -> bool;

    /// Advances the router by one cycle, appending link sends and
    /// ejections to `out`.
    fn step(&mut self, now: Cycle, out: &mut StepOutputs);

    /// Data buffers currently occupied at input `port` (for the paper's
    /// Section 4.2 occupancy probe).
    fn occupied_data_buffers(&self, port: Port) -> usize;

    /// Data buffer capacity at input `port`.
    fn data_buffer_capacity(&self, port: Port) -> usize;

    /// Flits currently queued anywhere inside the router (including its
    /// network-interface queues); used by warm-up detection.
    fn queued_flits(&self) -> usize;

    /// `true` when the router is quiescent: no buffered flits, no pending
    /// reservations anywhere in the horizon window, no queued control
    /// state. The network uses this to skip stepping the router entirely.
    ///
    /// # Contract
    ///
    /// If `is_idle()` returns `true`, then [`Router::step`] — called with
    /// any `now` and no intervening [`Router::receive`] or
    /// [`Router::try_inject`] — must be a pure no-op: it emits nothing
    /// into its [`StepOutputs`], emits no trace events, draws nothing
    /// from any internal RNG, and leaves the router in a state
    /// observationally identical to not having been stepped at all
    /// (sliding windows may advance, but only in ways that make a jumped
    /// advance indistinguishable from repeated single-cycle advances).
    /// Skipping idle routers must therefore be bit-exactly trace-neutral.
    ///
    /// The default is conservatively `false`, which disables idle
    /// skipping for routers that have not audited their `step` path.
    fn is_idle(&self) -> bool {
        false
    }

    /// Writes this router's event counts into `out` for the metrics layer.
    ///
    /// Implementations overwrite the fields they track and leave the rest
    /// untouched. The default reports nothing, so routers without
    /// instrumentation keep working unchanged. Collection must not mutate
    /// simulation state: it is only ever called from metrics flushes, never
    /// from the cycle loop.
    fn collect_counters(&self, out: &mut RouterCounters) {
        let _ = out;
    }

    /// Emits one stall-provenance trace event for every flit that was
    /// eligible to make progress this cycle but did not, classified by
    /// what blocked it (VC allocation, credit, switch arbitration, or —
    /// for FR control flits — the control plane).
    ///
    /// Called by the network at the end of every cycle, after
    /// `step`/`apply_outputs` and before the clock advances, identically
    /// in all stepping modes. Implementations must be read-only over
    /// simulation state (no RNG draws, no mutation beyond the trace sink)
    /// and must early-return when their sink is disabled so the default
    /// `NullSink` configuration compiles the scan away. A quiescent
    /// router emits nothing, preserving idle-skip trace neutrality.
    ///
    /// The default is a no-op for routers without stall instrumentation.
    fn emit_stall_provenance(&mut self, now: Cycle) {
        let _ = now;
    }

    /// Informs the router that its outgoing link on `port` has failed
    /// permanently. From this call onwards the router must stop routing
    /// *new* traffic through `port` (typically by masking it out of the
    /// routing function); traffic already committed to the link — booked
    /// reservations, flits mid-switch — is still allowed to drain, which
    /// models a link taken out of service rather than severed mid-flight.
    ///
    /// The default ignores the notification, which is correct for test
    /// routers that never route.
    fn on_link_dead(&mut self, port: Port) {
        let _ = port;
    }

    /// Reservations currently booked but not yet departed (the
    /// `bookings_in_flight` gauge of [`RouterCounters`]), exposed
    /// directly so the network can track its high-water mark every
    /// cycle without collecting the full counter struct. Disciplines
    /// without reservation state report zero.
    fn bookings_in_flight(&self) -> u64 {
        0
    }

    /// Dumps the router's complete deterministic state for post-mortem
    /// inspection (see [`noc_metrics::Snapshot`] for the contract). The
    /// default reports `null`, which keeps test routers working; both
    /// shipped router families override it.
    fn state_snapshot(&self) -> noc_metrics::Json {
        noc_metrics::Json::Null
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::PacketId;

    fn flit() -> DataFlit {
        DataFlit {
            packet: PacketId::new(0),
            seq: 0,
            length: 1,
            dest: NodeId::new(0),
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    #[test]
    fn wire_classes() {
        assert_eq!(LinkEvent::Data(flit()).wire_class(), WireClass::Data);
        assert_eq!(
            LinkEvent::VcData(
                VcTag {
                    vc: 0,
                    ty: crate::FlitType::HeadTail
                },
                flit()
            )
            .wire_class(),
            WireClass::Data
        );
        assert_eq!(
            LinkEvent::VcCredit { vc: 1 }.wire_class(),
            WireClass::Credit
        );
        assert_eq!(
            LinkEvent::FrCredit {
                frees_at: Cycle::ZERO
            }
            .wire_class(),
            WireClass::Credit
        );
        assert_eq!(
            LinkEvent::ControlCredit { vc: 0 }.wire_class(),
            WireClass::Credit
        );
    }

    #[test]
    fn step_outputs_collects_and_clears() {
        let mut out = StepOutputs::new();
        out.send(Port::East, LinkEvent::VcCredit { vc: 0 });
        out.eject(flit(), Cycle::new(9));
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.ejections.len(), 1);
        assert_eq!(out.ejections[0].at, Cycle::new(9));
        out.clear();
        assert!(out.sends.is_empty());
        assert!(out.ejections.is_empty());
    }
}
