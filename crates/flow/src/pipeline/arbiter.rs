//! The pluggable switch-allocation arbiter stage.

use crate::pipeline::iface::{SwitchBid, SwitchContender};
use noc_engine::Rng;
use noc_topology::{Port, PortMap};

/// Rotation distance that sorts entries at or above the pointer before
/// wrapped-around ones, without the arbiter having to know how many
/// virtual channels exist.
const WRAP: usize = 1 << 16;

/// Which switch-allocation policy the [`SwitchArbiter`] runs.
///
/// `Random` is the paper's random arbitration and the default; it is
/// bit-identical to the pre-stage-refactor routers. The other two are
/// stage-swap variants: same interfaces, different policy, no new
/// router.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArbiterKind {
    /// Uniform random choice among contenders (the paper's arbiter).
    #[default]
    Random,
    /// Rotating-priority choice: the pointer advances past each winner,
    /// so every contender is served within one rotation.
    RoundRobin,
    /// Oldest-first by buffer-arrival cycle, index as the tie-break.
    AgeBased,
}

impl ArbiterKind {
    /// Parses a config/CLI label (`random`, `round-robin`, `age-based`);
    /// `None` for anything else.
    pub fn from_label(label: &str) -> Option<ArbiterKind> {
        match label {
            "random" => Some(ArbiterKind::Random),
            "round-robin" | "round_robin" | "rr" => Some(ArbiterKind::RoundRobin),
            "age-based" | "age_based" | "age" => Some(ArbiterKind::AgeBased),
            _ => None,
        }
    }
}

/// The switch-allocation arbiter: nominates one ready flit per input
/// port, then grants one nomination per output port.
///
/// Owns all arbitration state (the policy and the rotating-priority
/// pointers); callers hand in the candidate slate and an [`Rng`] and
/// get the winner back. Under [`ArbiterKind::Random`] both methods make
/// exactly one `Rng::choose` draw over the slate — the same draw the
/// monolithic routers made — so the default policy is bit-identical.
#[derive(Clone, Debug)]
pub struct SwitchArbiter {
    kind: ArbiterKind,
    /// Per input port: the input VC index favored next (round-robin).
    nominate_ptr: PortMap<usize>,
    /// Per output port: the input port index favored next (round-robin).
    grant_ptr: PortMap<usize>,
}

impl SwitchArbiter {
    /// Creates an arbiter running `kind` with rotation pointers at zero.
    pub fn new(kind: ArbiterKind) -> Self {
        SwitchArbiter {
            kind,
            nominate_ptr: PortMap::from_fn(|_| 0),
            grant_ptr: PortMap::from_fn(|_| 0),
        }
    }

    /// The policy this arbiter runs.
    pub fn kind(&self) -> ArbiterKind {
        self.kind
    }

    /// Picks input port `in_port`'s nomination among its ready bids.
    ///
    /// # Panics
    ///
    /// Panics if `bids` is empty: nominations exist only for inputs
    /// with at least one ready flit.
    pub fn nominate(&mut self, in_port: Port, bids: &[SwitchBid], rng: &mut Rng) -> SwitchBid {
        assert!(!bids.is_empty(), "nomination from an empty bid slate");
        match self.kind {
            ArbiterKind::Random => *rng.choose(bids),
            ArbiterKind::RoundRobin => {
                let ptr = self.nominate_ptr[in_port];
                let chosen = *bids
                    .iter()
                    .min_by_key(|b| rotation_distance(b.in_vc, ptr))
                    .expect("non-empty slate");
                self.nominate_ptr[in_port] = chosen.in_vc + 1;
                chosen
            }
            ArbiterKind::AgeBased => *bids
                .iter()
                .min_by_key(|b| (b.arrived, b.in_vc))
                .expect("non-empty slate"),
        }
    }

    /// Picks the winner among the contenders for output port `out_port`.
    ///
    /// # Panics
    ///
    /// Panics if `contenders` is empty: outputs without bidders are
    /// never arbitrated.
    pub fn grant(
        &mut self,
        out_port: Port,
        contenders: &[SwitchContender],
        rng: &mut Rng,
    ) -> SwitchContender {
        assert!(
            !contenders.is_empty(),
            "grant over an empty contender slate"
        );
        match self.kind {
            ArbiterKind::Random => *rng.choose(contenders),
            ArbiterKind::RoundRobin => {
                let ptr = self.grant_ptr[out_port];
                let chosen = *contenders
                    .iter()
                    .min_by_key(|c| rotation_distance(c.in_port.index(), ptr))
                    .expect("non-empty slate");
                self.grant_ptr[out_port] = chosen.in_port.index() + 1;
                chosen
            }
            ArbiterKind::AgeBased => *contenders
                .iter()
                .min_by_key(|c| (c.arrived, c.in_port.index(), c.in_vc))
                .expect("non-empty slate"),
        }
    }
}

/// Priority of `index` under a rotating pointer: indices at or above
/// the pointer come first (closest first), wrapped-around ones after.
fn rotation_distance(index: usize, ptr: usize) -> usize {
    if index >= ptr {
        index - ptr
    } else {
        index + WRAP
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::Cycle;

    fn bid(in_vc: usize, arrived: u64) -> SwitchBid {
        SwitchBid {
            in_vc,
            out_port: Port::East,
            arrived: Cycle::new(arrived),
        }
    }

    fn contender(in_port: Port, arrived: u64) -> SwitchContender {
        SwitchContender {
            in_port,
            in_vc: 0,
            arrived: Cycle::new(arrived),
        }
    }

    #[test]
    fn labels_round_trip() {
        assert_eq!(ArbiterKind::from_label("random"), Some(ArbiterKind::Random));
        assert_eq!(
            ArbiterKind::from_label("round-robin"),
            Some(ArbiterKind::RoundRobin)
        );
        assert_eq!(
            ArbiterKind::from_label("age-based"),
            Some(ArbiterKind::AgeBased)
        );
        assert_eq!(ArbiterKind::from_label("lottery"), None);
    }

    #[test]
    fn random_matches_plain_choose() {
        // The whole bit-identity argument: under Random the arbiter's
        // draw is exactly `rng.choose(slate)`.
        let slate = [bid(0, 0), bid(3, 0), bid(5, 0)];
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        let mut arb = SwitchArbiter::new(ArbiterKind::Random);
        for _ in 0..64 {
            let want = *b.choose(&slate);
            assert_eq!(arb.nominate(Port::North, &slate, &mut a), want);
        }
    }

    #[test]
    fn round_robin_rotates_through_contenders() {
        let mut arb = SwitchArbiter::new(ArbiterKind::RoundRobin);
        let mut rng = Rng::from_seed(1);
        let slate = [bid(1, 0), bid(4, 0), bid(6, 0)];
        let picks: Vec<usize> = (0..4)
            .map(|_| arb.nominate(Port::North, &slate, &mut rng).in_vc)
            .collect();
        // Pointer starts at 0: picks 1, then (ptr=2) 4, then (ptr=5) 6,
        // then wraps back to 1.
        assert_eq!(picks, vec![1, 4, 6, 1]);
        // Rng untouched by round-robin decisions.
        assert_eq!(rng, Rng::from_seed(1));
    }

    #[test]
    fn round_robin_grant_is_fair_across_inputs() {
        let mut arb = SwitchArbiter::new(ArbiterKind::RoundRobin);
        let mut rng = Rng::from_seed(1);
        let slate = [contender(Port::North, 0), contender(Port::West, 0)];
        let picks: Vec<Port> = (0..4)
            .map(|_| arb.grant(Port::East, &slate, &mut rng).in_port)
            .collect();
        assert_eq!(
            picks,
            vec![Port::North, Port::West, Port::North, Port::West]
        );
    }

    #[test]
    fn age_based_prefers_oldest_then_lowest_index() {
        let mut arb = SwitchArbiter::new(ArbiterKind::AgeBased);
        let mut rng = Rng::from_seed(1);
        let slate = [bid(2, 9), bid(5, 3), bid(7, 3)];
        assert_eq!(arb.nominate(Port::South, &slate, &mut rng).in_vc, 5);
        let slate = [contender(Port::West, 4), contender(Port::North, 2)];
        assert_eq!(arb.grant(Port::East, &slate, &mut rng).in_port, Port::North);
        assert_eq!(rng, Rng::from_seed(1));
    }
}
