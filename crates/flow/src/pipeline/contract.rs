//! Runtime verification of the inter-stage contracts.
//!
//! The pipeline's correctness argument rests on a handful of per-cycle
//! contracts at the stage boundaries: a grant is only ever an answer to
//! a request, each input nominates at most once, each output is
//! traversed at most once, and a reservation never departs before it
//! arrives. [`StageContractChecker`] records the requests and grants a
//! driver moves between stages and flags any message that breaks a
//! contract; the routers surface each breach as a
//! `StageContractViolation` trace event, which the engine's
//! `InvariantChecker` counts as a violation — so a contract breach
//! fails `assert_clean` exactly like a conservation bug would.

use crate::pipeline::iface::{
    ReservationGrant, ReservationRequest, SwitchBid, SwitchContender, VcAllocGrant, VcAllocRequest,
};
use noc_topology::Port;

/// Dense codes naming each contract, carried by the
/// `StageContractViolation` trace event.
pub mod code {
    /// A VC-allocation grant had no matching request this cycle.
    pub const VC_GRANT_WITHOUT_REQUEST: u8 = 1;
    /// One downstream VC was granted twice in one cycle.
    pub const VC_DOUBLE_GRANT: u8 = 2;
    /// An input port nominated more than one flit in one cycle.
    pub const DOUBLE_NOMINATION: u8 = 3;
    /// A switch grant went to a flit its input never nominated.
    pub const GRANT_WITHOUT_BID: u8 = 4;
    /// An output port was traversed more than once in one cycle.
    pub const DOUBLE_TRAVERSAL: u8 = 5;
    /// A switch traversal happened without a grant for that output.
    pub const TRAVERSAL_WITHOUT_GRANT: u8 = 6;
    /// A reservation grant had no matching request this cycle.
    pub const RESERVATION_GRANT_WITHOUT_REQUEST: u8 = 7;
    /// A granted departure precedes the requested arrival.
    pub const RESERVATION_BEFORE_ARRIVAL: u8 = 8;
}

/// Cap on retained violation messages, mirroring the invariant
/// checker's own bound.
const MAX_KEPT_VIOLATIONS: usize = 32;

/// Per-cycle verifier of the stage contracts.
///
/// The driver calls `begin_cycle` at the top of `step`, `note_*` as it
/// moves each typed message across a stage boundary, and `end_cycle` at
/// the bottom; `end_cycle` returns the codes of contracts broken this
/// cycle so the driver can emit one trace event per breach. All state
/// is reused across cycles — no steady-state allocation.
///
/// # Examples
///
/// ```
/// use noc_flow::pipeline::{code, StageContractChecker, VcAllocGrant, VcAllocRequest};
/// use noc_topology::Port;
///
/// let mut ck = StageContractChecker::new();
/// ck.begin_cycle();
/// // A grant the allocation stage was never asked for:
/// let req = VcAllocRequest { in_port: Port::North, in_vc: 0, out_port: Port::East };
/// ck.note_vc_grant(&req, VcAllocGrant { out_vc: 1 });
/// assert_eq!(ck.end_cycle(), &[code::VC_GRANT_WITHOUT_REQUEST]);
/// assert!(!ck.is_clean());
/// ```
#[derive(Clone, Debug, Default)]
pub struct StageContractChecker {
    vc_requests: Vec<VcAllocRequest>,
    vc_grants: Vec<(Port, u8)>,
    nominations: Vec<(Port, SwitchBid)>,
    switch_grants: Vec<(Port, SwitchContender)>,
    traversals: Vec<Port>,
    res_requests: Vec<ReservationRequest>,
    fresh: Vec<u8>,
    violation_count: u64,
    violations: Vec<String>,
}

impl StageContractChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        StageContractChecker::default()
    }

    /// Resets the per-cycle request/grant ledgers. Call at the top of
    /// every `step`.
    pub fn begin_cycle(&mut self) {
        self.vc_requests.clear();
        self.vc_grants.clear();
        self.nominations.clear();
        self.switch_grants.clear();
        self.traversals.clear();
        self.res_requests.clear();
        self.fresh.clear();
    }

    /// Records a VC-allocation request entering the allocation stage.
    pub fn note_vc_request(&mut self, req: VcAllocRequest) {
        self.vc_requests.push(req);
    }

    /// Checks a VC-allocation grant against this cycle's requests.
    pub fn note_vc_grant(&mut self, req: &VcAllocRequest, grant: VcAllocGrant) {
        if !self.vc_requests.contains(req) {
            self.flag(
                code::VC_GRANT_WITHOUT_REQUEST,
                format!("vc grant for unrequested {req:?}"),
            );
        }
        if self.vc_grants.contains(&(req.out_port, grant.out_vc)) {
            self.flag(
                code::VC_DOUBLE_GRANT,
                format!(
                    "vc {} of output {} granted twice in one cycle",
                    grant.out_vc, req.out_port
                ),
            );
        }
        self.vc_grants.push((req.out_port, grant.out_vc));
    }

    /// Checks input port `in_port`'s switch nomination: at most one per
    /// input per cycle.
    pub fn note_nomination(&mut self, in_port: Port, bid: SwitchBid) {
        if self.nominations.iter().any(|&(p, _)| p == in_port) {
            self.flag(
                code::DOUBLE_NOMINATION,
                format!("input {in_port} nominated twice in one cycle"),
            );
        }
        self.nominations.push((in_port, bid));
    }

    /// Checks a switch grant: the winner must be one of this cycle's
    /// nominations for `out_port`.
    pub fn note_switch_grant(&mut self, out_port: Port, winner: SwitchContender) {
        let nominated = self.nominations.iter().any(|&(p, b)| {
            p == winner.in_port && b.in_vc == winner.in_vc && b.out_port == out_port
        });
        if !nominated {
            self.flag(
                code::GRANT_WITHOUT_BID,
                format!("switch grant on {out_port} to non-bidder {winner:?}"),
            );
        }
        self.switch_grants.push((out_port, winner));
    }

    /// Checks a switch traversal of `out_port`: at most one per output
    /// per cycle, and only after a grant for that output.
    pub fn note_traversal(&mut self, out_port: Port) {
        self.check_single_traversal(out_port);
        if !self.switch_grants.iter().any(|&(o, _)| o == out_port) {
            self.flag(
                code::TRAVERSAL_WITHOUT_GRANT,
                format!("output {out_port} traversed without a switch grant"),
            );
        }
        self.traversals.push(out_port);
    }

    /// Checks a reservation-scheduled data departure on `out_port`: at
    /// most one per output channel per cycle (FR's data path has no
    /// switch grants — the reservation *is* the grant).
    pub fn note_departure(&mut self, out_port: Port) {
        self.check_single_traversal(out_port);
        self.traversals.push(out_port);
    }

    /// Records a reservation request entering the reservation stage.
    pub fn note_reservation_request(&mut self, req: ReservationRequest) {
        self.res_requests.push(req);
    }

    /// Checks a reservation grant against this cycle's requests and the
    /// arrival-before-departure contract.
    pub fn note_reservation_grant(&mut self, req: &ReservationRequest, grant: ReservationGrant) {
        if !self.res_requests.contains(req) {
            self.flag(
                code::RESERVATION_GRANT_WITHOUT_REQUEST,
                format!("reservation grant for unrequested {req:?}"),
            );
        }
        if grant.departure < req.arrival {
            self.flag(
                code::RESERVATION_BEFORE_ARRIVAL,
                format!(
                    "reservation on {} departs at {} before arrival {}",
                    req.out_port, grant.departure, req.arrival
                ),
            );
        }
    }

    /// Codes of the contracts broken since `begin_cycle`. The driver
    /// emits one `StageContractViolation` event per entry.
    pub fn end_cycle(&self) -> &[u8] {
        &self.fresh
    }

    /// Total contract breaches since construction.
    pub fn violation_count(&self) -> u64 {
        self.violation_count
    }

    /// The first [`MAX_KEPT_VIOLATIONS`] breach messages.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// True if no contract has ever been broken.
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }

    /// Panics with the collected messages if any contract was broken.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "{} stage-contract violation(s); first {}:\n{}",
            self.violation_count,
            self.violations.len(),
            self.violations.join("\n")
        );
    }

    fn check_single_traversal(&mut self, out_port: Port) {
        if self.traversals.contains(&out_port) {
            self.flag(
                code::DOUBLE_TRAVERSAL,
                format!("output {out_port} traversed twice in one cycle"),
            );
        }
    }

    fn flag(&mut self, code: u8, message: String) {
        self.violation_count += 1;
        self.fresh.push(code);
        if self.violations.len() < MAX_KEPT_VIOLATIONS {
            self.violations.push(message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::Cycle;

    fn req(in_port: Port, in_vc: usize, out_port: Port) -> VcAllocRequest {
        VcAllocRequest {
            in_port,
            in_vc,
            out_port,
        }
    }

    fn bid(in_vc: usize, out_port: Port) -> SwitchBid {
        SwitchBid {
            in_vc,
            out_port,
            arrived: Cycle::ZERO,
        }
    }

    fn winner(in_port: Port, in_vc: usize) -> SwitchContender {
        SwitchContender {
            in_port,
            in_vc,
            arrived: Cycle::ZERO,
        }
    }

    #[test]
    fn requested_grants_are_clean() {
        let mut ck = StageContractChecker::new();
        ck.begin_cycle();
        let r = req(Port::North, 1, Port::East);
        ck.note_vc_request(r);
        ck.note_vc_grant(&r, VcAllocGrant { out_vc: 3 });
        ck.note_nomination(Port::North, bid(1, Port::East));
        ck.note_switch_grant(Port::East, winner(Port::North, 1));
        ck.note_traversal(Port::East);
        assert!(ck.end_cycle().is_empty());
        ck.assert_clean();
    }

    #[test]
    fn double_vc_grant_is_flagged() {
        let mut ck = StageContractChecker::new();
        ck.begin_cycle();
        let a = req(Port::North, 0, Port::East);
        let b = req(Port::South, 0, Port::East);
        ck.note_vc_request(a);
        ck.note_vc_request(b);
        ck.note_vc_grant(&a, VcAllocGrant { out_vc: 2 });
        ck.note_vc_grant(&b, VcAllocGrant { out_vc: 2 });
        assert_eq!(ck.end_cycle(), &[code::VC_DOUBLE_GRANT]);
    }

    #[test]
    fn double_nomination_and_traversal_are_flagged() {
        let mut ck = StageContractChecker::new();
        ck.begin_cycle();
        ck.note_nomination(Port::West, bid(0, Port::East));
        ck.note_nomination(Port::West, bid(1, Port::East));
        ck.note_switch_grant(Port::East, winner(Port::West, 0));
        ck.note_traversal(Port::East);
        ck.note_traversal(Port::East);
        assert_eq!(
            ck.end_cycle(),
            &[code::DOUBLE_NOMINATION, code::DOUBLE_TRAVERSAL]
        );
        assert_eq!(ck.violation_count(), 2);
    }

    #[test]
    fn grant_to_non_bidder_is_flagged() {
        let mut ck = StageContractChecker::new();
        ck.begin_cycle();
        ck.note_nomination(Port::West, bid(0, Port::East));
        ck.note_switch_grant(Port::North, winner(Port::West, 0));
        assert_eq!(ck.end_cycle(), &[code::GRANT_WITHOUT_BID]);
    }

    #[test]
    fn reservation_contracts() {
        let mut ck = StageContractChecker::new();
        ck.begin_cycle();
        let r = ReservationRequest {
            in_port: Port::North,
            out_port: Port::East,
            arrival: Cycle::new(10),
            min_free: 1,
            allow_bypass: false,
        };
        ck.note_reservation_request(r);
        ck.note_reservation_grant(
            &r,
            ReservationGrant {
                departure: Cycle::new(12),
            },
        );
        assert!(ck.end_cycle().is_empty());
        ck.note_reservation_grant(
            &r,
            ReservationGrant {
                departure: Cycle::new(4),
            },
        );
        assert_eq!(ck.end_cycle(), &[code::RESERVATION_BEFORE_ARRIVAL]);
        ck.begin_cycle();
        ck.note_departure(Port::East);
        ck.note_departure(Port::East);
        assert_eq!(ck.end_cycle(), &[code::DOUBLE_TRAVERSAL]);
        assert_eq!(ck.violation_count(), 2);
    }

    #[test]
    fn begin_cycle_clears_the_ledger_but_keeps_totals() {
        let mut ck = StageContractChecker::new();
        ck.begin_cycle();
        ck.note_traversal(Port::East);
        assert_eq!(ck.end_cycle(), &[code::TRAVERSAL_WITHOUT_GRANT]);
        ck.begin_cycle();
        assert!(ck.end_cycle().is_empty());
        assert_eq!(ck.violation_count(), 1);
        assert!(!ck.is_clean());
    }
}
