//! The route-compute stage, shared by both router families.

use noc_topology::{masked_xy_route, xy_route, Mesh, NodeId, Port};

/// Route computation for one router: dimension-ordered (XY) routing
/// with dead-link masking and a detour counter.
///
/// Owns the routing function's whole state — the mesh geometry, this
/// router's coordinates, the mask of permanently failed output links —
/// so neither router family touches a routing field directly.
///
/// # Examples
///
/// ```
/// use noc_flow::pipeline::RouteCompute;
/// use noc_topology::{Mesh, Port};
///
/// let mesh = Mesh::new(4, 4);
/// let mut rc = RouteCompute::new(mesh, mesh.node_at(0, 0));
/// assert_eq!(rc.route(mesh.node_at(3, 0)), Port::East);
/// assert_eq!(rc.route(mesh.node_at(0, 0)), Port::Local);
/// ```
#[derive(Clone, Debug)]
pub struct RouteCompute {
    mesh: Mesh,
    node: NodeId,
    /// Output ports masked out of routing after a permanent link
    /// failure (bit `1 << port.index()`).
    dead_mask: u8,
    /// Route computations that detoured around a dead output link.
    masked_routes: u64,
}

impl RouteCompute {
    /// Creates the stage for `node` of `mesh` with no links masked.
    pub fn new(mesh: Mesh, node: NodeId) -> Self {
        RouteCompute {
            mesh,
            node,
            dead_mask: 0,
            masked_routes: 0,
        }
    }

    /// Computes the output port towards `dest`; `Local` when `dest` is
    /// this router's own node.
    ///
    /// # Panics
    ///
    /// Panics if masking has disconnected every route to `dest`.
    pub fn route(&mut self, dest: NodeId) -> Port {
        if dest == self.node {
            return Port::Local;
        }
        let out = masked_xy_route(self.mesh, self.node, dest, self.dead_mask)
            .expect("non-local destination must route");
        if self.dead_mask != 0 && Some(out) != xy_route(self.mesh, self.node, dest) {
            self.masked_routes += 1;
        }
        out
    }

    /// Masks `port` out of the routing function after a permanent link
    /// failure.
    pub fn mask_dead(&mut self, port: Port) {
        self.dead_mask |= 1 << port.index();
    }

    /// Cumulative count of routes that detoured around a dead link.
    pub fn masked_routes(&self) -> u64 {
        self.masked_routes
    }
}

impl noc_metrics::Snapshot for RouteCompute {
    fn snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::Json;
        Json::obj(vec![
            ("node".into(), Json::Num(self.node.raw() as f64)),
            ("dead_mask".into(), Json::Num(self.dead_mask as f64)),
            ("masked_routes".into(), Json::Num(self.masked_routes as f64)),
        ])
    }
}
