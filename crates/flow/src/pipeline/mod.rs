//! Typed router-pipeline stages and their inter-stage interfaces.
//!
//! The paper describes a router as a four-stage pipeline — route
//! compute, allocation (VC allocation in the baseline, reservation
//! matching in FR), switch allocation, and switch/link traversal. This
//! module is the shared vocabulary that lets `noc-vc` and
//! `flit-reservation` build their routers as *compositions of stage
//! structs* instead of monolithic step functions:
//!
//! * [`iface`] — the typed request/grant messages that cross a stage
//!   boundary ([`VcAllocRequest`]/[`VcAllocGrant`], [`SwitchBid`]/
//!   [`SwitchContender`], [`ReservationRequest`]/[`ReservationGrant`]);
//! * [`RouteCompute`] — the route-compute stage itself, shared by both
//!   router families (XY routing, dead-link masking, detour counting);
//! * [`SwitchArbiter`] — the pluggable switch-allocation arbiter
//!   ([`ArbiterKind::Random`] reproduces the paper's random arbitration
//!   bit-for-bit; round-robin and age-based are drop-in swaps);
//! * [`StageContractChecker`] — runtime verification of the stage
//!   contracts (no grant without a request, at most one traversal per
//!   output per cycle, ...), reporting breaches through the trace
//!   layer as `StageContractViolation` events so the
//!   `InvariantChecker` fails the run;
//! * [`StallScan`] — the shared arrival/departure bracketing rule
//!   behind both routers' stall-provenance hooks.
//!
//! # Cross-stage discipline
//!
//! Stages communicate *only* through the typed messages above: a stage
//! owns its state, keeps its fields private, and exposes request/grant
//! methods. The lint gate below makes leaking a private type through a
//! public stage signature a hard error, so the boundary cannot rot
//! silently.

#![deny(private_interfaces, private_bounds)]

mod arbiter;
mod contract;
mod iface;
mod route;
mod stall;

pub use arbiter::{ArbiterKind, SwitchArbiter};
pub use contract::{code, StageContractChecker};
pub use iface::{
    ReservationGrant, ReservationRequest, SwitchBid, SwitchContender, VcAllocGrant, VcAllocRequest,
};
pub use route::RouteCompute;
pub use stall::StallScan;
