//! Shared scaffolding for the routers' stall-provenance hooks.

use crate::TraceEmit;
use noc_engine::trace::TraceSink;
use noc_engine::Cycle;
use noc_topology::NodeId;
use noc_traffic::PacketId;

/// One stall-provenance scan: the arrival/departure bracketing rule
/// both router families share.
///
/// A front flit is charged a stall marker for cycle `now` only if it
/// was already buffered when the cycle began (`arrived < now`) — a flit
/// that arrived *this* cycle is in its mandatory pipeline wait, not a
/// contention loss. Both routers used to reimplement this gate (plus
/// the `ENABLED` short-circuit and the cycle/node bookkeeping) inline;
/// this type is the single copy.
///
/// Construction is gated on `S::ENABLED`, so for untraced routers the
/// whole scan folds away:
///
/// ```
/// use noc_engine::trace::{NullSink, VecSink};
/// use noc_engine::Cycle;
/// use noc_flow::pipeline::StallScan;
/// use noc_topology::NodeId;
///
/// assert!(StallScan::begin(&NullSink, Cycle::new(5), NodeId::new(0)).is_none());
/// let scan = StallScan::begin(&VecSink::new(), Cycle::new(5), NodeId::new(0)).unwrap();
/// assert!(scan.eligible(Cycle::new(4)));
/// assert!(!scan.eligible(Cycle::new(5)));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StallScan {
    now: Cycle,
    node: NodeId,
}

impl StallScan {
    /// Begins a scan for `node` at `now`; `None` when the sink type is
    /// compiled out, so callers can skip the walk entirely.
    #[inline(always)]
    pub fn begin<S: TraceSink>(_sink: &S, now: Cycle, node: NodeId) -> Option<StallScan> {
        if S::ENABLED {
            Some(StallScan { now, node })
        } else {
            None
        }
    }

    /// True if a front flit that arrived at `arrived` is charged a
    /// stall for this cycle.
    #[inline(always)]
    pub fn eligible(&self, arrived: Cycle) -> bool {
        arrived < self.now
    }

    /// Marks a head losing VC allocation this cycle.
    #[inline(always)]
    pub fn vc_alloc_stall<S: TraceSink>(&self, sink: &mut S, packet: PacketId, seq: u32) {
        sink.vc_alloc_stall(self.now, self.node, packet, seq);
    }

    /// Marks a flit blocked on downstream credit this cycle.
    #[inline(always)]
    pub fn credit_stall<S: TraceSink>(&self, sink: &mut S, packet: PacketId, seq: u32) {
        sink.credit_stall(self.now, self.node, packet, seq);
    }

    /// Marks a flit losing switch arbitration this cycle.
    #[inline(always)]
    pub fn switch_stall<S: TraceSink>(&self, sink: &mut S, packet: PacketId, seq: u32) {
        sink.switch_stall(self.now, self.node, packet, seq);
    }

    /// Marks a control flit blocked in a control queue this cycle (FR).
    #[inline(always)]
    pub fn control_stall<S: TraceSink>(&self, sink: &mut S, packet: PacketId) {
        sink.control_stall(self.now, self.node, packet);
    }
}
