//! Typed messages crossing a stage boundary.
//!
//! Every value here is a plain `Copy` record: a *request* travels
//! forward into a stage, a *grant* travels back. The driver (the
//! router's `step`) moves them between stages; stages never reach into
//! each other's fields.

use noc_engine::Cycle;
use noc_topology::Port;

/// A routed head flit asking the VC-allocation stage for a downstream
/// virtual channel on its output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcAllocRequest {
    /// Input port holding the requesting head.
    pub in_port: Port,
    /// Input virtual channel holding the requesting head.
    pub in_vc: usize,
    /// Output port the head was routed to.
    pub out_port: Port,
}

/// The VC-allocation stage's answer to a [`VcAllocRequest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcAllocGrant {
    /// Downstream virtual channel now owned by the requesting packet.
    pub out_vc: u8,
}

/// One input VC's bid into switch allocation: a front flit that passed
/// every per-lane gate (route and output VC held, credit available).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchBid {
    /// Input virtual channel the ready flit sits in.
    pub in_vc: usize,
    /// Output port the flit will traverse to.
    pub out_port: Port,
    /// Cycle the flit arrived in its input buffer (its age, for
    /// age-based arbitration).
    pub arrived: Cycle,
}

/// A per-input nomination contending for one output port in the second
/// round of switch allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchContender {
    /// Nominating input port.
    pub in_port: Port,
    /// Input virtual channel of the nominated flit.
    pub in_vc: usize,
    /// Arrival cycle of the nominated flit (its age, for age-based
    /// arbitration).
    pub arrived: Cycle,
}

/// A led flit asking the reservation stage for a departure slot on an
/// output channel (flit-reservation flow control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservationRequest {
    /// Input port whose control flit carries the led flit.
    pub in_port: Port,
    /// Output channel the departure is requested on.
    pub out_port: Port,
    /// Cycle the data flit arrives (or already arrived) at this router.
    pub arrival: Cycle,
    /// Downstream buffers that must stay free for the grant to be legal
    /// (all-or-nothing scheduling asks for the packet's whole remainder).
    pub min_free: i64,
    /// Whether a zero-turnaround same-cycle bypass may be granted.
    pub allow_bypass: bool,
}

/// The reservation stage's answer: a booked departure cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReservationGrant {
    /// Cycle the output channel is reserved for this flit.
    pub departure: Cycle,
}
