//! Regenerates paper Figure 8: FR6 with *leading control* — control flits
//! injected 1, 2 or 4 cycles ahead of their data flits on a network whose
//! wires all have a 1-cycle delay. Throughput should be independent of
//! the lead time.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;

fn main() {
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    println!("Figure 8: FR6 leading control, lead = 1/2/4 cycles, all wires 1 cycle");
    println!("(paper: throughput independent of lead; ~75% capacity)");
    let threads = sweep_threads();
    let mut curves = Vec::new();
    for lead in [1u64, 2, 4] {
        let cfg = FrConfig::fr6().with_timing(LinkTiming::leading_control(lead));
        let fc = FlowControl::FlitReservation(cfg);
        let mut curve = sweep_loads(&fc, mesh, 5, &loads, &sim, threads);
        curve.label = format!("FR6/lead={lead}");
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let mut m = manifest("fig8", scale, seed, "FR6 lead sweep");
    m.threads = threads as u64;
    write_curves_json(&m, &curves);
}
