//! The paper's Section 2 lineage, measured: store-and-forward →
//! virtual cut-through → wormhole → virtual channels → flit reservation.
//! Each successive scheme allocates buffers and bandwidth at a finer
//! granularity (or, for FR, in advance), buying latency and throughput.
//!
//! Buffer sizing: SAF/VCT need packet-sized buffers (8 flits ≥ L = 5);
//! the flit-granular schemes get the paper's 8-buffer inputs; FR6 is the
//! storage-matched flit-reservation configuration.

use flit_reservation::FrConfig;
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    let loads = default_loads();
    let t = LinkTiming::fast_control();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::store_and_forward(8), t),
        FlowControl::VirtualChannel(VcConfig::virtual_cut_through(8), t),
        FlowControl::VirtualChannel(VcConfig::wormhole(8), t),
        FlowControl::VirtualChannel(VcConfig::vc8(), t),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ];
    println!("Related work lineage: SAF → VCT → wormhole → VC → FR (5-flit packets)");
    let mut curves = Vec::new();
    for fc in &configs {
        let curve = sweep_loads(fc, mesh, 5, &loads, &sim, sweep_threads());
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
}
