//! Regenerates paper Figure 9: flit-reservation with a 1-cycle leading
//! control versus virtual-channel flow control, on 1-cycle wires with
//! 5-flit packets.
//!
//! `--trace-out <path>` additionally records an FR6/lead=1 run at 50%
//! offered load with latency-provenance tracing and writes a
//! Chrome-trace / Perfetto file there (sampling via `FRFC_PROV_SAMPLE`,
//! default 4).

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_metrics::write_json_file;
use noc_network::{sweep_loads, FlowControl};
use noc_provenance::chrome_trace;
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn trace_out_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace-out" => Some(path.clone()),
        _ => {
            eprintln!("usage: fig9 [--trace-out <path>]");
            std::process::exit(2)
        }
    }
}

fn main() {
    let trace_out = trace_out_arg();
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    let wires = LinkTiming::leading_control(1);
    let vc_wires = wires.vc_baseline_of();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::vc8(), vc_wires),
        FlowControl::VirtualChannel(VcConfig::vc16(), vc_wires),
        FlowControl::FlitReservation(FrConfig::fr6().with_timing(wires)),
        FlowControl::FlitReservation(FrConfig::fr13().with_timing(wires)),
    ];
    println!("Figure 9: FR (1-cycle leading control) vs VC, 1-cycle wires, 5-flit packets");
    println!("(paper: equal base latency 15; FR6 75% vs VC8 65%; latency 19 vs 21 at 50%)");
    let threads = sweep_threads();
    let mut curves = Vec::new();
    for fc in &configs {
        let mut curve = sweep_loads(fc, mesh, 5, &loads, &sim, threads);
        if matches!(fc, FlowControl::FlitReservation(_)) {
            curve.label = format!("{}/lead=1", curve.label);
        }
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let mut m = manifest("fig9", scale, seed, "VC8/VC16/FR6/FR13 lead=1");
    m.threads = threads as u64;
    write_curves_json(&m, &curves);
    if let Some(path) = trace_out {
        let fc = FlowControl::FlitReservation(FrConfig::fr6().with_timing(wires));
        let sample = std::env::var("FRFC_PROV_SAMPLE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(4);
        let load = LoadSpec::fraction_of_capacity(0.5, 5);
        let (_, report) = fc.run_traced(mesh, load, &sim, sample);
        let doc = chrome_trace(&report, mesh.width());
        match write_json_file(std::path::Path::new(&path), &doc) {
            Ok(()) => println!(
                "wrote {path}: FR6/lead=1 @ 50% load, {} flit spans (open in ui.perfetto.dev)",
                report.records.len()
            ),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
    }
}
