//! Regenerates paper Figure 9: flit-reservation with a 1-cycle leading
//! control versus virtual-channel flow control, on 1-cycle wires with
//! 5-flit packets.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    let wires = LinkTiming::leading_control(1);
    let vc_wires = wires.vc_baseline_of();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::vc8(), vc_wires),
        FlowControl::VirtualChannel(VcConfig::vc16(), vc_wires),
        FlowControl::FlitReservation(FrConfig::fr6().with_timing(wires)),
        FlowControl::FlitReservation(FrConfig::fr13().with_timing(wires)),
    ];
    println!("Figure 9: FR (1-cycle leading control) vs VC, 1-cycle wires, 5-flit packets");
    println!("(paper: equal base latency 15; FR6 75% vs VC8 65%; latency 19 vs 21 at 50%)");
    let mut curves = Vec::new();
    for fc in &configs {
        let mut curve = sweep_loads(fc, mesh, 5, &loads, &sim, 1);
        if matches!(fc, FlowControl::FlitReservation(_)) {
            curve.label = format!("{}/lead=1", curve.label);
        }
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let m = manifest("fig9", scale, seed, "VC8/VC16/FR6/FR13 lead=1");
    write_curves_json(&m, &curves);
}
