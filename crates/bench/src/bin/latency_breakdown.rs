//! Bottleneck attribution: where every cycle of packet latency goes.
//!
//! Runs the headline VC8 and FR6 configurations with latency-provenance
//! tracing at a low and a near-saturation offered load, and prints one
//! stacked attribution table per (config, load): mean cycles per flit
//! charged to each [`noc_provenance::Phase`], its share of the total,
//! and the per-flit p95. This is the paper's causal argument made
//! measurable — under flit reservation, routing and buffer-turnaround
//! time move off the data path (control lead replaces route compute,
//! credit stalls go to zero), which the table shows directly.
//!
//! Flags and knobs:
//!
//! * `--loads 0.10,0.55` — override the offered-load points;
//! * `--trace-out <name>` — additionally write one Chrome-trace /
//!   Perfetto file per (config, load) to
//!   `results/<name>-<config>-<load>.trace.json`;
//! * `FRFC_PROV_SAMPLE` — packet sampling divisor (default 4; 1 traces
//!   every packet).
//!
//! A `latency_breakdown.json` sidecar carries the same rows.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_chrome_trace, write_rows_json};
use noc_bench::{seed_from_env, Scale};
use noc_flow::LinkTiming;
use noc_metrics::Json;
use noc_network::FlowControl;
use noc_provenance::{chrome_trace, Phase, ProvenanceReport};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

/// Packet sampling divisor from `FRFC_PROV_SAMPLE` (default 4).
fn sample_every() -> u64 {
    std::env::var("FRFC_PROV_SAMPLE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

fn parse_args() -> (Vec<f64>, Option<String>) {
    let mut loads = vec![0.10, 0.55];
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--loads" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| usage("--loads needs a value"));
                loads = spec
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .unwrap_or_else(|_| usage("--loads wants comma-separated fractions"))
                    })
                    .collect();
            }
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--trace-out needs a name")),
                );
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    (loads, trace_out)
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}; usage: latency_breakdown [--loads 0.1,0.55] [--trace-out <name>]");
    std::process::exit(2)
}

fn print_table(label: &str, load: f64, report: &ProvenanceReport) {
    println!(
        "\n{label} @ {:.0}% offered ({} flit records, sample 1/{}{}):",
        load * 100.0,
        report.records.len(),
        report.sample_every,
        if report.open_flits > 0 {
            format!(", {} still in flight", report.open_flits)
        } else {
            String::new()
        }
    );
    println!(
        "  {:<18} {:>10} {:>8} {:>6}",
        "phase", "mean cyc", "share", "p95"
    );
    for row in report.phase_table() {
        if row.total == 0 {
            continue;
        }
        println!(
            "  {:<18} {:>10.2} {:>7.1}% {:>6}",
            row.phase.name(),
            row.mean,
            row.share * 100.0,
            row.p95
        );
    }
    println!(
        "  {:<18} {:>10.2}",
        "= end-to-end",
        report.mean_end_to_end()
    );
}

/// Mean cycles per flit charged to `phase`.
fn mean_of(report: &ProvenanceReport, phase: Phase) -> f64 {
    report
        .phase_table()
        .into_iter()
        .find(|r| r.phase == phase)
        .map(|r| r.mean)
        .unwrap_or(0.0)
}

fn main() {
    let (loads, trace_out) = parse_args();
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let sample = sample_every();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ];

    println!("Latency provenance: per-phase attribution, 8x8 mesh, 5-flit packets, fast control");
    println!("(FR moves routing into the control lead and drops credit/turnaround stalls to ~0)");

    let mut rows: Vec<(String, Vec<(String, Json)>)> = Vec::new();
    // (load, label) -> credit-stall mean, for the headline comparison.
    let mut credit_means: Vec<(f64, String, f64)> = Vec::new();
    for fc in &configs {
        let label = fc.label();
        for &load in &loads {
            let spec = LoadSpec::fraction_of_capacity(load, 5);
            let (result, report) = fc.run_traced(mesh, spec, &sim, sample);
            assert_eq!(
                report.malformed, 0,
                "{label}@{load}: provenance reconstruction is malformed"
            );
            print_table(&label, load, &report);
            if !result.completed {
                println!("  (run saturated; attribution covers delivered flits only)");
            }
            credit_means.push((load, label.clone(), mean_of(&report, Phase::CreditStall)));
            if let Some(name) = &trace_out {
                let doc = chrome_trace(&report, mesh.width());
                write_chrome_trace(&format!("{name}-{}-{load:.2}", label.to_lowercase()), &doc);
            }
            let mut cells: Vec<(String, Json)> = vec![
                ("offered".into(), Json::Num(load)),
                ("records".into(), Json::Num(report.records.len() as f64)),
                (
                    "mean_end_to_end".into(),
                    Json::Num(report.mean_end_to_end()),
                ),
            ];
            for row in report.phase_table() {
                cells.push((format!("mean_{}", row.phase.name()), Json::Num(row.mean)));
                cells.push((
                    format!("p95_{}", row.phase.name()),
                    Json::Num(row.p95 as f64),
                ));
            }
            rows.push((format!("{label}@{load:.2}"), cells));
        }
    }

    // The paper's headline claim, per load point: FR pre-reserves
    // downstream buffers on the control network, so its data flits never
    // stall on credits; the VC baseline pays that wait at the switch.
    println!();
    for &load in &loads {
        let at = |prefix: &str| {
            credit_means
                .iter()
                .find(|(l, n, _)| *l == load && n.starts_with(prefix))
                .map(|&(_, _, m)| m)
                .unwrap_or(0.0)
        };
        println!(
            "credit/turnaround stall @ {:.0}%: VC8 {:.2} cyc/flit vs FR6 {:.2} cyc/flit",
            load * 100.0,
            at("VC"),
            at("FR")
        );
    }

    let m = manifest("latency_breakdown", scale, seed, "VC8/FR6");
    write_rows_json(&m, &rows);
}
