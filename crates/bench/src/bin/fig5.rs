//! Regenerates paper Figure 5: latency versus offered traffic for
//! virtual-channel (VC8, VC16) and flit-reservation (FR6, FR13) flow
//! control with 5-flit packets under fast control.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    let t = LinkTiming::fast_control();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::vc8(), t),
        FlowControl::VirtualChannel(VcConfig::vc16(), t),
        FlowControl::FlitReservation(FrConfig::fr6()),
        FlowControl::FlitReservation(FrConfig::fr13()),
    ];
    println!("Figure 5: latency vs offered traffic, 5-flit packets, fast control");
    println!("(paper saturation: VC8 63%, VC16 80%, FR6 77%, FR13 85%; base latency VC 32, FR 27)");
    let mut curves = Vec::new();
    for fc in &configs {
        let curve = sweep_loads(fc, mesh, 5, &loads, &sim, 1);
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let m = manifest("fig5", scale, seed, "VC8/VC16/FR6/FR13");
    write_curves_json(&m, &curves);
}
