//! Regenerates paper Figure 5: latency versus offered traffic for
//! virtual-channel (VC8, VC16) and flit-reservation (FR6, FR13) flow
//! control with 5-flit packets under fast control.
//!
//! `--trace-out <path>` additionally records an FR6 run at 50% offered
//! load with latency-provenance tracing and writes a Chrome-trace /
//! Perfetto file there (sampling via `FRFC_PROV_SAMPLE`, default 4).

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_metrics::write_json_file;
use noc_network::{sweep_loads, FlowControl};
use noc_provenance::chrome_trace;
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn trace_out_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--trace-out" => Some(path.clone()),
        _ => {
            eprintln!("usage: fig5 [--trace-out <path>]");
            std::process::exit(2)
        }
    }
}

/// Traces `fc` at `offered` load and writes the Perfetto file to `path`.
fn write_trace(fc: &FlowControl, mesh: Mesh, sim: &noc_network::SimConfig, path: &str) {
    let sample = std::env::var("FRFC_PROV_SAMPLE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4);
    let offered = 0.5;
    let load = LoadSpec::fraction_of_capacity(offered, 5);
    let (_, report) = fc.run_traced(mesh, load, sim, sample);
    let doc = chrome_trace(&report, mesh.width());
    match write_json_file(std::path::Path::new(path), &doc) {
        Ok(()) => println!(
            "wrote {path}: {} @ {:.0}% load, {} flit spans (open in ui.perfetto.dev)",
            fc.label(),
            offered * 100.0,
            report.records.len()
        ),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let trace_out = trace_out_arg();
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    let t = LinkTiming::fast_control();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::vc8(), t),
        FlowControl::VirtualChannel(VcConfig::vc16(), t),
        FlowControl::FlitReservation(FrConfig::fr6()),
        FlowControl::FlitReservation(FrConfig::fr13()),
    ];
    println!("Figure 5: latency vs offered traffic, 5-flit packets, fast control");
    println!("(paper saturation: VC8 63%, VC16 80%, FR6 77%, FR13 85%; base latency VC 32, FR 27)");
    let threads = sweep_threads();
    let mut curves = Vec::new();
    for fc in &configs {
        let curve = sweep_loads(fc, mesh, 5, &loads, &sim, threads);
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let mut m = manifest("fig5", scale, seed, "VC8/VC16/FR6/FR13");
    m.threads = threads as u64;
    write_curves_json(&m, &curves);
    if let Some(path) = trace_out {
        write_trace(
            &FlowControl::FlitReservation(FrConfig::fr6()),
            mesh,
            &sim,
            &path,
        );
    }
}
