//! Extension: Section 5's plesiochronous clocking — buffers held one
//! extra accounting cycle before release. Measures the throughput price
//! of the synchronization margin.

use flit_reservation::FrConfig;
use noc_bench::{seed_from_env, Scale};
use noc_network::FlowControl;
use noc_topology::Mesh;
use noc_traffic::LoadSpec;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    println!("Extension: plesiochronous sync margin (FR6, 5-flit packets)");
    println!(
        "\n{:>8} {:>14} {:>14} {:>14}",
        "load", "margin 0", "margin 1", "margin 2"
    );
    for load in [0.3, 0.5, 0.65, 0.75] {
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let mut row = format!("{:>7.0}%", load * 100.0);
        for margin in [0u64, 1, 2] {
            let fc = FlowControl::FlitReservation(FrConfig::fr6().with_sync_margin(margin));
            let r = fc.run(mesh, spec, &sim);
            if r.completed {
                row.push_str(&format!(" {:>13.1}c", r.mean_latency()));
            } else {
                row.push_str(&format!(" {:>14}", "saturated"));
            }
        }
        println!("{row}");
    }
}
