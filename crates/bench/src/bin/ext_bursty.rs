//! Extension: bursty (on/off) traffic. Burstiness stresses buffer
//! turnaround — the resource flit-reservation flow control recycles
//! instantly — so the FR advantage should persist or grow relative to
//! smooth constant-rate sources at equal mean load.

use flit_reservation::{FrConfig, FrRouter};
use noc_bench::{seed_from_env, Scale};
use noc_engine::Rng;
use noc_flow::LinkTiming;
use noc_network::{run_simulation, Network};
use noc_topology::Mesh;
use noc_traffic::{InjectionKind, LoadSpec, TrafficGenerator, Uniform};
use noc_vc::{VcConfig, VcRouter};

fn run(kind: InjectionKind, load: f64, fr: bool, sim: &noc_network::SimConfig) -> f64 {
    let mesh = Mesh::new(8, 8);
    let root = Rng::from_seed(sim.seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::new(mesh, spec, Box::new(Uniform), kind, root.fork(1));
    if fr {
        let cfg = FrConfig::fr6();
        let mut net = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |n| {
            FrRouter::new(mesh, n, cfg, root.fork(n.raw() as u64))
        });
        run_simulation(&mut net, sim).mean_latency()
    } else {
        let mut net = Network::new(mesh, LinkTiming::fast_control(), 2, generator, |n| {
            VcRouter::new(mesh, n, VcConfig::vc8(), root.fork(n.raw() as u64))
        });
        run_simulation(&mut net, sim).mean_latency()
    }
}

fn main() {
    let sim = Scale::from_env().sim(seed_from_env());
    println!("Extension: smooth vs bursty injection at equal mean load (5-flit packets)");
    println!(
        "\n{:>8} {:>16} {:>16} {:>16} {:>16}",
        "load", "VC8 smooth", "VC8 bursty", "FR6 smooth", "FR6 bursty"
    );
    for load in [0.3, 0.45, 0.6] {
        let bursty = InjectionKind::OnOff {
            peak_rate: 0.5,
            mean_on: 16.0,
        };
        println!(
            "{:>7.0}% {:>15.1}c {:>15.1}c {:>15.1}c {:>15.1}c",
            load * 100.0,
            run(InjectionKind::ConstantRate, load, false, &sim),
            run(bursty, load, false, &sim),
            run(InjectionKind::ConstantRate, load, true, &sim),
            run(bursty, load, true, &sim),
        );
    }
}
