//! Windowed-telemetry dashboard and parallel-engine runtime profile.
//!
//! Runs FR6 below and near saturation with the windowed telemetry layer
//! armed, renders a per-window text dashboard (sparklines for offered /
//! ejected flits, p95 latency and mean buffer occupancy), detects the
//! saturation onset (the first window whose offered flits exceed its
//! ejected flits by more than 5%), and prints the engine's wall-clock
//! profile at 1, 4 and 8 worker threads — naming the top consumers and
//! asserting that named phases account for at least 95% of the measured
//! cycle wall-clock.
//!
//! Sidecars land in the results directory (`FRFC_RESULTS_DIR`, default
//! `results/`): `telemetry.metrics.json` (full registry export, windows
//! included), `telemetry.profile.json` and `telemetry.trace.json`.
//!
//! Flags:
//!
//! * `--quick` — tiny scale plus the self-validation stage CI runs:
//!   export schema well-formed, every Sum window's values summing exactly
//!   to the aggregate counter of the same name, and stripped exports
//!   byte-identical across 1/2/4 worker threads.

use flit_reservation::FrConfig;
use noc_bench::report::{results_dir, write_chrome_trace, write_metrics_json};
use noc_bench::{seed_from_env, Scale};
use noc_metrics::{
    strip_nondeterministic, write_json_file, Json, MetricsRegistry, WindowKind, SCHEMA_VERSION,
};
use noc_network::{FlowControl, TelemetryRun};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a sparkline normalized to the row maximum.
fn sparkline(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let idx = ((v / max) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[idx.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

/// Aligned per-window (offered, ejected) pairs from a registry, dense
/// over the union of both series' windows.
fn offered_vs_ejected(reg: &MetricsRegistry) -> Vec<(u64, f64, f64)> {
    let (Some(off), Some(ej)) = (
        reg.window("net.offered_flits"),
        reg.window("net.ejected_flits"),
    ) else {
        return Vec::new();
    };
    let start = off.start.min(ej.start);
    let end = (off.start + off.values.len() as u64).max(ej.start + ej.values.len() as u64);
    let at = |s: &noc_metrics::WindowSeries, w: u64| -> f64 {
        if w < s.start {
            return 0.0;
        }
        s.values.get((w - s.start) as usize).copied().unwrap_or(0.0)
    };
    (start..end).map(|w| (w, at(off, w), at(ej, w))).collect()
}

/// The first window (skipping the pipeline-fill window) whose offered
/// flits exceed its ejected flits by more than 5%, sustained into the
/// next injecting window. `None` below saturation.
fn saturation_onset(pairs: &[(u64, f64, f64)]) -> Option<u64> {
    let deficit = |o: f64, e: f64| o > 0.0 && (o - e) > 0.05 * o;
    pairs.windows(2).skip(1).find_map(|p| {
        let (w, o, e) = p[0];
        let (_, o2, e2) = p[1];
        // Sustained: the next window is either also in deficit or has
        // stopped injecting (the run saturated and moved to drain).
        (deficit(o, e) && (deficit(o2, e2) || o2 == 0.0)).then_some(w)
    })
}

fn print_dashboard(label: &str, load: f64, run: &TelemetryRun) {
    let reg = &run.registry;
    let window_cycles = reg
        .window("net.offered_flits")
        .map_or(0, |w| 1u64 << w.log2);
    println!("\n=== {label} @ {:.0}% load ===", load * 100.0);
    println!(
        "  {} windows of {window_cycles} cycles each",
        reg.window("net.offered_flits")
            .map_or(0, |w| w.values.len())
    );
    for (name, title) in [
        ("net.offered_flits", "offered flits "),
        ("net.ejected_flits", "ejected flits "),
        ("latency.p95", "latency p95   "),
        ("net.mean_occupancy", "mean occupancy"),
    ] {
        if let Some(w) = reg.window(name) {
            let max = w.values.iter().cloned().fold(0.0f64, f64::max);
            println!("  {title} {}  (max {max:.1})", sparkline(&w.values));
        }
    }
    let pairs = offered_vs_ejected(reg);
    match saturation_onset(&pairs) {
        Some(w) => println!(
            "  saturation onset: window {w} (cycle {}) — offered exceeds ejected by >5%",
            w * window_cycles
        ),
        None => println!("  saturation onset: none — accepted tracks offered in every window"),
    }
    // High-water marks from the blackbox gauges: the worst instantaneous
    // pressure the run ever saw, which time-averaged occupancy hides.
    let mut peaks: Vec<String> = Vec::new();
    for (name, label) in [
        ("net.peak_buffer_occupancy", "buffer occupancy"),
        ("total.bookings_in_flight_peak", "bookings in flight"),
        ("fault.retransmit_peak", "retransmit depth"),
    ] {
        let v = reg.counter(name);
        if v > 0 {
            peaks.push(format!("{label} {v}"));
        }
    }
    if !peaks.is_empty() {
        println!("  peaks: {}", peaks.join(", "));
    }
}

fn print_profile(run: &TelemetryRun) {
    let p = &run.profile;
    let ms = |ns: u64| ns as f64 / 1.0e6;
    println!(
        "  threads {} | {} cycles | cycle wall {:.1} ms | attribution {:.1}% | worker idle {:.1}%",
        p.threads,
        p.cycles,
        ms(p.cycle_wall_ns),
        p.attributed_fraction() * 100.0,
        p.worker_idle_fraction() * 100.0
    );
    let host_cpus = noc_metrics::host_cpu_count();
    if p.threads > host_cpus {
        println!(
            "  warning: {} worker threads requested but the host reports only {host_cpus} \
             cpu(s) — wall-clock numbers include oversubscription, not real speedup",
            p.threads
        );
    }
    let top: Vec<String> = p
        .top_consumers()
        .into_iter()
        .take(5)
        .map(|(name, ns)| format!("{name} {:.1}ms", ms(ns)))
        .collect();
    println!("  top consumers: {}", top.join(", "));
    if p.rounds > 0 {
        println!(
            "  pool: {} rounds, barrier wait {:.1} ms, lock acquires {} ({:.1} ms held up)",
            p.rounds,
            ms(p.barrier_wait_ns),
            p.lock_count.iter().sum::<u64>(),
            ms(p.lock_ns.iter().sum::<u64>())
        );
    }
    assert!(
        p.attributed_fraction() >= 0.95,
        "profiler attributes only {:.1}% of engine wall-clock at {} threads (need >= 95%)",
        p.attributed_fraction() * 100.0,
        p.threads
    );
}

/// The self-validation stage CI runs under `--quick`: schema shape,
/// window-sum == aggregate-total, and cross-thread determinism of the
/// stripped export.
fn validate(fc: &FlowControl, mesh: Mesh, load: LoadSpec, sim: &noc_network::SimConfig) {
    // One manifest shared by every export below, so the byte-compare sees
    // only registry content (threads/wall_ms would differ per run).
    let manifest = noc_metrics::RunManifest::new("telemetry", sim.seed, "quick", "FR6");
    let mut stripped: Vec<(usize, String)> = Vec::new();
    for threads in [1usize, 2, 4] {
        let run = fc.run_telemetry(mesh, load, sim, 0, 7, threads);
        let reg = &run.registry;

        // Window-sum == aggregate-total, exactly, for every Sum window
        // that names a counter.
        let mut checked = 0;
        for (name, w) in reg.windows() {
            if w.kind == WindowKind::Sum {
                let total = reg.window_total(name);
                let agg = reg.counter(name) as f64;
                assert!(
                    total == agg,
                    "{threads} threads: window {name} sums to {total} but aggregate is {agg}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 8, "expected >= 8 Sum windows, found {checked}");

        // Schema: the export parses back with the documented shape.
        let doc = reg.to_json(&manifest);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("telemetry export is valid JSON");
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let windows = parsed.get("windows").expect("export has a windows object");
        for key in ["net.offered_flits", "net.ejected_flits", "latency.p95"] {
            let w = windows
                .get(key)
                .unwrap_or_else(|| panic!("windows object is missing {key}"));
            for field in ["kind", "log2", "start", "values"] {
                assert!(w.get(field).is_some(), "window {key} is missing {field}");
            }
        }

        // Profiler still attributes the engine loop when validating.
        assert!(run.profile.attributed_fraction() >= 0.95);

        let mut clean = parsed;
        strip_nondeterministic(&mut clean);
        stripped.push((threads, clean.render()));
    }
    let (_, reference) = &stripped[0];
    for (threads, text) in &stripped[1..] {
        assert!(
            text == reference,
            "stripped telemetry export differs between 1 and {threads} threads"
        );
    }
    println!(
        "  ok: schema valid, window sums equal aggregates, exports byte-identical at 1/2/4 threads"
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale::Tiny
    } else {
        Scale::from_env()
    };
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let mesh = Mesh::new(8, 8);
    let fc = FlowControl::FlitReservation(FrConfig::fr6());
    let window_log2 = if quick { 7 } else { 9 };
    println!(
        "telemetry_report | scale {} | seed {seed} | windows of {} cycles",
        scale.name(),
        1u64 << window_log2
    );

    // Dashboard: one sub-saturation point and one past the knee.
    let mut sidecar: Option<TelemetryRun> = None;
    for load in [0.55, 0.95] {
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let run = fc.run_telemetry(mesh, spec, &sim, 0, window_log2, 1);
        print_dashboard(&fc.label(), load, &run);
        sidecar = Some(run);
    }

    // Runtime profile across thread counts.
    println!("\n=== engine profile ===");
    for threads in [1usize, 4, 8] {
        let spec = LoadSpec::fraction_of_capacity(0.55, 5);
        let run = fc.run_telemetry(mesh, spec, &sim, 0, window_log2, threads);
        print_profile(&run);
    }

    if quick {
        println!("\n=== self-validation ===");
        validate(&fc, mesh, LoadSpec::fraction_of_capacity(0.55, 5), &sim);
    }

    // Sidecars: the near-saturation dashboard run, windows included.
    if let Some(run) = sidecar {
        let mut manifest = noc_bench::report::manifest("telemetry", scale, seed, &fc.label());
        manifest.threads = 1;
        write_metrics_json(&manifest, &run.registry);
        let profile_path = results_dir().join("telemetry.profile.json");
        match write_json_file(&profile_path, &run.profile.to_json()) {
            Ok(()) => println!("[sidecar] wrote {}", profile_path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", profile_path.display()),
        }
        write_chrome_trace("telemetry", &run.profile.chrome_trace());
    }
}
