//! Regenerates the Section 4.2 buffer-occupancy probe: near saturation
//! with 21-flit packets, the FR6 buffer pool of a mid-mesh router is full
//! ~40% of the time, while the VC baseline saturates with its pool full
//! less than 5% of the time.
//!
//! Runs metered and reads the mid-mesh West-input pool statistics out of
//! the metrics registry (`router.{n}.west.occupancy_avg` /
//! `.full_fraction`), writing one `*.metrics.json` sidecar per
//! configuration plus a row-table sidecar with the printed numbers.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_metrics_json, write_rows_json};
use noc_bench::{seed_from_env, Scale};
use noc_flow::LinkTiming;
use noc_metrics::Json;
use noc_network::FlowControl;
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    // The network probes the mesh-centre router's West input; query the
    // same pool from the registry.
    let probe_router = (mesh.height() / 2) * mesh.width() + mesh.width() / 2;
    let occ_key = format!("router.{probe_router}.west.occupancy_avg");
    let full_key = format!("router.{probe_router}.west.full_fraction");
    println!("Section 4.2 probe: mid-mesh buffer pool occupancy near saturation (21-flit packets)");
    println!("(paper: FR6 pool full ~40% of the time; VC saturates with pool full <5%)");
    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12}",
        "config", "load", "full%", "mean occ%", "latency"
    );
    // Probe each configuration just below its own saturation point.
    let cases = [
        (FlowControl::FlitReservation(FrConfig::fr6()), 0.55),
        (
            FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
            0.5,
        ),
        (
            FlowControl::VirtualChannel(VcConfig::vc32(), LinkTiming::fast_control()),
            0.6,
        ),
    ];
    let mut rows = Vec::new();
    for (fc, load) in &cases {
        let spec = LoadSpec::fraction_of_capacity(*load, 21);
        let (r, registry) = fc.run_metered(mesh, spec, &sim, 64);
        // The registry gauges cover the whole run (warm-up included);
        // the probe counters cover the measurement window only. Both
        // describe the same pool.
        let full_fraction = registry.gauge(&full_key).unwrap_or(0.0);
        let mean_occupancy = registry.gauge(&occ_key).unwrap_or(0.0);
        println!(
            "{:>8} {:>9.0}% {:>11.1}% {:>11.1}% {:>11.0}c",
            fc.label(),
            load * 100.0,
            full_fraction * 100.0,
            mean_occupancy * 100.0,
            r.mean_latency()
        );
        let m = manifest(
            &format!("occupancy_{}", fc.label().to_lowercase()),
            scale,
            seed,
            &fc.label(),
        );
        write_metrics_json(&m, &registry);
        rows.push((
            fc.label(),
            vec![
                ("offered".into(), Json::Num(*load)),
                ("full_fraction".into(), Json::Num(full_fraction)),
                ("mean_occupancy".into(), Json::Num(mean_occupancy)),
                ("mean_latency".into(), Json::Num(r.mean_latency())),
                (
                    "probe_full_fraction".into(),
                    Json::Num(r.probe_full_fraction),
                ),
                (
                    "probe_mean_occupancy".into(),
                    Json::Num(r.probe_mean_occupancy),
                ),
            ],
        ));
    }
    let m = manifest("occupancy", scale, seed, "FR6/VC8/VC32");
    write_rows_json(&m, &rows);
}
