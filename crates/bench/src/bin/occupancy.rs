//! Regenerates the Section 4.2 buffer-occupancy probe: near saturation
//! with 21-flit packets, the FR6 buffer pool of a mid-mesh router is full
//! ~40% of the time, while the VC baseline saturates with its pool full
//! less than 5% of the time.

use flit_reservation::FrConfig;
use noc_bench::{seed_from_env, Scale};
use noc_flow::LinkTiming;
use noc_network::FlowControl;
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    println!("Section 4.2 probe: mid-mesh buffer pool occupancy near saturation (21-flit packets)");
    println!("(paper: FR6 pool full ~40% of the time; VC saturates with pool full <5%)");
    println!(
        "\n{:>8} {:>10} {:>12} {:>12} {:>12}",
        "config", "load", "full%", "mean occ%", "latency"
    );
    // Probe each configuration just below its own saturation point.
    let cases = [
        (FlowControl::FlitReservation(FrConfig::fr6()), 0.55),
        (
            FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
            0.5,
        ),
        (
            FlowControl::VirtualChannel(VcConfig::vc32(), LinkTiming::fast_control()),
            0.6,
        ),
    ];
    for (fc, load) in &cases {
        let spec = LoadSpec::fraction_of_capacity(*load, 21);
        let r = fc.run(mesh, spec, &sim);
        println!(
            "{:>8} {:>9.0}% {:>11.1}% {:>11.1}% {:>11.0}c",
            fc.label(),
            load * 100.0,
            r.probe_full_fraction * 100.0,
            r.probe_mean_occupancy * 100.0,
            r.mean_latency()
        );
    }
}
