//! Stepping-engine throughput baseline: simulated cycles per second.
//!
//! Measures the raw speed of the phase-separated stepping engine —
//! *simulated network cycles per wall-clock second* — for the VC
//! baseline and the FR router at low, moderate and near-saturation
//! offered loads, in three engine modes:
//!
//! * `step-all` — idle-skipping off: every router steps every cycle.
//!   This is the reference engine (the behaviour of the pre-refactor
//!   interleaved loop) and the denominator for speedups;
//! * `idle-skip` — the default: quiescent routers are skipped via the
//!   wake-list. At low load most of the mesh is asleep most cycles, so
//!   this is where the win concentrates;
//! * `sharded(N)` — idle-skip plus the shard-local phases (deliver,
//!   offers, steps, and the intra-shard half of apply) running
//!   concurrently on N persistent pool workers with cross-shard flits
//!   handed over at the phase barrier.
//!
//! All modes produce bit-identical traces (enforced by
//! `tests/engine_equivalence.rs` and `tests/parallel_equivalence.rs`);
//! this harness only times them.
//!
//! After the 8×8 matrix comes the **scaling sweep**: a 16×16 mesh at
//! near-saturation load stepped with 1, 2, 4 and 8 threads
//! (`scale(N)` rows). This is the headline multi-core measurement —
//! cycles/sec versus thread count where per-router work actually
//! dominates the barrier. Speedup tracks *physical cores*: on a
//! single-core host the sweep documents the hand-off overhead floor
//! instead (expect ≈1× or slightly below), which is still exactly what
//! the regression gate wants pinned.
//!
//! Results print as a table and are written to `BENCH_engine.json` in
//! the working directory so successive commits can be compared
//! (`bench_compare` gates every row, the scaling sweep included). Pass
//! `--quick` (or set `FRFC_SCALE=tiny`) for a seconds-long smoke run —
//! CI uses this to keep the harness from bit-rotting.

use flit_reservation::{FrConfig, FrRouter};
use noc_bench::seed_from_env;
use noc_engine::Rng;
use noc_flow::{LinkTiming, Router};
use noc_network::Network;
use noc_topology::Mesh;
use noc_traffic::{LoadSpec, TrafficGenerator};
use noc_vc::{VcConfig, VcRouter};
use std::time::Instant;

/// One measured configuration.
struct Row {
    router: &'static str,
    load: f64,
    mode: String,
    threads: usize,
    cycles: u64,
    cycles_per_sec: f64,
}

/// Engine mode under test.
#[derive(Clone, Copy)]
enum Mode {
    StepAll,
    IdleSkip,
    Sharded(usize),
    /// Scaling-sweep row: sharded stepping on the 16×16 mesh.
    Scale(usize),
}

impl Mode {
    fn label(self) -> String {
        match self {
            Mode::StepAll => "step-all".into(),
            Mode::IdleSkip => "idle-skip".into(),
            Mode::Sharded(n) => format!("sharded({n})"),
            Mode::Scale(n) => format!("scale({n})"),
        }
    }

    fn threads(self) -> usize {
        match self {
            Mode::Sharded(n) | Mode::Scale(n) => n,
            _ => 1,
        }
    }
}

fn vc_network(mesh: Mesh, load: f64, seed: u64) -> Network<VcRouter> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
        VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64))
    })
}

fn fr_network(mesh: Mesh, load: f64, seed: u64) -> Network<FrRouter> {
    let root = Rng::from_seed(seed);
    let spec = LoadSpec::fraction_of_capacity(load, 5);
    let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
    let cfg = FrConfig::fr6();
    Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |node| {
        FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64))
    })
}

/// Warm the network into steady state, then time `measure` cycles.
fn time_run<R: Router + Send>(mut net: Network<R>, mode: Mode, warmup: u64, measure: u64) -> f64 {
    match mode {
        Mode::StepAll => net.set_idle_skip(false),
        Mode::IdleSkip | Mode::Sharded(_) | Mode::Scale(_) => net.set_idle_skip(true),
    }
    match mode {
        Mode::Sharded(n) | Mode::Scale(n) => net.run_cycles_sharded(warmup, n),
        _ => net.run_cycles(warmup),
    }
    let start = Instant::now();
    match mode {
        Mode::Sharded(n) | Mode::Scale(n) => net.run_cycles_sharded(measure, n),
        _ => net.run_cycles(measure),
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    // Keep the network alive through the timer so drop cost is excluded.
    drop(net);
    measure as f64 / secs
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("FRFC_SCALE").as_deref() == Ok("tiny");
    let seed = seed_from_env();
    let mesh = Mesh::new(8, 8);
    let (warmup, measure) = if quick { (500, 2_000) } else { (5_000, 50_000) };
    let shard_threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);

    let loads = [("low", 0.02), ("mid", 0.40), ("sat", 0.80)];
    let modes = [Mode::StepAll, Mode::IdleSkip, Mode::Sharded(shard_threads)];

    println!(
        "engine_throughput: {}x{} mesh, {} warm-up + {} measured cycles{}",
        mesh.width(),
        mesh.height(),
        warmup,
        measure,
        if quick { " (quick)" } else { "" }
    );
    println!(
        "{:<6} {:>5} {:<12} {:>8} {:>14}",
        "router", "load", "mode", "threads", "cycles/sec"
    );

    let mut rows: Vec<Row> = Vec::new();
    for (_, load) in loads {
        for mode in modes {
            for router in ["vc8", "fr6"] {
                let cps = match router {
                    "vc8" => time_run(vc_network(mesh, load, seed), mode, warmup, measure),
                    _ => time_run(fr_network(mesh, load, seed), mode, warmup, measure),
                };
                println!(
                    "{:<6} {:>5.2} {:<12} {:>8} {:>14.0}",
                    router,
                    load,
                    mode.label(),
                    mode.threads(),
                    cps
                );
                rows.push(Row {
                    router,
                    load,
                    mode: mode.label(),
                    threads: mode.threads(),
                    cycles: measure,
                    cycles_per_sec: cps,
                });
            }
        }
    }

    // Scaling sweep: the 16×16 mesh near saturation, stepped with 1, 2,
    // 4 and 8 shard threads. At this scale per-router stepping dominates
    // the barrier, so cycles/sec tracks physical cores; a 1-core host
    // instead pins the hand-off overhead floor.
    let scale_mesh = Mesh::new(16, 16);
    let scale_load = 0.80;
    let (scale_warmup, scale_measure) = if quick { (200, 1_000) } else { (2_000, 20_000) };
    println!(
        "\nscaling sweep: {}x{} mesh @ load {:.2}, {} warm-up + {} measured cycles",
        scale_mesh.width(),
        scale_mesh.height(),
        scale_load,
        scale_warmup,
        scale_measure
    );
    for router in ["vc8", "fr6"] {
        for n in [1usize, 2, 4, 8] {
            let mode = Mode::Scale(n);
            let cps = match router {
                "vc8" => time_run(
                    vc_network(scale_mesh, scale_load, seed),
                    mode,
                    scale_warmup,
                    scale_measure,
                ),
                _ => time_run(
                    fr_network(scale_mesh, scale_load, seed),
                    mode,
                    scale_warmup,
                    scale_measure,
                ),
            };
            println!(
                "{:<6} {:>5.2} {:<12} {:>8} {:>14.0}",
                router,
                scale_load,
                mode.label(),
                n,
                cps
            );
            rows.push(Row {
                router,
                load: scale_load,
                mode: mode.label(),
                threads: n,
                cycles: scale_measure,
                cycles_per_sec: cps,
            });
        }
    }

    // Idle-skip speedup over the reference engine, per router, low load.
    println!();
    for router in ["vc8", "fr6"] {
        let find = |mode: &str| {
            rows.iter()
                .find(|r| r.router == router && r.load == loads[0].1 && r.mode == mode)
                .map(|r| r.cycles_per_sec)
                .unwrap_or(0.0)
        };
        let base = find("step-all");
        let skip = find("idle-skip");
        if base > 0.0 {
            println!(
                "{router} low-load idle-skip speedup: {:.2}x ({:.0} -> {:.0} cycles/sec)",
                skip / base,
                base,
                skip
            );
        }
    }

    // Multi-core speedup at scale: 8 shard threads over the 1-thread
    // planned engine on the 16×16 near-saturation run.
    for router in ["vc8", "fr6"] {
        let find = |n: usize| {
            rows.iter()
                .find(|r| r.router == router && r.mode == format!("scale({n})"))
                .map(|r| r.cycles_per_sec)
                .unwrap_or(0.0)
        };
        let one = find(1);
        let eight = find(8);
        if one > 0.0 {
            println!(
                "{router} 16x16@{scale_load:.2} 8-thread scaling: {:.2}x ({:.0} -> {:.0} cycles/sec)",
                eight / one,
                one,
                eight
            );
        }
    }

    let mut json = String::from("{\n  \"bench\": \"engine_throughput\",\n");
    json.push_str(&format!(
        "  \"mesh\": \"{}x{}\",\n  \"seed\": {},\n  \"quick\": {},\n  \"shard_threads\": {},\n  \"rows\": [\n",
        mesh.width(),
        mesh.height(),
        seed,
        quick,
        shard_threads
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"config\": \"{}\", \"router\": \"{}\", \"load\": {}, \"mode\": \"{}\", \"threads\": {}, \"cycles\": {}, \"cycles_per_sec\": {:.1}}}{}\n",
            json_escape(&format!("{}-{:.2}-{}", r.router, r.load, r.mode)),
            r.router,
            r.load,
            json_escape(&r.mode),
            r.threads,
            r.cycles,
            r.cycles_per_sec,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json ({} rows)", rows.len());
}
