//! Section 5 ablation: per-flit versus all-or-nothing scheduling with
//! wide control flits (d = 4). Per-flit scheduling lets scheduled data
//! flits move on and free their buffers, so it sustains higher load.

use flit_reservation::{FrConfig, SchedulingPolicy};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    let loads = default_loads();
    // d = 4 control flits need room for 4-flit reservations, so the
    // comparison runs on the 13-buffer pool (a 5-flit packet needs 2
    // control flits: head leading 4 data flits plus a tail leading 1 —
    // the paper's Section 5 example of excess control capacity).
    println!("Ablation: per-flit vs all-or-nothing scheduling (FR13, d=4, 5-flit packets)");
    println!("(paper: per-flit attains higher throughput — scheduled flits free their buffers)");
    let mut curves = Vec::new();
    for (name, policy) in [
        ("per-flit", SchedulingPolicy::PerFlit),
        ("per-flit-greedy", SchedulingPolicy::PerFlitGreedy),
        ("all-or-nothing", SchedulingPolicy::AllOrNothing),
    ] {
        let cfg = FrConfig::fr13()
            .with_flits_per_control(4)
            .with_policy(policy);
        let fc = FlowControl::FlitReservation(cfg);
        let mut curve = sweep_loads(&fc, mesh, 5, &loads, &sim, sweep_threads());
        curve.label = format!("FR13/d=4/{name}");
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
}
