//! Section 5 ablation: buffer binding at reservation time versus just
//! before arrival (Figure 10). Binding early forces buffer-to-buffer
//! transfers; this harness counts them across a loaded network.

use flit_reservation::{BufferAllocPolicy, FrConfig, FrRouter};
use noc_bench::{seed_from_env, Scale};
use noc_engine::Rng;
use noc_network::{run_simulation, Network};
use noc_topology::Mesh;
use noc_traffic::{LoadSpec, TrafficGenerator};

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    println!("Ablation: buffer binding at reservation time (Figure 10)");
    println!("(the paper's deferred binding never transfers; early binding must shuffle flits)");
    println!(
        "\n{:>8} {:>12} {:>14} {:>14} {:>10}",
        "load", "residencies", "transfers", "per residency", "latency"
    );
    for load in [0.3, 0.5, 0.7] {
        let cfg = FrConfig {
            buffer_alloc: BufferAllocPolicy::AtReservation,
            ..FrConfig::fr6()
        };
        let root = Rng::from_seed(sim.seed);
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(0x7261_6666_6963));
        let mut network = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |node| {
            FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64))
        });
        let r = run_simulation(&mut network, &sim);
        let mut transfers = 0u64;
        let mut booked = 0u64;
        for router in network.routers() {
            let (t, b) = router.buffer_transfers().expect("ablation policy active");
            transfers += t;
            booked += b;
        }
        println!(
            "{:>7.0}% {:>12} {:>14} {:>14.4} {:>9.0}c",
            load * 100.0,
            booked,
            transfers,
            transfers as f64 / booked.max(1) as f64,
            r.mean_latency()
        );
    }
}
