//! Regenerates paper Table 3: base latency, latency at 50% capacity and
//! saturation throughput for FR6/FR13/VC8/VC16/VC32 under fast control
//! (5- and 21-flit packets) and 1-cycle leading control (5-flit packets).

use flit_reservation::FrConfig;
use noc_bench::{seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;
use noc_vc::VcConfig;

fn regime(
    title: &str,
    configs: &[FlowControl],
    mesh: Mesh,
    length: u32,
    sim: &noc_network::SimConfig,
) {
    println!("\n== {title} ==");
    println!(
        "{:>8} {:>14} {:>18} {:>12}",
        "config", "base latency", "latency @ 50%", "throughput"
    );
    // Dense sweep around the interesting region plus a low-load point for
    // base latency and a 50% point for the mid-load row.
    let loads = [0.05, 0.3, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9];
    for fc in configs {
        let curve = sweep_loads(fc, mesh, length, &loads, sim, sweep_threads());
        let base = curve.base_latency();
        let mid = curve
            .latency_at(0.5)
            .map(|l| format!("{l:.0}"))
            .unwrap_or_else(|| "-".into());
        let sat = curve.saturation_throughput(base * 3.0);
        println!(
            "{:>8} {:>13.0}c {:>17}c {:>11.0}%",
            curve.label,
            base,
            mid,
            sat * 100.0
        );
    }
}

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    let fast = LinkTiming::fast_control();
    let lead = LinkTiming::leading_control(1);

    println!("Table 3: summary of experimental results");
    println!("(paper, fast control 5-flit:  FR6 27/33/77  FR13 27/33/85  VC8 32/39/63  VC16 32/38/80  VC32 32/38/85)");
    println!("(paper, fast control 21-flit: FR6 46/81/60  FR13 46/75/75  VC8 55/113/55 VC16 55/95/65  VC32 55/97/65)");
    println!("(paper, leading control:      FR6 15/19/75  FR13 15/19/83  VC8 15/21/65  VC16 15/21/80  VC32 15/21/85)");

    let fast_configs = [
        FlowControl::FlitReservation(FrConfig::fr6()),
        FlowControl::FlitReservation(FrConfig::fr13()),
        FlowControl::VirtualChannel(VcConfig::vc8(), fast),
        FlowControl::VirtualChannel(VcConfig::vc16(), fast),
        FlowControl::VirtualChannel(VcConfig::vc32(), fast),
    ];
    regime("Fast control, 5-flit packets", &fast_configs, mesh, 5, &sim);
    regime(
        "Fast control, 21-flit packets",
        &fast_configs,
        mesh,
        21,
        &sim,
    );

    let lead_configs = [
        FlowControl::FlitReservation(FrConfig::fr6().with_timing(lead)),
        FlowControl::FlitReservation(FrConfig::fr13().with_timing(lead)),
        FlowControl::VirtualChannel(VcConfig::vc8(), lead.vc_baseline_of()),
        FlowControl::VirtualChannel(VcConfig::vc16(), lead.vc_baseline_of()),
        FlowControl::VirtualChannel(VcConfig::vc32(), lead.vc_baseline_of()),
    ];
    regime(
        "Leading control (1 cycle), 5-flit packets",
        &lead_configs,
        mesh,
        5,
        &sim,
    );
}
