//! Regenerates paper Table 1: storage overhead of virtual-channel and
//! flit-reservation flow control.

use noc_overhead::{FrStorage, Params, VcStorage};

fn main() {
    let p = Params::paper();
    let vc = [
        ("VC8", VcStorage::compute(&p, 2, 8)),
        ("VC16", VcStorage::compute(&p, 4, 16)),
        ("VC32", VcStorage::compute(&p, 8, 32)),
    ];
    let fr = [
        ("FR6", FrStorage::compute(&p, 2, 6, 6)),
        ("FR13", FrStorage::compute(&p, 4, 13, 12)),
    ];

    println!("Table 1: storage overhead (bits per node; f=256, t=2, s=32, d=1)\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "VC8", "VC16", "VC32", "FR6", "FR13"
    );
    let row = |name: &str, vals: [String; 5]| {
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8}",
            name, vals[0], vals[1], vals[2], vals[3], vals[4]
        );
    };
    row(
        "Data buffers",
        [
            vc[0].1.data_buffer_bits.to_string(),
            vc[1].1.data_buffer_bits.to_string(),
            vc[2].1.data_buffer_bits.to_string(),
            fr[0].1.data_buffer_bits.to_string(),
            fr[1].1.data_buffer_bits.to_string(),
        ],
    );
    row(
        "Control buffers",
        [
            "-".into(),
            "-".into(),
            "-".into(),
            fr[0].1.control_buffer_bits.to_string(),
            fr[1].1.control_buffer_bits.to_string(),
        ],
    );
    row(
        "Queue pointers",
        [
            vc[0].1.queue_pointer_bits.to_string(),
            vc[1].1.queue_pointer_bits.to_string(),
            vc[2].1.queue_pointer_bits.to_string(),
            fr[0].1.queue_pointer_bits.to_string(),
            fr[1].1.queue_pointer_bits.to_string(),
        ],
    );
    row(
        "Output reservation table",
        [
            vc[0].1.output_table_bits.to_string(),
            vc[1].1.output_table_bits.to_string(),
            vc[2].1.output_table_bits.to_string(),
            fr[0].1.output_table_bits.to_string(),
            fr[1].1.output_table_bits.to_string(),
        ],
    );
    row(
        "Input reservation table",
        [
            "-".into(),
            "-".into(),
            "-".into(),
            fr[0].1.input_table_bits.to_string(),
            fr[1].1.input_table_bits.to_string(),
        ],
    );
    row(
        "Bits per node",
        [
            vc[0].1.total_bits().to_string(),
            vc[1].1.total_bits().to_string(),
            vc[2].1.total_bits().to_string(),
            fr[0].1.total_bits().to_string(),
            fr[1].1.total_bits().to_string(),
        ],
    );
    row(
        "Flits per input channel",
        [
            format!("{:.2}", vc[0].1.flits_per_input(&p)),
            format!("{:.2}", vc[1].1.flits_per_input(&p)),
            format!("{:.2}", vc[2].1.flits_per_input(&p)),
            format!("{:.2}", fr[0].1.flits_per_input(&p)),
            format!("{:.2}", fr[1].1.flits_per_input(&p)),
        ],
    );
    println!(
        "\nnote: the paper prints 1,980 bits for FR13's input reservation table;\n\
         its own formula gives 2,620 (so 20,600 total, 16.09 flits) — see EXPERIMENTS.md."
    );
}
