//! Regenerates paper Figure 7: FR6 latency-throughput with the scheduling
//! horizon swept from 16 to 128 cycles — throughput should be relatively
//! insensitive beyond 32 cycles.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;

fn main() {
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    println!("Figure 7: FR6 with scheduling horizon 16/32/64/128, 5-flit packets");
    println!("(paper: within 10% of optimum at 16; little gain beyond 32)");
    let threads = sweep_threads();
    let mut curves = Vec::new();
    for horizon in [16u64, 32, 64, 128] {
        let fc = FlowControl::FlitReservation(FrConfig::fr6().with_horizon(horizon));
        let mut curve = sweep_loads(&fc, mesh, 5, &loads, &sim, threads);
        curve.label = format!("FR6/s={horizon}");
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let mut m = manifest("fig7", scale, seed, "FR6 horizon sweep");
    m.threads = threads as u64;
    write_curves_json(&m, &curves);
}
