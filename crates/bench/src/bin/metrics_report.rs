//! Renders metrics-registry JSON exports into human-readable reports:
//! a per-router occupancy heatmap for each file plus a
//! utilization-vs-load table across files.
//!
//! Usage: `metrics_report [FILE...]` — with no arguments it scans the
//! results directory (`FRFC_RESULTS_DIR`, default `results/`) for
//! `*.metrics.json` sidecars.

use noc_bench::report::results_dir;
use noc_metrics::Json;
use std::path::PathBuf;

/// One parsed export with the fields the report renders.
struct Export {
    path: PathBuf,
    doc: Json,
}

impl Export {
    fn counter(&self, key: &str) -> Option<u64> {
        self.doc.get("counters")?.get(key)?.as_u64()
    }

    fn gauge(&self, key: &str) -> Option<f64> {
        self.doc.get("gauges")?.get(key)?.as_f64()
    }

    fn manifest_str(&self, key: &str) -> &str {
        self.doc
            .get("manifest")
            .and_then(|m| m.get(key))
            .and_then(Json::as_str)
            .unwrap_or("?")
    }

    /// Mean buffer occupancy of router `i`, averaged over its input
    /// ports (0..=1), from the per-port `occupancy_avg` gauges.
    fn router_occupancy(&self, i: usize) -> Option<f64> {
        let gauges = self.doc.get("gauges")?;
        let prefix = format!("router.{i}.");
        let mut sum = 0.0;
        let mut n = 0usize;
        for (key, value) in gauges.entries()? {
            if let Some(rest) = key.strip_prefix(&prefix) {
                if rest.ends_with(".occupancy_avg") {
                    sum += value.as_f64()?;
                    n += 1;
                }
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

fn load(path: PathBuf) -> Option<Export> {
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("skipping {}: {e}", path.display());
            return None;
        }
    };
    match Json::parse(&text) {
        Ok(doc) => Some(Export { path, doc }),
        Err(e) => {
            eprintln!("skipping {}: invalid JSON: {e}", path.display());
            None
        }
    }
}

fn scan_results_dir() -> Vec<PathBuf> {
    let dir = results_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.ends_with(".metrics.json"))
                })
                .collect()
        })
        .unwrap_or_default();
    paths.sort();
    paths
}

fn print_heatmap(export: &Export) {
    let (Some(width), Some(height)) = (
        export.counter("net.mesh_width"),
        export.counter("net.mesh_height"),
    ) else {
        println!("  (no mesh dimensions in export — heatmap skipped)");
        return;
    };
    println!("  per-router mean buffer occupancy (%):");
    for y in 0..height {
        print!("   ");
        for x in 0..width {
            let i = (y * width + x) as usize;
            match export.router_occupancy(i) {
                Some(occ) => print!(" {:>3.0}", occ * 100.0),
                None => print!("   ."),
            }
        }
        println!();
    }
}

fn print_file_report(export: &Export) {
    println!("\n=== {} ===", export.path.display());
    println!(
        "  {} | config {} | scale {} | seed {} | git {} ",
        export.manifest_str("experiment"),
        export.manifest_str("config"),
        export.manifest_str("scale"),
        export
            .doc
            .get("manifest")
            .and_then(|m| m.get("seed"))
            .and_then(Json::as_u64)
            .unwrap_or(0),
        export.manifest_str("git_rev"),
    );
    if let (Some(cycles), Some(routers)) =
        (export.counter("net.cycles"), export.counter("net.routers"))
    {
        let idle_skip = export.gauge("net.idle_skip_fraction").unwrap_or(0.0);
        println!(
            "  {cycles} cycles, {routers} routers, idle-skip {:.1}%",
            idle_skip * 100.0
        );
    }
    print_heatmap(export);
    let hits = export.counter("total.reservation_hits").unwrap_or(0);
    let misses = export.counter("total.reservation_misses").unwrap_or(0);
    let zt = export
        .counter("total.zero_turnaround_departures")
        .unwrap_or(0);
    if hits + misses + zt > 0 {
        println!("  reservations: {hits} hits, {misses} misses, {zt} zero-turnaround departures");
    }
}

fn print_load_table(exports: &[Export]) {
    println!(
        "\n{:<28} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "file", "offered", "accepted", "data-util", "ctrl-util", "res-hits", "zero-turn"
    );
    for e in exports {
        let name = e
            .path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .trim_end_matches(".metrics.json");
        let pct =
            |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{:.1}%", v * 100.0));
        let cnt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |v| v.to_string());
        println!(
            "{name:<28} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10}",
            pct(e.gauge("run.offered_fraction")),
            pct(e.gauge("run.accepted_fraction")),
            pct(e.gauge("net.mean_data_link_utilization")),
            pct(e.gauge("net.mean_control_link_utilization")),
            cnt(e.counter("total.reservation_hits")),
            cnt(e.counter("total.zero_turnaround_departures")),
        );
    }
}

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let paths = if args.is_empty() {
        scan_results_dir()
    } else {
        args
    };
    if paths.is_empty() {
        println!(
            "no *.metrics.json exports found in {} — run a bin with metrics \
             enabled first (e.g. `smoke --metrics`)",
            results_dir().display()
        );
        return;
    }
    let exports: Vec<Export> = paths.into_iter().filter_map(load).collect();
    for export in &exports {
        print_file_report(export);
    }
    if !exports.is_empty() {
        print_load_table(&exports);
    }
}
