//! Regenerates paper Figure 6: latency versus offered traffic with
//! 21-flit packets (fast control) — VC16, VC32, FR6, FR13.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_curves_json};
use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let sim = scale.sim(seed);
    let loads = default_loads();
    let t = LinkTiming::fast_control();
    let configs = [
        FlowControl::VirtualChannel(VcConfig::vc16(), t),
        FlowControl::VirtualChannel(VcConfig::vc32(), t),
        FlowControl::FlitReservation(FrConfig::fr6()),
        FlowControl::FlitReservation(FrConfig::fr13()),
    ];
    println!("Figure 6: latency vs offered traffic, 21-flit packets, fast control");
    println!(
        "(paper saturation: VC16 65%, VC32 65%, FR6 60%, FR13 75%; base latency VC 55, FR 46)"
    );
    let threads = sweep_threads();
    let mut curves = Vec::new();
    for fc in &configs {
        let curve = sweep_loads(fc, mesh, 21, &loads, &sim, threads);
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
    let mut m = manifest("fig6", scale, seed, "VC16/VC32/FR6/FR13");
    m.threads = threads as u64;
    write_curves_json(&m, &curves);
}
