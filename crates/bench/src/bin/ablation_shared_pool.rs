//! Section 5 ablation: virtual-channel flow control with a shared buffer
//! pool [TamFra92] versus private per-VC queues. The paper "saw no
//! improvement in network throughput" from the shared pool — the win of
//! flit-reservation flow control comes from advance scheduling, not from
//! pooling.

use noc_bench::{default_loads, print_curve, print_summary, seed_from_env, sweep_threads, Scale};
use noc_flow::LinkTiming;
use noc_network::{sweep_loads, FlowControl};
use noc_topology::Mesh;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    let loads = default_loads();
    let t = LinkTiming::fast_control();
    println!("Ablation: VC8 private queues vs shared buffer pool [TamFra92], 5-flit packets");
    println!("(paper: no throughput improvement from the shared pool)");
    let mut curves = Vec::new();
    for (name, cfg) in [
        ("VC8/private", VcConfig::vc8()),
        ("VC8/shared-pool", VcConfig::vc8().with_shared_pool()),
    ] {
        let fc = FlowControl::VirtualChannel(cfg, t);
        let mut curve = sweep_loads(&fc, mesh, 5, &loads, &sim, sweep_threads());
        curve.label = name.to_string();
        print_curve(&curve);
        curves.push(curve);
    }
    print_summary(&curves);
}
