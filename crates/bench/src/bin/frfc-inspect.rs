//! Post-mortem inspection of blackbox crash sidecars.
//!
//! A crash sidecar (written by `frfc-sim`'s blackbox mode, by
//! `run_blackbox` on a watchdog/panic/drain-cap trigger, or by
//! `capture_at_cycle` as a checkpoint) is one JSON document holding the
//! flight-recorder ring, the complete network state dump with its
//! digest, and the `ReplaySpec` that rebuilds the run. This bin reads
//! those documents back:
//!
//! * `show <sidecar>` — pretty-prints the trigger, manifest, the ring's
//!   recent events, the delivery tracker's stuck packets, and — for
//!   flit-reservation routers — the per-output-port reservation-table
//!   timelines as ASCII slot occupancy (`X` reserved, `.` free), the
//!   paper's Figure 4 rendered from the dump.
//! * `diff <a> <b>` — structural diff of two sidecars' state dumps
//!   (full documents when either lacks a `state` section).
//! * `replay <sidecar> [--threads N]` — rebuilds the run from the
//!   sidecar's replay spec, re-runs it to the captured cycle and
//!   verifies the live state digest matches the dump bit for bit.
//! * `--self-check` — constructs a dead-link livelock, proves the
//!   progress watchdog trips, round-trips the sidecar through disk and
//!   verifies replay digests at 1/4/8 threads. CI runs this stage.

use noc_faults::{DeadLink, FaultPlan};
use noc_metrics::{json_diff, write_json_file, Json, JsonDiff};
use noc_network::{replay_to_cycle, run_blackbox, ReplaySpec, Trigger};
use noc_topology::{Mesh, Port};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "\
frfc-inspect — post-mortem inspection of blackbox crash sidecars

USAGE:
    frfc-inspect show <sidecar.json>
    frfc-inspect diff <a.json> <b.json>
    frfc-inspect replay <sidecar.json> [--threads N]
    frfc-inspect --self-check

Sidecars come from `frfc-sim --watchdog/--flight-ring/--dump-state-out`
or from any harness using noc_network::run_blackbox.";

/// How many of the ring's newest events `show` prints.
const RING_TAIL: usize = 12;
/// How many stuck packets `show` lists from the tracker.
const STUCK_TAIL: usize = 8;
/// Cap on printed diff entries before summarizing the remainder.
const DIFF_CAP: usize = 40;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    let outcome = match strs.as_slice() {
        ["show", path] => load(path).map(|doc| {
            show(&doc);
            true
        }),
        ["diff", a, b] => match (load(a), load(b)) {
            (Ok(da), Ok(db)) => Ok(diff(&da, &db, a, b)),
            (Err(e), _) | (_, Err(e)) => Err(e),
        },
        ["replay", path, rest @ ..] => parse_threads(rest)
            .and_then(|threads| load(path).map(|doc| (doc, threads)))
            .and_then(|(doc, threads)| replay(&doc, threads)),
        ["--self-check"] => self_check().map(|()| true),
        ["--help"] | ["-h"] | [] => {
            println!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unrecognised arguments {other:?}\n\n{USAGE}")),
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("frfc-inspect: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parses the optional `--threads N` tail of `replay`.
fn parse_threads(rest: &[&str]) -> Result<usize, String> {
    match rest {
        [] => Ok(1),
        ["--threads", n] => n
            .parse::<usize>()
            .ok()
            .filter(|&t| t >= 1)
            .ok_or_else(|| format!("--threads needs a positive integer, got `{n}`")),
        other => Err(format!("unrecognised replay arguments {other:?}")),
    }
}

/// Reads and parses a sidecar document.
fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

/// Field access helpers: sidecars are schema-versioned but hand-edited
/// or truncated files should degrade to `?` rather than panic.
fn num(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key).and_then(Json::as_u64)
}

fn text<'a>(doc: &'a Json, key: &str) -> &'a str {
    doc.get(key).and_then(Json::as_str).unwrap_or("?")
}

// ---------------------------------------------------------------- show

fn show(doc: &Json) {
    println!(
        "sidecar  : schema v{}",
        num(doc, "schema_version").unwrap_or(0)
    );
    println!("trigger  : {}", text(doc, "trigger"));
    println!("detail   : {}", text(doc, "detail"));
    println!(
        "cycle    : {}  ({} packets in flight, {} flits delivered)",
        num(doc, "cycle").unwrap_or(0),
        num(doc, "in_flight").unwrap_or(0),
        num(doc, "delivered_flits").unwrap_or(0)
    );
    if let Some(m) = doc.get("manifest") {
        println!(
            "manifest : {} | seed {} | scale {} | config {} | {} threads on {} cpus | rev {}",
            text(m, "experiment"),
            num(m, "seed").unwrap_or(0),
            text(m, "scale"),
            text(m, "config"),
            num(m, "threads").unwrap_or(0),
            num(m, "host_cpus").unwrap_or(0),
            text(m, "git_rev"),
        );
    }
    if let Some(r) = doc.get("replay") {
        let watchdog = match num(r, "watchdog") {
            Some(w) => format!("{w}"),
            None => "off".into(),
        };
        println!(
            "replay   : {} {}x{} @ load {:.2} | inject {} | drain cap {} | ring 2^{} | watchdog {} | faults {}",
            text(r, "config"),
            num(r, "mesh_width").unwrap_or(0),
            num(r, "mesh_height").unwrap_or(0),
            r.get("load").and_then(Json::as_f64).unwrap_or(0.0),
            num(r, "inject_cycles").unwrap_or(0),
            num(r, "drain_cap").unwrap_or(0),
            num(r, "ring_log2").unwrap_or(0),
            watchdog,
            match r.get("fault") {
                None | Some(Json::Null) => "none".to_string(),
                Some(f) => format!(
                    "armed ({} dead links)",
                    f.get("dead_links").and_then(Json::as_array).map_or(0, <[Json]>::len)
                ),
            }
        );
    }
    println!("digest   : {}", text(doc, "state_digest"));
    show_ring(doc);
    let Some(state) = doc.get("state") else {
        println!("\n(no state section)");
        return;
    };
    show_tracker(state);
    show_routers(state);
}

/// The flight recorder's tail: the newest `RING_TAIL` events.
fn show_ring(doc: &Json) {
    let Some(ring) = doc.get("ring") else { return };
    let events = ring.get("events").and_then(Json::as_array).unwrap_or(&[]);
    println!(
        "\nflight recorder: {} events held (capacity {}, {} older events dropped)",
        events.len(),
        num(ring, "capacity").unwrap_or(0),
        num(ring, "dropped").unwrap_or(0)
    );
    let skip = events.len().saturating_sub(RING_TAIL);
    if skip > 0 {
        println!("  ... {skip} earlier events ...");
    }
    for e in &events[skip..] {
        println!("  {}", e.as_str().unwrap_or("?"));
    }
}

/// Delivery-tracker summary plus the oldest stuck packets — the first
/// thing to read on a watchdog trip.
fn show_tracker(state: &Json) {
    let Some(t) = state.get("tracker") else {
        return;
    };
    println!(
        "\ntracker: {} packets delivered ({} flits), {} in flight",
        num(t, "delivered_packets").unwrap_or(0),
        num(t, "delivered_flits").unwrap_or(0),
        t.get("in_flight")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len)
    );
    let inflight = t.get("in_flight").and_then(Json::as_array).unwrap_or(&[]);
    let mut by_age: Vec<&Json> = inflight.iter().collect();
    by_age.sort_by_key(|p| num(p, "created_at").unwrap_or(0));
    for p in by_age.iter().take(STUCK_TAIL) {
        println!(
            "  packet {:>6} -> node {:<3} created at cycle {:<8} {} of {} flits seen",
            num(p, "packet").unwrap_or(0),
            num(p, "dest").unwrap_or(0),
            num(p, "created_at").unwrap_or(0),
            num(p, "seen_count").unwrap_or(0),
            num(p, "length").unwrap_or(0)
        );
    }
    if inflight.len() > STUCK_TAIL {
        println!("  ... and {} more", inflight.len() - STUCK_TAIL);
    }
}

/// Per-router pipeline summaries. Flit-reservation routers additionally
/// get their output reservation tables rendered as ASCII timelines.
fn show_routers(state: &Json) {
    let width = state
        .get("mesh")
        .and_then(|m| num(m, "width"))
        .unwrap_or(1)
        .max(1);
    let routers = state.get("routers").and_then(Json::as_array).unwrap_or(&[]);
    if routers.is_empty() {
        return;
    }
    let family = text(&routers[0], "family");
    println!(
        "\nrouters: {} ({} family){}",
        routers.len(),
        family,
        if family == "fr" {
            "  —  output reservation timelines, oldest slot first, X=reserved .=free"
        } else {
            ""
        }
    );
    for r in routers {
        let node = num(r, "node").unwrap_or(0);
        let (x, y) = (node % width, node / width);
        match text(r, "family") {
            "fr" => show_fr_router(r, node, x, y),
            _ => println!("  router {node:>3} ({x},{y})"),
        }
    }
}

/// One flit-reservation router: reservation timelines per output port
/// plus the stage counters that matter post-mortem.
fn show_fr_router(r: &Json, node: u64, x: u64, y: u64) {
    let res = r.get("reservation");
    let sched = res.and_then(|s| num(s, "scheduled_flits")).unwrap_or(0);
    let misses = res.and_then(|s| num(s, "reservation_misses")).unwrap_or(0);
    let parked = r
        .get("data")
        .and_then(|d| num(d, "parked_arrivals"))
        .unwrap_or(0);
    println!(
        "  router {node:>3} ({x},{y})  scheduled {sched} flits, {misses} reservation misses, {parked} parked arrivals"
    );
    let Some(tables) = res.and_then(|s| s.get("tables")).and_then(Json::as_array) else {
        return;
    };
    for entry in tables {
        let Some(table) = entry.get("table") else {
            continue;
        };
        let busy = text(table, "busy");
        // An all-free table says nothing; keep the dump readable.
        if !busy.contains('X') {
            continue;
        }
        println!(
            "    {:<5} base {:>8} |{}|  horizon {}",
            text(entry, "port"),
            num(table, "base").unwrap_or(0),
            busy,
            num(table, "horizon").unwrap_or(0)
        );
    }
}

// ---------------------------------------------------------------- diff

/// Structural diff of two sidecars. Compares the `state` sections when
/// both documents have one (the usual dump-vs-dump case), whole
/// documents otherwise. Returns true when identical.
fn diff(a: &Json, b: &Json, name_a: &str, name_b: &str) -> bool {
    let (da, db, scope) = match (a.get("state"), b.get("state")) {
        (Some(sa), Some(sb)) => (sa, sb, "state sections"),
        _ => (a, b, "documents"),
    };
    let diffs = json_diff(da, db);
    if diffs.is_empty() {
        println!("identical: {scope} of {name_a} and {name_b} match");
        return true;
    }
    println!(
        "{} differences between the {scope} of {name_a} and {name_b}:",
        diffs.len()
    );
    print_diffs(&diffs);
    false
}

fn print_diffs(diffs: &[JsonDiff]) {
    for d in diffs.iter().take(DIFF_CAP) {
        println!("  {}: {}", d.path, d.detail);
    }
    if diffs.len() > DIFF_CAP {
        println!("  ... and {} more", diffs.len() - DIFF_CAP);
    }
}

// -------------------------------------------------------------- replay

/// Replays a sidecar to its captured cycle and verifies the live state
/// digest against the dump. Returns true on a bit-for-bit match.
fn replay(doc: &Json, threads: usize) -> Result<bool, String> {
    let report = replay_to_cycle(doc, threads)?;
    println!(
        "replay   : {} cycles on {} thread(s)",
        report.cycle, threads
    );
    println!("expected : {}", report.expected_digest);
    println!("live     : {}", report.live_digest);
    if report.matches() {
        println!("result   : MATCH — live state equals the dump bit for bit");
        Ok(true)
    } else {
        println!(
            "result   : MISMATCH — {} structural difference(s)",
            report.diffs.len()
        );
        print_diffs(&report.diffs);
        Ok(false)
    }
}

// ---------------------------------------------------------- self-check

/// The spec the self-check runs: FR6 on a 4×4 mesh where every
/// eastbound link out of column 0 dies at cycle 0. Packets injected in
/// column 0 for destinations east of it can never deliver, so once the
/// deliverable traffic drains the network makes no progress with
/// packets still in flight — the constructed livelock the progress
/// watchdog must catch.
fn livelock_spec() -> ReplaySpec {
    let mesh = Mesh::new(4, 4);
    let mut spec = ReplaySpec::fr6_small(0xDEAD_0001);
    spec.watchdog = Some(500);
    spec.fault = Some(FaultPlan {
        dead_links: (0..4)
            .map(|y| DeadLink {
                node: mesh.node_at(0, y),
                port: Port::East,
                at_cycle: 0,
            })
            .collect(),
        ..FaultPlan::quiet(0xFA_11)
    });
    spec
}

/// End-to-end validation of the blackbox layer, run by CI: the watchdog
/// fires on a dead-link livelock, the sidecar round-trips through disk,
/// diffs clean against itself, and replays to an identical state digest
/// at 1, 4 and 8 threads.
fn self_check() -> Result<(), String> {
    println!("frfc-inspect self-check");
    let spec = livelock_spec();
    println!(
        "  [1/4] running the dead-link livelock (watchdog {} cycles) ...",
        spec.watchdog.unwrap_or(0)
    );
    let run = run_blackbox(&spec, 1)?;
    if run.trigger != Trigger::Watchdog {
        return Err(format!(
            "expected the watchdog to trip, got {:?} after {} cycles ({})",
            run.trigger, run.cycles, run.detail
        ));
    }
    let sidecar = run
        .sidecar
        .ok_or("watchdog tripped but no sidecar was captured")?;
    println!("        tripped at cycle {}: {}", run.cycles, run.detail);

    println!("  [2/4] round-tripping the sidecar through disk ...");
    let dir = std::env::var("FRFC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let dir = Path::new(&dir).join("state");
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join("self-check.json");
    write_json_file(&path, &sidecar).map_err(|e| format!("cannot write sidecar: {e}"))?;
    let reloaded = load(path.to_str().unwrap_or_default())?;
    let round_trip = json_diff(&sidecar, &reloaded);
    if !round_trip.is_empty() {
        print_diffs(&round_trip);
        return Err(format!(
            "sidecar changed across the disk round trip ({} diffs)",
            round_trip.len()
        ));
    }
    println!("        wrote and reloaded {} — identical", path.display());

    println!(
        "  [3/4] replaying to cycle {} at 1/4/8 threads ...",
        run.cycles
    );
    for threads in [1usize, 4, 8] {
        let report = replay_to_cycle(&reloaded, threads)?;
        if !report.matches() {
            print_diffs(&report.diffs);
            return Err(format!(
                "replay at {threads} threads diverged: expected {} got {}",
                report.expected_digest, report.live_digest
            ));
        }
        println!(
            "        {} thread(s): digest {} — match",
            threads, report.live_digest
        );
    }

    println!("  [4/4] rendering the dump ...\n");
    show(&reloaded);
    println!("\nself-check: PASS");
    Ok(())
}
