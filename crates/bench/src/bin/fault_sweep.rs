//! Fault-tolerance degradation curves: delivered throughput, mean and
//! tail latency versus fault rate for VC8 and FR6.
//!
//! Sweeps a per-traversal transient fault rate applied equally to data
//! corruption (CRC-caught, NACK + retransmit) and control-flit drops
//! (link-level repair), then adds one scenario per configuration with a
//! permanent link failure on top of a 1e-3 transient rate. Every row
//! records the exact [`FaultPlan`] summary, so any point is reproducible
//! from the sidecar's `RunManifest` alone.
//!
//! `--quick` (or `FRFC_SCALE=tiny`) shrinks the sample for CI.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_rows_json};
use noc_bench::{seed_from_env, Scale};
use noc_faults::FaultPlan;
use noc_flow::LinkTiming;
use noc_metrics::Json;
use noc_network::{FaultSummary, FlowControl, RunResult, SimConfig};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

/// Runs one faulty point and returns the sidecar row for it.
fn point(
    fc: &FlowControl,
    name: String,
    mesh: Mesh,
    load: LoadSpec,
    sim: &SimConfig,
    plan: &FaultPlan,
) -> (String, Vec<(String, Json)>) {
    let (r, fs): (RunResult, FaultSummary) = fc.run_faulty(mesh, load, sim, plan);
    let c = fs.counters;
    let lat = if r.completed {
        format!("{:.1}", r.mean_latency())
    } else {
        "-".into()
    };
    let p99 = r
        .p99_latency
        .map_or_else(|| "-".to_string(), |v| v.to_string());
    println!(
        "{:<18} {:>9.0e} {:>10} {:>7} {:>9.1}% {:>9} {:>9} {:>6} {:>10}",
        name,
        plan.data_corrupt_rate,
        lat,
        p99,
        r.accepted_fraction * 100.0,
        c.retransmits,
        c.control_dropped,
        c.links_masked,
        if r.completed { "ok" } else { "saturated" }
    );
    let mut cells = vec![
        ("fault_rate".into(), Json::Num(plan.data_corrupt_rate)),
        ("plan".into(), Json::str(plan.summary())),
        ("completed".into(), Json::Bool(r.completed)),
        ("delivered".into(), Json::Num(r.delivered as f64)),
        ("accepted".into(), Json::Num(r.accepted_fraction)),
        ("data_corrupted".into(), Json::Num(c.data_corrupted as f64)),
        (
            "control_dropped".into(),
            Json::Num(c.control_dropped as f64),
        ),
        ("nacks".into(), Json::Num(c.nacks as f64)),
        ("retransmits".into(), Json::Num(c.retransmits as f64)),
        (
            "timeout_retransmits".into(),
            Json::Num(c.timeout_retransmits as f64),
        ),
        ("links_masked".into(), Json::Num(c.links_masked as f64)),
        (
            "retransmit_peak".into(),
            Json::Num(fs.retransmit_peak as f64),
        ),
    ];
    if r.completed {
        cells.push(("mean_latency".into(), Json::Num(r.mean_latency())));
    }
    if let Some(v) = r.p99_latency {
        cells.push(("p99_latency".into(), Json::Num(v as f64)));
    }
    (name, cells)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(unknown) = args.iter().find(|a| *a != "--quick") {
        eprintln!("unknown flag {unknown}; usage: fault_sweep [--quick]");
        std::process::exit(2);
    }

    let mesh = Mesh::new(8, 8);
    let scale = if quick {
        Scale::Tiny
    } else {
        Scale::from_env()
    };
    let seed = seed_from_env();
    let mut sim = scale.sim(seed);
    if quick {
        sim.sample_packets = sim.sample_packets.min(500);
    }
    let offered = 0.45;
    let load = LoadSpec::fraction_of_capacity(offered, 5);
    let rates: &[f64] = if quick {
        &[0.0, 1e-3, 3e-3]
    } else {
        &[0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2]
    };

    println!(
        "Fault sweep: VC8 vs FR6 degradation, {:.0}% offered load, 5-flit packets",
        offered * 100.0
    );
    println!("(transient rate hits data corruption and control drops equally; dead-link rows add one permanent failure)");
    println!(
        "{:<18} {:>9} {:>10} {:>7} {:>10} {:>9} {:>9} {:>6} {:>10}",
        "config", "rate", "latency", "p99", "accepted", "retrans", "drops", "dead", "status"
    );

    let mut rows = Vec::new();
    for fc in [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ] {
        let label = fc.label();
        for &rate in rates {
            let mut plan = FaultPlan::quiet(seed);
            plan.data_corrupt_rate = rate;
            plan.control_drop_rate = rate;
            rows.push(point(
                &fc,
                format!("{label}/r={rate:.0e}"),
                mesh,
                load,
                &sim,
                &plan,
            ));
        }
        // One permanent link failure on top of a 1e-3 transient rate:
        // the graceful-degradation scenario of the acceptance criteria.
        let mut plan = FaultPlan::randomized(seed, mesh);
        plan.data_corrupt_rate = 1e-3;
        plan.control_drop_rate = 1e-3;
        rows.push(point(
            &fc,
            format!("{label}/dead-link"),
            mesh,
            load,
            &sim,
            &plan,
        ));
    }

    let m = manifest("fault_sweep", scale, seed, "VC8/FR6 fault-rate sweep");
    write_rows_json(&m, &rows);
}
