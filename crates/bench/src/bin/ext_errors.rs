//! Extension: Section 5's error recovery. Control flits are corrupted at
//! a configurable rate and retransmitted (link-level, order-preserving);
//! this harness shows latency degrading gracefully while delivery stays
//! exact.

use flit_reservation::{FrConfig, FrRouter};
use noc_bench::{seed_from_env, Scale};
use noc_engine::Rng;
use noc_network::{run_simulation, Network};
use noc_topology::Mesh;
use noc_traffic::{LoadSpec, TrafficGenerator};

fn main() {
    let mesh = Mesh::new(8, 8);
    let sim = Scale::from_env().sim(seed_from_env());
    println!("Extension: control-wire error rate vs latency (FR6, 5-flit, 50% load)");
    println!(
        "\n{:>12} {:>12} {:>12} {:>14} {:>10}",
        "error rate", "latency", "ci95", "retries", "status"
    );
    for rate in [0.0, 0.001, 0.01, 0.05, 0.1] {
        let cfg = FrConfig::fr6();
        let root = Rng::from_seed(sim.seed);
        let load = LoadSpec::fraction_of_capacity(0.5, 5);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(1));
        let mut net = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |n| {
            FrRouter::new(mesh, n, cfg, root.fork(n.raw() as u64))
        });
        if rate > 0.0 {
            net.set_control_error_rate(rate, 0xEC0DE);
        }
        let r = run_simulation(&mut net, &sim);
        println!(
            "{:>11.1}% {:>11.1}c {:>12.2} {:>14} {:>10}",
            rate * 100.0,
            r.mean_latency(),
            r.latency.ci95_half_width(),
            net.control_retries(),
            if r.completed { "ok" } else { "saturated" }
        );
    }
}
