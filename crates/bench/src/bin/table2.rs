//! Regenerates paper Table 2: bandwidth overhead per data flit.

use noc_overhead::{Bandwidth, Params};

fn main() {
    let p = Params::paper();
    println!("Table 2: bandwidth overhead per data flit (bits; n=6, s=32, d=1)\n");
    println!(
        "{:<16} {:>6} {:>22} {:>26}",
        "", "L", "Virtual-Channel", "Flit-Reservation"
    );
    for (v, l) in [(2u64, 5u64), (4, 5), (2, 21), (4, 21)] {
        let vc = Bandwidth::virtual_channel(&p, v, l);
        let fr = Bandwidth::flit_reservation(&p, v, l);
        println!(
            "v={v}            {l:>6} {:>12.2} ({:>4.1}%) {:>16.2} ({:>4.1}%)",
            vc.total(),
            vc.fraction_of_flit(&p) * 100.0,
            fr.total(),
            fr.fraction_of_flit(&p) * 100.0,
        );
    }
    let vc = Bandwidth::virtual_channel(&p, 2, 5);
    let fr = Bandwidth::flit_reservation(&p, 2, 5);
    println!(
        "\nbreakdown at v=2, L=5:  VC: dest {:.2} + vcid {:.2}\n\
         \x20                       FR: dest {:.2} + vcid {:.2} + arrival times {:.2}",
        vc.destination, vc.vcid, fr.destination, fr.vcid, fr.arrival_times
    );
    println!(
        "\nextra FR cost = log2(s) = {:.0} bits = {:.1}% of a 256-bit flit (paper: 2%)",
        fr.arrival_times,
        fr.arrival_times / 256.0 * 100.0
    );
}
