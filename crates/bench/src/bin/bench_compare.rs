//! Engine-throughput regression gate: compares a fresh
//! `BENCH_engine.json` (written by the `engine_throughput` bin) against
//! a committed baseline and exits nonzero when any configuration
//! regressed beyond tolerance.
//!
//! Rows are matched by their `config` key (`vc8-0.40-idle-skip`, ...)
//! and compared on `cycles_per_sec`. A row regresses when
//! `fresh < baseline * (1 - tolerance)`; a baseline row missing from
//! the fresh run also fails. Extra fresh rows are reported but pass —
//! they have no baseline to regress against.
//!
//! Usage:
//!
//! ```text
//! bench_compare [--baseline bench_baselines/BENCH_engine.json]
//!               [--fresh BENCH_engine.json] [--tolerance 0.15]
//! ```
//!
//! The default 15% tolerance suits same-machine comparisons (full-scale
//! runs, pinned host). CI compares a `--quick` run on a shared runner
//! against the committed full-scale baseline and passes a much looser
//! tolerance — there the gate is a tripwire for order-of-magnitude
//! regressions (an accidentally-enabled trace path, a lost fast path),
//! not a precision benchmark.

use noc_metrics::Json;

struct Args {
    baseline: String,
    fresh: String,
    tolerance: f64,
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "{msg}; usage: bench_compare [--baseline <path>] [--fresh <path>] [--tolerance <frac>]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut parsed = Args {
        baseline: "bench_baselines/BENCH_engine.json".into(),
        fresh: "BENCH_engine.json".into(),
        tolerance: 0.15,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| usage(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--baseline" => parsed.baseline = value("--baseline"),
            "--fresh" => parsed.fresh = value("--fresh"),
            "--tolerance" => {
                parsed.tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| usage("--tolerance wants a fraction like 0.15"));
                if !(0.0..1.0).contains(&parsed.tolerance) {
                    usage("--tolerance must be in [0, 1)");
                }
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    parsed
}

/// Loads a `BENCH_engine.json` document as `(config, cycles_per_sec)`
/// rows plus its `quick` flag.
fn load_rows(path: &str) -> (Vec<(String, f64)>, bool) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        eprintln!("(run `cargo run -p noc-bench --release --bin engine_throughput` first)");
        std::process::exit(2)
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path} is not valid JSON: {e}");
        std::process::exit(2)
    });
    let quick = doc.get("quick").and_then(Json::as_bool).unwrap_or(false);
    let rows = doc
        .get("rows")
        .and_then(Json::as_array)
        .unwrap_or_else(|| {
            eprintln!("{path} has no rows array");
            std::process::exit(2)
        })
        .iter()
        .map(|row| {
            let config = row
                .get("config")
                .and_then(Json::as_str)
                .unwrap_or_else(|| {
                    eprintln!("{path}: row without a config key");
                    std::process::exit(2)
                })
                .to_string();
            let cps = row
                .get("cycles_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| {
                    eprintln!("{path}: row {config} without cycles_per_sec");
                    std::process::exit(2)
                });
            (config, cps)
        })
        .collect();
    (rows, quick)
}

fn main() {
    let args = parse_args();
    let (baseline, base_quick) = load_rows(&args.baseline);
    let (fresh, fresh_quick) = load_rows(&args.fresh);

    println!(
        "bench_compare: {} (baseline{}) vs {} (fresh{}), tolerance {:.0}%",
        args.baseline,
        if base_quick { ", quick" } else { "" },
        args.fresh,
        if fresh_quick { ", quick" } else { "" },
        args.tolerance * 100.0
    );
    if base_quick != fresh_quick {
        println!("note: comparing runs of different scales; rates are only roughly comparable");
    }
    println!(
        "{:<24} {:>14} {:>14} {:>8}  status",
        "config", "baseline c/s", "fresh c/s", "ratio"
    );

    let mut failures = 0usize;
    for (config, base_cps) in &baseline {
        let Some((_, fresh_cps)) = fresh.iter().find(|(c, _)| c == config) else {
            println!(
                "{config:<24} {base_cps:>14.0} {:>14} {:>8}  MISSING",
                "-", "-"
            );
            failures += 1;
            continue;
        };
        let ratio = fresh_cps / base_cps.max(1e-9);
        let regressed = *fresh_cps < base_cps * (1.0 - args.tolerance);
        if regressed {
            failures += 1;
        }
        println!(
            "{config:<24} {base_cps:>14.0} {fresh_cps:>14.0} {ratio:>8.2}  {}",
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    for (config, cps) in &fresh {
        if !baseline.iter().any(|(c, _)| c == config) {
            println!("{config:<24} {:>14} {cps:>14.0} {:>8}  new", "-", "-");
        }
    }

    if failures > 0 {
        eprintln!(
            "\n{failures} configuration(s) regressed more than {:.0}% (or went missing)",
            args.tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("\nall {} configurations within tolerance", baseline.len());
}
