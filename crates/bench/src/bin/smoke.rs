//! Quick health check: base latencies and knee positions for the four
//! headline configurations (internal validation harness).
//!
//! Flags:
//!
//! * `--quick` — a much smaller sample so CI finishes in seconds;
//! * `--metrics` — additionally run metered VC8/FR6 points, write
//!   `*.metrics.json` sidecars, then parse them back and validate the
//!   export contract (schema version, manifest keys, nonzero FR
//!   reservation hits, sane link utilization, same-seed determinism).
//!   Any violation panics, failing the process loudly.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_metrics_json};
use noc_bench::{seed_from_env, Scale};
use noc_flow::LinkTiming;
use noc_metrics::{strip_nondeterministic, Json, RunManifest, SCHEMA_VERSION};
use noc_network::{FlowControl, RunResult, SimConfig};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn health_check(sim: &SimConfig, loads: &[f64], lead_loads: &[f64]) {
    let mesh = Mesh::new(8, 8);
    let fast = LinkTiming::fast_control();
    let lead = LinkTiming::leading_control(1);
    println!("fast control, 5-flit (paper base: VC 32, FR 27):");
    for (name, fc) in [
        ("VC8", FlowControl::VirtualChannel(VcConfig::vc8(), fast)),
        ("VC16", FlowControl::VirtualChannel(VcConfig::vc16(), fast)),
        ("FR6", FlowControl::FlitReservation(FrConfig::fr6())),
        ("FR13", FlowControl::FlitReservation(FrConfig::fr13())),
    ] {
        print!("{name}:");
        for &frac in loads {
            let r = fc.run(mesh, LoadSpec::fraction_of_capacity(frac, 5), sim);
            if r.completed {
                print!("  {:.0}%:{:.0}", frac * 100.0, r.mean_latency());
            } else {
                print!("  {:.0}%:SAT", frac * 100.0);
            }
        }
        println!();
    }
    println!("leading control lead=1, 5-flit (paper base: both 15; 50%: FR 19 VC 21):");
    for (name, fc) in [
        (
            "VC8",
            FlowControl::VirtualChannel(VcConfig::vc8(), lead.vc_baseline_of()),
        ),
        (
            "FR6",
            FlowControl::FlitReservation(FrConfig::fr6().with_timing(lead)),
        ),
    ] {
        print!("{name}:");
        for &frac in lead_loads {
            let r = fc.run(mesh, LoadSpec::fraction_of_capacity(frac, 5), sim);
            if r.completed {
                print!("  {:.0}%:{:.0}", frac * 100.0, r.mean_latency());
            } else {
                print!("  {:.0}%:SAT", frac * 100.0);
            }
        }
        println!();
    }
}

/// Asserts two `RunResult`s from the same seed are identical — the
/// metered run must not perturb the simulation in any way.
fn assert_zero_perturbation(plain: &RunResult, metered: &RunResult, label: &str) {
    assert_eq!(
        plain.delivered, metered.delivered,
        "{label}: metered run delivered a different packet count"
    );
    assert_eq!(
        plain.end_cycle, metered.end_cycle,
        "{label}: metered run ended on a different cycle"
    );
    assert_eq!(
        plain.mean_latency().to_bits(),
        metered.mean_latency().to_bits(),
        "{label}: metered run changed the measured latency"
    );
    assert_eq!(
        plain.accepted_fraction.to_bits(),
        metered.accepted_fraction.to_bits(),
        "{label}: metered run changed the accepted throughput"
    );
}

/// Parses a written sidecar back and checks the export contract.
fn validate_export(path: &std::path::Path, config: &str, offered: f64) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read back {}: {e}", path.display()));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION),
        "{}: wrong or missing schema_version",
        path.display()
    );
    let m = doc.get("manifest").expect("export has a manifest");
    for key in [
        "experiment",
        "seed",
        "scale",
        "config",
        "git_rev",
        "toolchain",
        "wall_ms",
    ] {
        assert!(
            m.get(key).is_some(),
            "{}: manifest missing key {key}",
            path.display()
        );
    }
    assert_eq!(m.get("config").and_then(Json::as_str), Some(config));
    let counters = doc.get("counters").expect("export has counters");
    let gauges = doc.get("gauges").expect("export has gauges");
    assert!(
        counters
            .get("net.cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{}: no cycles recorded",
        path.display()
    );
    // Data links must have carried flits, and mean utilization must be a
    // sane fraction consistent with a loaded network: nonzero, below 1,
    // and not wildly above the offered load.
    let data_util = gauges
        .get("net.mean_data_link_utilization")
        .and_then(Json::as_f64)
        .expect("data-link utilization gauge");
    assert!(
        data_util > 0.0 && data_util < 1.0,
        "{}: implausible data-link utilization {data_util}",
        path.display()
    );
    assert!(
        data_util < offered * 2.0 + 0.05,
        "{}: data-link utilization {data_util} inconsistent with offered load {offered}",
        path.display()
    );
    if config.starts_with("FR") {
        let hits = counters
            .get("total.reservation_hits")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(
            hits > 0,
            "{}: FR run recorded no reservation-table hits",
            path.display()
        );
        assert!(
            counters
                .get("total.control_flits_sent")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0,
            "{}: FR run sent no control flits",
            path.display()
        );
    }
    let run_offered = gauges
        .get("run.offered_fraction")
        .and_then(Json::as_f64)
        .expect("run.offered_fraction gauge");
    assert!(
        (run_offered - offered).abs() < 1e-9,
        "{}: run.offered_fraction {run_offered} != {offered}",
        path.display()
    );
    doc
}

fn metrics_check(scale: Scale, seed: u64, sim: &SimConfig) {
    let mesh = Mesh::new(8, 8);
    let offered = 0.5;
    let load = LoadSpec::fraction_of_capacity(offered, 5);
    println!("\nmetrics validation (offered {:.0}%):", offered * 100.0);
    for fc in [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ] {
        let label = fc.label();
        // Zero perturbation: plain and metered runs must agree exactly.
        let plain = fc.run(mesh, load, sim);
        let (metered, registry) = fc.run_metered(mesh, load, sim, 64);
        assert_zero_perturbation(&plain, &metered, &label);

        // Export, parse back, validate the contract.
        let m = manifest(
            &format!("smoke_{}", label.to_lowercase()),
            scale,
            seed,
            &label,
        );
        let path = write_metrics_json(&m, &registry);
        let doc = validate_export(&path, &label, offered);

        // Same-seed determinism: a second metered run must export
        // byte-identical JSON once wall-clock data is stripped.
        let (_, registry2) = fc.run_metered(mesh, load, sim, 64);
        let m2 = RunManifest::new(m.experiment.clone(), seed, scale.name(), label.clone());
        let mut doc2 = registry2.to_json(&m2);
        let mut doc1 = doc;
        strip_nondeterministic(&mut doc1);
        strip_nondeterministic(&mut doc2);
        assert_eq!(
            doc1.render(),
            doc2.render(),
            "{label}: same-seed metered runs exported different metrics"
        );
        println!(
            "  {label}: zero-perturbation ok, schema ok, determinism ok ({})",
            path.display()
        );
    }
    println!("metrics validation passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    if let Some(unknown) = args.iter().find(|a| *a != "--quick" && *a != "--metrics") {
        eprintln!("unknown flag {unknown}; usage: smoke [--quick] [--metrics]");
        std::process::exit(2);
    }

    let seed = seed_from_env();
    let scale = if quick {
        Scale::Tiny
    } else {
        Scale::from_env()
    };
    let mut sim = SimConfig::quick(7);
    if quick {
        sim = Scale::Tiny.sim(7);
        sim.sample_packets = 400;
    } else {
        sim.sample_packets = 1500;
    }

    if quick {
        health_check(&sim, &[0.05, 0.5, 0.7], &[0.05, 0.5]);
    } else {
        health_check(
            &sim,
            &[0.05, 0.5, 0.63, 0.70, 0.77, 0.85],
            &[0.05, 0.5, 0.65, 0.75],
        );
    }

    if metrics {
        let mut msim = scale.sim(seed);
        if quick {
            msim.sample_packets = msim.sample_packets.min(600);
        }
        metrics_check(scale, seed, &msim);
    }
}
