//! Quick health check: base latencies and knee positions for the four
//! headline configurations (internal validation harness).

use flit_reservation::FrConfig;
use noc_flow::LinkTiming;
use noc_network::{FlowControl, SimConfig};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn main() {
    let mesh = Mesh::new(8, 8);
    let mut sim = SimConfig::quick(7);
    sim.sample_packets = 1500;
    let fast = LinkTiming::fast_control();
    let lead = LinkTiming::leading_control(1);
    println!("fast control, 5-flit (paper base: VC 32, FR 27):");
    for (name, fc) in [
        ("VC8", FlowControl::VirtualChannel(VcConfig::vc8(), fast)),
        ("VC16", FlowControl::VirtualChannel(VcConfig::vc16(), fast)),
        ("FR6", FlowControl::FlitReservation(FrConfig::fr6())),
        ("FR13", FlowControl::FlitReservation(FrConfig::fr13())),
    ] {
        print!("{name}:");
        for frac in [0.05, 0.5, 0.63, 0.70, 0.77, 0.85] {
            let r = fc.run(mesh, LoadSpec::fraction_of_capacity(frac, 5), &sim);
            if r.completed {
                print!("  {:.0}%:{:.0}", frac * 100.0, r.mean_latency());
            } else {
                print!("  {:.0}%:SAT", frac * 100.0);
            }
        }
        println!();
    }
    println!("leading control lead=1, 5-flit (paper base: both 15; 50%: FR 19 VC 21):");
    for (name, fc) in [
        (
            "VC8",
            FlowControl::VirtualChannel(VcConfig::vc8(), lead.vc_baseline_of()),
        ),
        (
            "FR6",
            FlowControl::FlitReservation(FrConfig::fr6().with_timing(lead)),
        ),
    ] {
        print!("{name}:");
        for frac in [0.05, 0.5, 0.65, 0.75] {
            let r = fc.run(mesh, LoadSpec::fraction_of_capacity(frac, 5), &sim);
            if r.completed {
                print!("  {:.0}%:{:.0}", frac * 100.0, r.mean_latency());
            } else {
                print!("  {:.0}%:SAT", frac * 100.0);
            }
        }
        println!();
    }
}
