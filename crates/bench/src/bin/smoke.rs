//! Quick health check: base latencies and knee positions for the four
//! headline configurations (internal validation harness).
//!
//! Flags:
//!
//! * `--quick` — a much smaller sample so CI finishes in seconds;
//! * `--metrics` — additionally run metered VC8/FR6 points, write
//!   `*.metrics.json` sidecars, then parse them back and validate the
//!   export contract (schema version, manifest keys, nonzero FR
//!   reservation hits, sane link utilization, same-seed determinism).
//!   Any violation panics, failing the process loudly. The same flag
//!   also validates the latency-provenance layer: traced VC8/FR6 runs
//!   must not perturb the simulation, every reconstructed flit record
//!   must decompose exactly to its measured latency, the Chrome-trace
//!   export must satisfy the trace-event contract (valid JSON, `ph`,
//!   `ts`/`dur` on complete events, phase tiles nested inside their hop
//!   spans), and same-seed exports must be byte-identical.
//! * `--faults` — chaos stage: run VC8/FR6 under a randomized fault plan
//!   (data corruption, control-flit drops, a dead link) and assert the
//!   reliability layer delivers the full sample, that an inactive plan is
//!   bit-identical to no plan at all, and that fault schedules replay
//!   deterministically.

use flit_reservation::FrConfig;
use noc_bench::report::{manifest, write_chrome_trace, write_metrics_json};
use noc_bench::{seed_from_env, Scale};
use noc_faults::FaultPlan;
use noc_flow::LinkTiming;
use noc_metrics::{strip_nondeterministic, Json, RunManifest, SCHEMA_VERSION};
use noc_network::{FaultSummary, FlowControl, RunResult, SimConfig};
use noc_topology::Mesh;
use noc_traffic::LoadSpec;
use noc_vc::VcConfig;

fn health_check(sim: &SimConfig, loads: &[f64], lead_loads: &[f64]) {
    let mesh = Mesh::new(8, 8);
    let fast = LinkTiming::fast_control();
    let lead = LinkTiming::leading_control(1);
    println!("fast control, 5-flit (paper base: VC 32, FR 27):");
    for (name, fc) in [
        ("VC8", FlowControl::VirtualChannel(VcConfig::vc8(), fast)),
        ("VC16", FlowControl::VirtualChannel(VcConfig::vc16(), fast)),
        ("FR6", FlowControl::FlitReservation(FrConfig::fr6())),
        ("FR13", FlowControl::FlitReservation(FrConfig::fr13())),
    ] {
        print!("{name}:");
        for &frac in loads {
            let r = fc.run(mesh, LoadSpec::fraction_of_capacity(frac, 5), sim);
            if r.completed {
                print!("  {:.0}%:{:.0}", frac * 100.0, r.mean_latency());
            } else {
                print!("  {:.0}%:SAT", frac * 100.0);
            }
        }
        println!();
    }
    println!("leading control lead=1, 5-flit (paper base: both 15; 50%: FR 19 VC 21):");
    for (name, fc) in [
        (
            "VC8",
            FlowControl::VirtualChannel(VcConfig::vc8(), lead.vc_baseline_of()),
        ),
        (
            "FR6",
            FlowControl::FlitReservation(FrConfig::fr6().with_timing(lead)),
        ),
    ] {
        print!("{name}:");
        for &frac in lead_loads {
            let r = fc.run(mesh, LoadSpec::fraction_of_capacity(frac, 5), sim);
            if r.completed {
                print!("  {:.0}%:{:.0}", frac * 100.0, r.mean_latency());
            } else {
                print!("  {:.0}%:SAT", frac * 100.0);
            }
        }
        println!();
    }
}

/// Asserts two `RunResult`s from the same seed are identical — the
/// metered run must not perturb the simulation in any way.
fn assert_zero_perturbation(plain: &RunResult, metered: &RunResult, label: &str) {
    assert_eq!(
        plain.delivered, metered.delivered,
        "{label}: metered run delivered a different packet count"
    );
    assert_eq!(
        plain.end_cycle, metered.end_cycle,
        "{label}: metered run ended on a different cycle"
    );
    assert_eq!(
        plain.mean_latency().to_bits(),
        metered.mean_latency().to_bits(),
        "{label}: metered run changed the measured latency"
    );
    assert_eq!(
        plain.accepted_fraction.to_bits(),
        metered.accepted_fraction.to_bits(),
        "{label}: metered run changed the accepted throughput"
    );
}

/// Parses a written sidecar back and checks the export contract.
fn validate_export(path: &std::path::Path, config: &str, offered: f64) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read back {}: {e}", path.display()));
    let doc =
        Json::parse(&text).unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(SCHEMA_VERSION),
        "{}: wrong or missing schema_version",
        path.display()
    );
    let m = doc.get("manifest").expect("export has a manifest");
    for key in [
        "experiment",
        "seed",
        "scale",
        "config",
        "git_rev",
        "toolchain",
        "threads",
        "host_cpus",
        "wall_ms",
    ] {
        assert!(
            m.get(key).is_some(),
            "{}: manifest missing key {key}",
            path.display()
        );
    }
    assert_eq!(m.get("config").and_then(Json::as_str), Some(config));
    let counters = doc.get("counters").expect("export has counters");
    let gauges = doc.get("gauges").expect("export has gauges");
    assert!(
        counters
            .get("net.cycles")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "{}: no cycles recorded",
        path.display()
    );
    // Data links must have carried flits, and mean utilization must be a
    // sane fraction consistent with a loaded network: nonzero, below 1,
    // and not wildly above the offered load.
    let data_util = gauges
        .get("net.mean_data_link_utilization")
        .and_then(Json::as_f64)
        .expect("data-link utilization gauge");
    assert!(
        data_util > 0.0 && data_util < 1.0,
        "{}: implausible data-link utilization {data_util}",
        path.display()
    );
    assert!(
        data_util < offered * 2.0 + 0.05,
        "{}: data-link utilization {data_util} inconsistent with offered load {offered}",
        path.display()
    );
    if config.starts_with("FR") {
        let hits = counters
            .get("total.reservation_hits")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(
            hits > 0,
            "{}: FR run recorded no reservation-table hits",
            path.display()
        );
        assert!(
            counters
                .get("total.control_flits_sent")
                .and_then(Json::as_u64)
                .unwrap_or(0)
                > 0,
            "{}: FR run sent no control flits",
            path.display()
        );
    }
    let run_offered = gauges
        .get("run.offered_fraction")
        .and_then(Json::as_f64)
        .expect("run.offered_fraction gauge");
    assert!(
        (run_offered - offered).abs() < 1e-9,
        "{}: run.offered_fraction {run_offered} != {offered}",
        path.display()
    );
    doc
}

fn metrics_check(scale: Scale, seed: u64, sim: &SimConfig) {
    let mesh = Mesh::new(8, 8);
    let offered = 0.5;
    let load = LoadSpec::fraction_of_capacity(offered, 5);
    println!("\nmetrics validation (offered {:.0}%):", offered * 100.0);
    for fc in [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ] {
        let label = fc.label();
        // Zero perturbation: plain and metered runs must agree exactly.
        let plain = fc.run(mesh, load, sim);
        let (metered, registry) = fc.run_metered(mesh, load, sim, 64);
        assert_zero_perturbation(&plain, &metered, &label);

        // Export, parse back, validate the contract.
        let m = manifest(
            &format!("smoke_{}", label.to_lowercase()),
            scale,
            seed,
            &label,
        );
        let path = write_metrics_json(&m, &registry);
        let doc = validate_export(&path, &label, offered);

        // Same-seed determinism: a second metered run must export
        // byte-identical JSON once wall-clock data is stripped.
        let (_, registry2) = fc.run_metered(mesh, load, sim, 64);
        let m2 = RunManifest::new(m.experiment.clone(), seed, scale.name(), label.clone());
        let mut doc2 = registry2.to_json(&m2);
        let mut doc1 = doc;
        strip_nondeterministic(&mut doc1);
        strip_nondeterministic(&mut doc2);
        assert_eq!(
            doc1.render(),
            doc2.render(),
            "{label}: same-seed metered runs exported different metrics"
        );
        println!(
            "  {label}: zero-perturbation ok, schema ok, determinism ok ({})",
            path.display()
        );
    }
    println!("metrics validation passed");
}

/// Validates the Chrome-trace export contract on a parsed document:
/// every event is named and carries `ph`/`pid`; complete events carry
/// `ts`/`dur`/`tid`; and every phase tile lies inside a hop span of the
/// same flit on the same router track.
fn validate_chrome_trace(doc: &Json, label: &str) {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .unwrap_or_else(|| panic!("{label}: export has no traceEvents array"));
    assert!(!events.is_empty(), "{label}: export has no events");
    let tile_names = [
        "route_compute",
        "vc_alloc_stall",
        "credit_stall",
        "buffer_wait",
        "switch_traversal",
        "ejection",
    ];
    // (pid, tid) -> hop-span [start, end) intervals.
    let mut hops: std::collections::BTreeMap<(u64, u64), Vec<(u64, u64)>> =
        std::collections::BTreeMap::new();
    let mut tiles: Vec<(u64, u64, u64, u64)> = Vec::new();
    for e in events {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{label}: event without a name"));
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{label}: event {name} without ph"));
        assert!(
            ph == "X" || ph == "M",
            "{label}: unexpected event phase {ph}"
        );
        let pid = e
            .get("pid")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{label}: event {name} without pid"));
        if ph != "X" {
            continue;
        }
        let ts = e
            .get("ts")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{label}: X event {name} without ts"));
        let dur = e
            .get("dur")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{label}: X event {name} without dur"));
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("{label}: X event {name} without tid"));
        if name.starts_with("pkt ") {
            hops.entry((pid, tid)).or_default().push((ts, ts + dur));
        } else if tile_names.contains(&name) {
            tiles.push((pid, tid, ts, ts + dur));
        }
    }
    assert!(!hops.is_empty(), "{label}: export has no hop spans");
    for (pid, tid, start, end) in tiles {
        let inside = hops
            .get(&(pid, tid))
            .is_some_and(|spans| spans.iter().any(|&(s, e)| s <= start && end <= e));
        assert!(
            inside,
            "{label}: phase tile [{start}, {end}) on track ({pid}, {tid}) \
             is not nested in any hop span"
        );
    }
}

fn provenance_check(sim: &SimConfig) {
    let mesh = Mesh::new(8, 8);
    let offered = 0.5;
    let load = LoadSpec::fraction_of_capacity(offered, 5);
    println!(
        "\nprovenance validation (offered {:.0}%, sample 1/2):",
        offered * 100.0
    );
    let mut credit_stalls: Vec<(String, u64)> = Vec::new();
    for fc in [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ] {
        let label = fc.label();
        // Zero perturbation: the traced run's RunResult must be
        // bit-identical to the plain run's.
        let plain = fc.run(mesh, load, sim);
        let (traced, report) = fc.run_traced(mesh, load, sim, 2);
        assert_zero_perturbation(&plain, &traced, &label);

        // Reconstruction: clean fold, and every record's phase cycles
        // sum exactly to its measured end-to-end latency.
        assert_eq!(report.malformed, 0, "{label}: malformed provenance");
        assert!(!report.records.is_empty(), "{label}: no flit records");
        for r in &report.records {
            assert_eq!(
                r.attributed(),
                r.end_to_end(),
                "{label}: flit ({}, {}) attribution does not sum to latency",
                r.packet,
                r.seq
            );
        }
        // The tracker's packet latency is pegged to its last-ejected
        // flit (FR flits may eject out of seq order), so per packet the
        // max record ejection must reproduce it exactly.
        let mut last_eject = std::collections::BTreeMap::new();
        for r in &report.records {
            let e = last_eject.entry(r.packet).or_insert((r.created, 0u64));
            e.1 = e.1.max(r.ejected);
        }
        for &(packet, latency) in &report.delivered {
            if let Some(&(created, ejected)) = last_eject.get(&packet) {
                assert_eq!(
                    ejected - created,
                    latency,
                    "{label}: packet {packet} latency disagrees with tracker"
                );
            }
        }
        credit_stalls.push((
            label.clone(),
            report
                .records
                .iter()
                .map(|r| r.phases[noc_provenance::Phase::CreditStall.index()])
                .sum(),
        ));

        // Export contract + same-seed byte-identity.
        let doc = noc_provenance::chrome_trace(&report, mesh.width());
        let path = write_chrome_trace(&format!("smoke_{}", label.to_lowercase()), &doc);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read back {}: {e}", path.display()));
        let parsed = Json::parse(&text)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        validate_chrome_trace(&parsed, &label);
        let (_, report2) = fc.run_traced(mesh, load, sim, 2);
        assert_eq!(
            doc.render(),
            noc_provenance::chrome_trace(&report2, mesh.width()).render(),
            "{label}: same-seed traced runs exported different Chrome traces"
        );
        println!(
            "  {label}: zero-perturbation ok, {} records exact, trace contract ok, determinism ok",
            report.records.len()
        );
    }
    // The paper's structural claim: FR data flits never wait on credits.
    let fr_stalls = credit_stalls
        .iter()
        .find(|(l, _)| l.starts_with("FR"))
        .map(|&(_, s)| s)
        .unwrap_or(0);
    assert_eq!(
        fr_stalls, 0,
        "FR run attributed credit-stall cycles; reservations should preclude them"
    );
    println!("provenance validation passed (FR credit stalls: 0 by construction)");
}

/// Runs VC8 and FR6 under a randomized-but-reproducible fault plan and
/// checks the reliability layer end to end: an inactive plan must be
/// bit-identical to no plan at all (zero-cost-when-off), an active plan
/// must still deliver the full sample despite corruption, control-flit
/// drops and a dead link, the protocol counters must be internally
/// consistent, and the fault schedule itself must be reproducible.
fn faults_check(sim: &SimConfig, seed: u64) {
    let mesh = Mesh::new(8, 8);
    let offered = 0.4;
    let load = LoadSpec::fraction_of_capacity(offered, 5);
    println!("\nfault validation (offered {:.0}%):", offered * 100.0);
    for fc in [
        FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control()),
        FlowControl::FlitReservation(FrConfig::fr6()),
    ] {
        let label = fc.label();
        let plain = fc.run(mesh, load, sim);

        // Zero-cost-when-off: an inactive plan must not perturb anything.
        let (quiet, qs) = fc.run_faulty(mesh, load, sim, &FaultPlan::quiet(seed));
        assert_zero_perturbation(&plain, &quiet, &label);
        assert_eq!(
            qs,
            FaultSummary::default(),
            "{label}: inactive plan armed the fault layer"
        );

        // An active plan must still deliver the full sample. Pull the
        // dead link early so even the quick scale exercises masking.
        let mut plan = FaultPlan::randomized(seed, mesh);
        for d in &mut plan.dead_links {
            d.at_cycle = d.at_cycle.min(64);
        }
        let (faulty, fs) = fc.run_faulty(mesh, load, sim, &plan);
        assert!(
            faulty.completed,
            "{label}: fault run saturated under {}",
            plan.summary()
        );
        // Adaptive warmup may shift the measured window under faults, so
        // the sample count need not match the fault-free run exactly;
        // `completed` already proves every measured packet drained.
        assert!(faulty.delivered > 0, "{label}: fault run delivered nothing");
        let c = fs.counters;
        assert!(
            c.corrupt_discarded <= c.data_corrupted,
            "{label}: discarded more corrupt flits than were corrupted"
        );
        assert!(
            c.retransmits <= c.nacks + c.timeout_retransmits,
            "{label}: retransmits unaccounted for by NACKs and timeouts"
        );
        assert_eq!(
            c.links_masked,
            plan.dead_links.len() as u64,
            "{label}: dead links not applied"
        );

        // Same plan, same seed: the fault schedule is part of the run's
        // identity, so a repeat must reproduce it exactly.
        let (again, fs2) = fc.run_faulty(mesh, load, sim, &plan);
        assert_eq!(
            faulty.end_cycle, again.end_cycle,
            "{label}: same-plan fault runs diverged"
        );
        assert_eq!(fs, fs2, "{label}: same-plan fault counters diverged");
        println!(
            "  {label}: zero-cost-off ok, delivered {} ({} corrupt, {} dropped, {} retransmits, {} dead links), determinism ok",
            faulty.delivered, c.data_corrupted, c.control_dropped, c.retransmits, c.links_masked
        );
    }
    println!("fault validation passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    let faults = args.iter().any(|a| a == "--faults");
    if let Some(unknown) = args
        .iter()
        .find(|a| *a != "--quick" && *a != "--metrics" && *a != "--faults")
    {
        eprintln!("unknown flag {unknown}; usage: smoke [--quick] [--metrics] [--faults]");
        std::process::exit(2);
    }

    let seed = seed_from_env();
    let scale = if quick {
        Scale::Tiny
    } else {
        Scale::from_env()
    };
    let mut sim = SimConfig::quick(7);
    if quick {
        sim = Scale::Tiny.sim(7);
        sim.sample_packets = 400;
    } else {
        sim.sample_packets = 1500;
    }

    if quick {
        health_check(&sim, &[0.05, 0.5, 0.7], &[0.05, 0.5]);
    } else {
        health_check(
            &sim,
            &[0.05, 0.5, 0.63, 0.70, 0.77, 0.85],
            &[0.05, 0.5, 0.65, 0.75],
        );
    }

    if metrics {
        let mut msim = scale.sim(seed);
        if quick {
            msim.sample_packets = msim.sample_packets.min(600);
        }
        metrics_check(scale, seed, &msim);
        provenance_check(&msim);
    }

    if faults {
        let mut fsim = scale.sim(seed);
        if quick {
            fsim.sample_packets = fsim.sample_packets.min(500);
        }
        faults_check(&fsim, seed);
    }
}
