//! # noc-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper. Each `[[bin]]` target prints the same rows/series the paper
//! reports; `cargo run -p noc-bench --release --bin fig5` etc.
//!
//! All simulation harnesses honour two environment variables:
//!
//! * `FRFC_SCALE` — `tiny` (seconds, CI), `quick` (default, ~minutes) or
//!   `paper` (the paper's 10k-cycle warm-up / 100k-packet samples; hours
//!   on one core);
//! * `FRFC_SEED` — root seed (default 2000, the publication year).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod report;

use noc_engine::warmup::WarmupConfig;
use noc_network::{Curve, SimConfig};

/// Measurement scale selected by `FRFC_SCALE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Hundreds of packets; shapes only. Seconds per figure.
    Tiny,
    /// Thousands of packets; good curves. Default.
    Quick,
    /// The paper's methodology (10k-cycle warm-up, 100k packets).
    Paper,
}

impl Scale {
    /// Reads `FRFC_SCALE` (default `quick`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value.
    pub fn from_env() -> Scale {
        match std::env::var("FRFC_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            Ok("quick") | Err(_) => Scale::Quick,
            Ok(other) => panic!("FRFC_SCALE must be tiny|quick|paper, got {other}"),
        }
    }

    /// The scale's name as spelled in `FRFC_SCALE` and run manifests.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// The corresponding measurement configuration.
    pub fn sim(self, seed: u64) -> SimConfig {
        match self {
            Scale::Tiny => SimConfig {
                seed,
                warmup: WarmupConfig {
                    min_cycles: 1_000,
                    max_cycles: 6_000,
                    window: 8,
                    tolerance: 0.08,
                },
                sample_packets: 800,
                drain_cap: 20_000,
                warmup_probe_period: 32,
            },
            Scale::Quick => SimConfig::quick(seed),
            Scale::Paper => SimConfig::paper_scale(seed),
        }
    }
}

/// Reads the root seed from `FRFC_SEED` (default 2000).
pub fn seed_from_env() -> u64 {
    std::env::var("FRFC_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000)
}

/// Worker threads the experiment bins fan their load sweeps across:
/// `FRFC_THREADS` when set (clamped to at least 1), otherwise the
/// machine's available parallelism capped at 4. Every sweep point is an
/// isolated simulation with its own forked seed, so results are
/// independent of this count; bins record the value actually used in
/// their `RunManifest` so wall-clock comparisons stay attributable.
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("FRFC_THREADS") {
        return v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("FRFC_THREADS must be a positive integer, got {v}"))
            .max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

/// Default offered-load sweep (fractions of capacity) used by the
/// latency-throughput figures.
pub fn default_loads() -> Vec<f64> {
    vec![
        0.1, 0.2, 0.3, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9,
    ]
}

/// Formats an optional cycle quantile as a fixed-width cell.
fn quantile_cell(q: Option<u64>) -> String {
    q.map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Prints one curve in the fixed-width format shared by all figures,
/// including the tail-latency percentiles of the sample.
pub fn print_curve(curve: &Curve) {
    println!("\n{}", curve.label);
    println!(
        "{:>10} {:>12} {:>10} {:>6} {:>6} {:>6} {:>10} {:>10}",
        "offered", "latency", "ci95", "p50", "p95", "p99", "accepted", "status"
    );
    for p in &curve.points {
        let status = if p.result.completed {
            "ok"
        } else {
            "saturated"
        };
        let lat = if p.result.completed {
            format!("{:.1}", p.result.mean_latency())
        } else {
            "-".to_string()
        };
        println!(
            "{:>9.0}% {:>12} {:>10.2} {:>6} {:>6} {:>6} {:>9.1}% {:>10}",
            p.offered * 100.0,
            lat,
            p.result.latency.ci95_half_width(),
            quantile_cell(p.result.p50_latency),
            quantile_cell(p.result.p95_latency),
            quantile_cell(p.result.p99_latency),
            p.result.accepted_fraction * 100.0,
            status
        );
    }
}

/// Prints a one-line per-curve summary: base latency, saturation
/// throughput under a `3 × base` latency knee criterion, and the tail
/// latencies (p50/p95/p99) at the highest completed load.
pub fn print_summary(curves: &[Curve]) {
    println!(
        "\n{:>8} {:>14} {:>22} {:>20}",
        "config", "base latency", "saturation throughput", "tail p50/p95/p99"
    );
    for c in curves {
        let base = c.base_latency();
        let sat = c.saturation_throughput(base * 3.0);
        let tail = c
            .points
            .iter()
            .filter(|p| p.result.completed)
            .max_by(|a, b| a.offered.total_cmp(&b.offered))
            .map_or_else(
                || "-".to_string(),
                |p| {
                    format!(
                        "{}/{}/{}",
                        quantile_cell(p.result.p50_latency),
                        quantile_cell(p.result.p95_latency),
                        quantile_cell(p.result.p99_latency)
                    )
                },
            );
        println!(
            "{:>8} {:>13.1}c {:>21.0}% {:>20}",
            c.label,
            base,
            sat * 100.0,
            tail
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sims_are_ordered() {
        let tiny = Scale::Tiny.sim(1);
        let quick = Scale::Quick.sim(1);
        let paper = Scale::Paper.sim(1);
        assert!(tiny.sample_packets < quick.sample_packets);
        assert!(quick.sample_packets < paper.sample_packets);
        assert_eq!(paper.sample_packets, 100_000);
        assert_eq!(paper.warmup.min_cycles, 10_000);
    }

    #[test]
    fn default_loads_cover_both_saturation_points() {
        let loads = default_loads();
        assert!(loads.iter().any(|&l| (l - 0.6).abs() < 0.06));
        assert!(loads.iter().any(|&l| l > 0.8));
        assert!(loads.windows(2).all(|w| w[0] < w[1]));
    }
}
