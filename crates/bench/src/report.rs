//! JSON sidecar writing shared by the experiment bins.
//!
//! Every bin that prints a table or figure can also drop a
//! machine-readable document into the results directory:
//!
//! * `<experiment>.json` — the printed curves/rows (offered load, mean
//!   latency, CI, percentiles, accepted throughput) plus a
//!   [`RunManifest`];
//! * `<experiment>.metrics.json` — a full [`MetricsRegistry`] export
//!   when the bin ran metered.
//!
//! The directory defaults to `results/` and can be redirected with the
//! `FRFC_RESULTS_DIR` environment variable (used by CI and tests to
//! write into a temp dir).

use crate::Scale;
use noc_metrics::{write_json_file, Json, MetricsRegistry, RunManifest, SCHEMA_VERSION};
use noc_network::Curve;
use std::path::PathBuf;

/// The directory sidecars are written to (`FRFC_RESULTS_DIR`, default
/// `results`). Created if missing.
///
/// # Panics
///
/// Panics when the directory cannot be created — sidecars are part of
/// the experiment contract, so failing silently would hide data loss.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FRFC_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create results dir {}: {e}", dir.display()));
    dir
}

/// Builds the manifest for an experiment bin from the environment-derived
/// scale and seed, with `config` labelling the swept configurations.
pub fn manifest(experiment: &str, scale: Scale, seed: u64, config: &str) -> RunManifest {
    RunManifest::new(experiment, seed, scale.name(), config)
}

/// Renders a set of latency-throughput curves as a JSON document:
/// schema version, manifest, then one entry per curve with the full
/// per-point measurement record.
pub fn curves_to_json(manifest: &RunManifest, curves: &[Curve]) -> Json {
    let curves_json = curves
        .iter()
        .map(|c| {
            let points = c
                .points
                .iter()
                .map(|p| {
                    let mut fields = vec![
                        ("offered".into(), Json::Num(p.offered)),
                        ("accepted".into(), Json::Num(p.result.accepted_fraction)),
                        ("completed".into(), Json::Bool(p.result.completed)),
                        ("delivered".into(), Json::Num(p.result.delivered as f64)),
                    ];
                    if p.result.completed {
                        fields.push(("mean_latency".into(), Json::Num(p.result.mean_latency())));
                        fields.push((
                            "latency_ci95".into(),
                            Json::Num(p.result.latency.ci95_half_width()),
                        ));
                    }
                    for (key, q) in [
                        ("p50_latency", p.result.p50_latency),
                        ("p95_latency", p.result.p95_latency),
                        ("p99_latency", p.result.p99_latency),
                    ] {
                        if let Some(v) = q {
                            fields.push((key.into(), Json::Num(v as f64)));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect();
            Json::Obj(vec![
                ("label".into(), Json::str(&c.label)),
                ("points".into(), Json::Arr(points)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
        ("manifest".into(), manifest.to_json()),
        ("curves".into(), Json::Arr(curves_json)),
    ])
}

/// Writes the curves sidecar to `results/<experiment>.json` and returns
/// the path. Failures print a warning rather than aborting the bin — the
/// text output already happened and remains valid.
pub fn write_curves_json(manifest: &RunManifest, curves: &[Curve]) -> PathBuf {
    let path = results_dir().join(format!("{}.json", manifest.experiment));
    let doc = curves_to_json(manifest, curves);
    match write_json_file(&path, &doc) {
        Ok(()) => println!("\n[sidecar] wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

/// Writes a table-style sidecar (`results/<experiment>.json`) holding
/// named rows of key/value cells instead of curves.
pub fn write_rows_json(manifest: &RunManifest, rows: &[(String, Vec<(String, Json)>)]) -> PathBuf {
    let rows_json = rows
        .iter()
        .map(|(name, cells)| {
            let mut fields = vec![("name".into(), Json::str(name))];
            fields.extend(cells.iter().cloned());
            Json::Obj(fields)
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
        ("manifest".into(), manifest.to_json()),
        ("rows".into(), Json::Arr(rows_json)),
    ]);
    let path = results_dir().join(format!("{}.json", manifest.experiment));
    match write_json_file(&path, &doc) {
        Ok(()) => println!("\n[sidecar] wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

/// Writes a Chrome trace-event document ([`noc_provenance::chrome_trace`])
/// to `results/<name>.trace.json` and returns the path. The file opens
/// directly in `ui.perfetto.dev` or `chrome://tracing`.
pub fn write_chrome_trace(name: &str, doc: &Json) -> PathBuf {
    let path = results_dir().join(format!("{name}.trace.json"));
    match write_json_file(&path, doc) {
        Ok(()) => println!(
            "[sidecar] wrote {} (open in ui.perfetto.dev)",
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

/// Writes a full metrics-registry export to
/// `results/<experiment>.metrics.json` and returns the path.
pub fn write_metrics_json(manifest: &RunManifest, registry: &MetricsRegistry) -> PathBuf {
    let path = results_dir().join(format!("{}.metrics.json", manifest.experiment));
    let doc = registry.to_json(manifest);
    match write_json_file(&path, &doc) {
        Ok(()) => println!("[sidecar] wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::stats::RunningStats;
    use noc_network::{LoadPoint, RunResult};

    fn fake_result(completed: bool) -> RunResult {
        let mut latency = RunningStats::new();
        latency.record(20.0);
        latency.record(30.0);
        RunResult {
            offered_fraction: 0.5,
            packet_length: 5,
            latency,
            accepted_flits_per_node_cycle: 0.2,
            accepted_fraction: 0.5,
            completed,
            measure_start: 1000,
            end_cycle: 5000,
            probe_full_fraction: 0.0,
            probe_mean_occupancy: 0.0,
            delivered: 100,
            p50_latency: Some(24),
            p95_latency: Some(40),
            p99_latency: None,
        }
    }

    #[test]
    fn curves_json_contains_schema_and_points() {
        let m = RunManifest::new("unit", 1, "tiny", "FR6");
        let curve = Curve {
            label: "FR6".into(),
            points: vec![
                LoadPoint {
                    offered: 0.5,
                    result: fake_result(true),
                },
                LoadPoint {
                    offered: 0.9,
                    result: fake_result(false),
                },
            ],
        };
        let doc = curves_to_json(&m, &[curve]);
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        let curves = doc.get("curves").and_then(Json::as_array).expect("curves");
        let points = curves[0]
            .get("points")
            .and_then(Json::as_array)
            .expect("points");
        assert_eq!(points.len(), 2);
        // Completed point carries the mean; saturated one omits it.
        assert!(points[0].get("mean_latency").is_some());
        assert!(points[1].get("mean_latency").is_none());
        assert_eq!(
            points[0].get("p95_latency").and_then(Json::as_u64),
            Some(40)
        );
        assert!(points[0].get("p99_latency").is_none());
    }
}
