//! A dependency-free wall-clock benchmark harness.
//!
//! Stands in for criterion so the workspace resolves with no registry
//! access. The API intentionally mirrors the subset the benches use: a
//! [`Harness`] groups named benchmarks, each receiving a [`Bencher`]
//! whose `iter` closure is timed. Results print as `ns/iter` with the
//! spread across samples, and a baseline file can be compared against to
//! flag regressions by hand.
//!
//! Methodology: each benchmark is warmed up, then timed over
//! `samples` batches; the batch size is auto-calibrated so one batch
//! takes roughly `target_batch` of wall time. The median batch time is
//! reported (robust to scheduler noise), alongside min and max.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches need only `use noc_bench::harness::*`.
pub use std::hint::black_box as bb;

/// Times one benchmark body.
pub struct Bencher {
    /// Calibrated iterations per timed batch.
    iters: u64,
    /// Median/min/max nanoseconds per iteration, filled by `iter`.
    result: Option<BenchResult>,
    samples: usize,
}

/// Per-benchmark timing summary, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct BenchResult {
    /// Median over timed batches.
    pub median_ns: f64,
    /// Fastest batch.
    pub min_ns: f64,
    /// Slowest batch.
    pub max_ns: f64,
    /// Iterations per batch used for the measurement.
    pub iters: u64,
}

impl Bencher {
    /// Runs `body` repeatedly and records ns/iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + calibration: grow the batch until it takes >= 1ms.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 24 {
                // Scale so a batch lands near ~5ms.
                let per_iter = elapsed.as_nanos().max(1) as u64 / iters;
                iters = (5_000_000 / per_iter.max(1)).clamp(1, 1 << 24);
                break;
            }
            iters *= 4;
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.iters = iters;
        self.result = Some(BenchResult {
            median_ns: samples_ns[samples_ns.len() / 2],
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("at least one sample"),
            iters,
        });
    }
}

/// Collects and prints benchmark results.
pub struct Harness {
    samples: usize,
    results: Vec<(String, BenchResult)>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Creates a harness with the default 15 samples per benchmark.
    pub fn new() -> Self {
        Harness {
            samples: 15,
            results: Vec::new(),
        }
    }

    /// Overrides the number of timed batches per benchmark.
    pub fn samples(mut self, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        self.samples = samples;
        self
    }

    /// Runs one named benchmark.
    pub fn bench<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) {
        let mut b = Bencher {
            iters: 0,
            result: None,
            samples: self.samples,
        };
        f(&mut b);
        let r = b.result.expect("benchmark body must call Bencher::iter");
        println!(
            "{name:<44} {:>12.1} ns/iter  (min {:.1}, max {:.1}, {} iters/batch)",
            r.median_ns, r.min_ns, r.max_ns, r.iters
        );
        self.results.push((name.to_string(), r));
    }

    /// All results collected so far.
    pub fn results(&self) -> &[(String, BenchResult)] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_trivial_body() {
        let mut h = Harness::new().samples(3);
        h.bench("noop", |b| b.iter(|| 1u64 + 1));
        assert_eq!(h.results().len(), 1);
        let (name, r) = &h.results()[0];
        assert_eq!(name, "noop");
        assert!(r.median_ns >= 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.iters >= 1);
    }

    #[test]
    #[should_panic(expected = "must call Bencher::iter")]
    fn missing_iter_panics() {
        let mut h = Harness::new();
        h.bench("empty", |_| {});
    }
}
