//! Whole-network throughput benchmarks: simulated cycles per second for
//! each flow control at a moderate load — the figure of merit for the
//! simulator itself (how long the paper's figures take to regenerate).
//!
//! Run with `cargo bench -p noc-bench --features bench`.

use flit_reservation::{FrConfig, FrRouter};
use noc_bench::harness::Harness;
use noc_engine::trace::{NullSink, SharedSink, VecSink};
use noc_engine::Rng;
use noc_flow::LinkTiming;
use noc_network::Network;
use noc_topology::Mesh;
use noc_traffic::{LoadSpec, TrafficGenerator};
use noc_vc::{VcConfig, VcRouter};

const CYCLES: u64 = 2_000;

fn bench_networks(h: &mut Harness) {
    let mesh = Mesh::new(8, 8);

    h.bench("network_cycles/vc8@50%", |b| {
        b.iter(|| {
            let root = Rng::from_seed(1);
            let load = LoadSpec::fraction_of_capacity(0.5, 5);
            let generator = TrafficGenerator::uniform(mesh, load, root.fork(9));
            let mut net = Network::new(mesh, LinkTiming::fast_control(), 2, generator, |n| {
                VcRouter::new(mesh, n, VcConfig::vc8(), root.fork(n.raw() as u64))
            });
            net.run_cycles(CYCLES);
            net.tracker().delivered_flits()
        });
    });

    h.bench("network_cycles/fr6@50%", |b| {
        b.iter(|| {
            let root = Rng::from_seed(1);
            let load = LoadSpec::fraction_of_capacity(0.5, 5);
            let generator = TrafficGenerator::uniform(mesh, load, root.fork(9));
            let cfg = FrConfig::fr6();
            let mut net = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |n| {
                FrRouter::new(mesh, n, cfg, root.fork(n.raw() as u64))
            });
            net.run_cycles(CYCLES);
            net.tracker().delivered_flits()
        });
    });

    // The disabled-tracing path through `with_tracer`: must be within
    // noise (< 2%) of the plain constructor above, since `NullSink`
    // emit sites const-fold away.
    h.bench("network_cycles/fr6@50%+nullsink", |b| {
        b.iter(|| {
            let root = Rng::from_seed(1);
            let load = LoadSpec::fraction_of_capacity(0.5, 5);
            let generator = TrafficGenerator::uniform(mesh, load, root.fork(9));
            let cfg = FrConfig::fr6();
            let mut net = Network::with_tracer(
                mesh,
                cfg.timing,
                cfg.control_lanes,
                generator,
                |n| FrRouter::with_tracer(mesh, n, cfg, root.fork(n.raw() as u64), NullSink),
                NullSink,
            );
            net.run_cycles(CYCLES);
            net.tracker().delivered_flits()
        });
    });

    // Full recording into a shared in-memory sink: the honest price of
    // tracing when it is actually on.
    h.bench("network_cycles/fr6@50%+vecsink", |b| {
        b.iter(|| {
            let root = Rng::from_seed(1);
            let load = LoadSpec::fraction_of_capacity(0.5, 5);
            let generator = TrafficGenerator::uniform(mesh, load, root.fork(9));
            let cfg = FrConfig::fr6();
            let sink = SharedSink::new(VecSink::new());
            let router_sink = sink.clone();
            let mut net = Network::with_tracer(
                mesh,
                cfg.timing,
                cfg.control_lanes,
                generator,
                move |n| {
                    FrRouter::with_tracer(
                        mesh,
                        n,
                        cfg,
                        root.fork(n.raw() as u64),
                        router_sink.clone(),
                    )
                },
                sink.clone(),
            );
            net.run_cycles(CYCLES);
            (
                net.tracker().delivered_flits(),
                sink.with(|s| s.events().len()),
            )
        });
    });
}

fn main() {
    let mut h = Harness::new().samples(9);
    bench_networks(&mut h);
}
