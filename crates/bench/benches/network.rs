//! Whole-network throughput benchmarks: simulated cycles per second for
//! each flow control at a moderate load — the figure of merit for the
//! simulator itself (how long the paper's figures take to regenerate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flit_reservation::{FrConfig, FrRouter};
use noc_engine::Rng;
use noc_flow::LinkTiming;
use noc_network::Network;
use noc_topology::Mesh;
use noc_traffic::{LoadSpec, TrafficGenerator};
use noc_vc::{VcConfig, VcRouter};

const CYCLES: u64 = 2_000;

fn bench_networks(c: &mut Criterion) {
    let mesh = Mesh::new(8, 8);
    let mut g = c.benchmark_group("network_cycles");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("vc8", "50%"), |b| {
        b.iter(|| {
            let root = Rng::from_seed(1);
            let load = LoadSpec::fraction_of_capacity(0.5, 5);
            let generator = TrafficGenerator::uniform(mesh, load, root.fork(9));
            let mut net = Network::new(mesh, LinkTiming::fast_control(), 2, generator, |n| {
                VcRouter::new(mesh, n, VcConfig::vc8(), root.fork(n.raw() as u64))
            });
            net.run_cycles(CYCLES);
            net.tracker().delivered_flits()
        });
    });

    g.bench_function(BenchmarkId::new("fr6", "50%"), |b| {
        b.iter(|| {
            let root = Rng::from_seed(1);
            let load = LoadSpec::fraction_of_capacity(0.5, 5);
            let generator = TrafficGenerator::uniform(mesh, load, root.fork(9));
            let cfg = FrConfig::fr6();
            let mut net = Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |n| {
                FrRouter::new(mesh, n, cfg, root.fork(n.raw() as u64))
            });
            net.run_cycles(CYCLES);
            net.tracker().delivered_flits()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
