//! Micro-benchmarks of the hot data structures: the reservation tables
//! (consulted on every control-flit scheduling decision), the PRNG, links
//! and buffer pools. These bound the cost of the flit-reservation
//! mechanism itself, independent of any workload.
//!
//! Run with `cargo bench -p noc-bench --features bench`.

use flit_reservation::{InputReservationTable, OutputReservationTable};
use noc_bench::harness::Harness;
use noc_engine::{Cycle, Rng};
use noc_flow::{BufferPool, DataFlit, Link};
use noc_topology::{NodeId, Port};
use noc_traffic::PacketId;
use std::hint::black_box;

fn flit(seq: u32) -> DataFlit {
    DataFlit {
        packet: PacketId::new(0),
        seq,
        length: 5,
        dest: NodeId::new(0),
        created_at: Cycle::ZERO,
        crc_ok: true,
    }
}

fn bench_output_table(h: &mut Harness) {
    h.bench("output_table/schedule_reserve_credit", |b| {
        let mut table = OutputReservationTable::new(32, Some(6), 4);
        let mut now = Cycle::ZERO;
        table.advance_to(now);
        b.iter(|| {
            now = now.next();
            table.advance_to(now);
            if let Some(t_d) = table.find_departure(black_box(now), now, |_| true) {
                table.reserve(t_d);
                table.credit(t_d + 5, now);
            }
        });
    });
    h.bench("output_table/find_departure_miss", |b| {
        // Fully busy horizon: the search scans all 32 candidates.
        let mut table = OutputReservationTable::new(32, Some(6), 4);
        let now = Cycle::ZERO;
        table.advance_to(now);
        for t in 1..=32u64 {
            table.reserve(Cycle::new(t));
            table.credit(Cycle::new(t + 5), now);
        }
        b.iter(|| black_box(table.find_departure(Cycle::ZERO, now, |_| true)));
    });
}

fn bench_input_table(h: &mut Harness) {
    h.bench("input_table/reserve_arrive_depart", |b| {
        let mut table = InputReservationTable::new(32, 6, 4);
        let mut now = Cycle::ZERO;
        table.advance_to(now);
        b.iter(|| {
            now = now.next();
            table.advance_to(now);
            table.apply_reservation(now + 2, now + 5, Port::East, now);
            // fast-forward: arrival then departure
            now += 2;
            table.advance_to(now);
            table.on_data_arrival(flit(0), now);
            now += 3;
            table.advance_to(now);
            black_box(table.take_departure(now))
        });
    });
}

fn bench_rng(h: &mut Harness) {
    h.bench("rng/next_u64", |b| {
        let mut rng = Rng::from_seed(1);
        b.iter(|| black_box(rng.next_u64()));
    });
    h.bench("rng/below", |b| {
        let mut rng = Rng::from_seed(1);
        b.iter(|| black_box(rng.below(5)));
    });
}

fn bench_link(h: &mut Harness) {
    h.bench("link/push_take", |b| {
        let mut link: Link<DataFlit> = Link::new(4, 1);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            link.push(now, flit(0)).expect("bandwidth free");
            now = now.next();
            black_box(link.take_arrivals(now).len());
        });
    });
}

fn bench_pool(h: &mut Harness) {
    h.bench("buffer_pool/insert_take", |b| {
        let mut pool = BufferPool::new(6);
        b.iter(|| {
            let id = pool.insert(flit(1)).expect("space");
            black_box(pool.take(id));
        });
    });
}

fn main() {
    let mut h = Harness::new();
    bench_output_table(&mut h);
    bench_input_table(&mut h);
    bench_rng(&mut h);
    bench_link(&mut h);
    bench_pool(&mut h);
}
