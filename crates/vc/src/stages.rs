//! Concrete pipeline stages of the virtual-channel router.
//!
//! Each stage owns one slice of the router's state and answers typed
//! requests from the driver ([`crate::VcRouter::step`]); no stage
//! reaches into another's fields. The stage chain mirrors the paper's
//! pipeline (and the provenance phase model):
//!
//! * route compute — `noc_flow::pipeline::RouteCompute`, shared with FR;
//! * VC allocation — [`VcAllocStage`], owning downstream-VC ownership;
//! * switch allocation + traversal — [`SwitchStage`], owning credits
//!   and the pluggable arbiter;
//! * input buffering — [`VcInputStage`], owning the per-lane queues the
//!   traversal stage drains;
//! * injection — [`NiStage`], the network-interface FIFO.

#![deny(private_interfaces, private_bounds)]

use crate::{CreditMode, VcConfig};
use noc_engine::{Cycle, Rng};
use noc_flow::pipeline::{SwitchArbiter, SwitchBid, SwitchContender, VcAllocGrant, VcAllocRequest};
use noc_flow::{DataFlit, VcTag};
use noc_metrics::Json;
use noc_topology::{Port, PortMap};
use noc_traffic::PacketId;
use std::collections::VecDeque;

/// One buffered flit with its arrival cycle.
#[derive(Clone, Debug)]
pub(crate) struct QueuedFlit {
    pub(crate) tag: VcTag,
    pub(crate) flit: DataFlit,
    pub(crate) arrived: Cycle,
}

/// Copy-out view of one input lane's allocation state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LaneState {
    /// Output port of the packet draining through this lane.
    pub(crate) route: Option<Port>,
    /// Downstream VC granted to that packet.
    pub(crate) out_vc: Option<u8>,
    /// Earliest cycle the (head) flit may bid for the switch.
    pub(crate) switch_ready_at: Cycle,
}

/// Per-input-VC state machine.
#[derive(Clone, Debug)]
struct InputVc {
    queue: VecDeque<QueuedFlit>,
    route: Option<Port>,
    out_vc: Option<u8>,
    switch_ready_at: Cycle,
}

impl InputVc {
    fn new() -> Self {
        InputVc {
            queue: VecDeque::new(),
            route: None,
            out_vc: None,
            switch_ready_at: Cycle::ZERO,
        }
    }
}

/// DAMQ admission rule [TamFra92]: every VC keeps one dedicated slot so
/// an empty VC can always accept a flit (preserving the per-VC progress
/// deadlock-freedom argument of private queues); the remaining
/// `b_d - v` slots are shared. A VC holding `o` flits uses one
/// dedicated slot plus `o - 1` shared slots.
pub(crate) fn damq_admits(per_vc: &[usize], vc: usize, capacity: usize) -> bool {
    if per_vc[vc] == 0 {
        return true;
    }
    let shared_used: usize = per_vc.iter().map(|&o| o.saturating_sub(1)).sum();
    shared_used < capacity - per_vc.len()
}

/// The input-buffer stage: per-port, per-VC flit queues and the lane
/// state machines (route, granted VC, switch-ready gate) that carry a
/// packet through the pipeline.
#[derive(Clone, Debug)]
pub(crate) struct VcInputStage {
    lanes: PortMap<Vec<InputVc>>,
}

impl VcInputStage {
    pub(crate) fn new(num_vcs: usize) -> Self {
        VcInputStage {
            lanes: PortMap::from_fn(|_| (0..num_vcs).map(|_| InputVc::new()).collect()),
        }
    }

    /// The front flit of lane (`port`, `vc`), if any.
    pub(crate) fn front(&self, port: Port, vc: usize) -> Option<&QueuedFlit> {
        self.lanes[port][vc].queue.front()
    }

    /// The lane's allocation state, by value.
    pub(crate) fn lane(&self, port: Port, vc: usize) -> LaneState {
        let l = &self.lanes[port][vc];
        LaneState {
            route: l.route,
            out_vc: l.out_vc,
            switch_ready_at: l.switch_ready_at,
        }
    }

    /// The destination of an unrouted head that is eligible for route
    /// compute this cycle (buffered before `now`), if any.
    pub(crate) fn pending_route(
        &self,
        port: Port,
        vc: usize,
        now: Cycle,
    ) -> Option<noc_topology::NodeId> {
        let l = &self.lanes[port][vc];
        match l.queue.front() {
            Some(front) if front.tag.ty.is_head() && l.route.is_none() && front.arrived < now => {
                Some(front.flit.dest)
            }
            _ => None,
        }
    }

    /// Installs the route-compute answer. Ejection (`Local`) needs no
    /// downstream VC, so the lane is immediately switch-ready on VC 0.
    pub(crate) fn set_route(&mut self, port: Port, vc: usize, out: Port, now: Cycle) {
        let l = &mut self.lanes[port][vc];
        l.route = Some(out);
        if out == Port::Local {
            l.out_vc = Some(0);
            l.switch_ready_at = now;
        }
    }

    /// The lane's request into the VC-allocation stage: routed but not
    /// yet holding a downstream VC.
    pub(crate) fn alloc_request(&self, port: Port, vc: usize) -> Option<VcAllocRequest> {
        let l = &self.lanes[port][vc];
        match (l.route, l.out_vc) {
            (Some(out), None) => Some(VcAllocRequest {
                in_port: port,
                in_vc: vc,
                out_port: out,
            }),
            _ => None,
        }
    }

    /// Installs a VC-allocation grant. Routing, VC allocation and
    /// switch traversal share the single routing/scheduling cycle of
    /// the paper's router.
    pub(crate) fn apply_grant(&mut self, req: &VcAllocRequest, grant: VcAllocGrant, now: Cycle) {
        let l = &mut self.lanes[req.in_port][req.in_vc];
        l.out_vc = Some(grant.out_vc);
        l.switch_ready_at = now;
    }

    /// True if `packet`'s tail flit is already buffered in the lane
    /// (the store-and-forward gate).
    pub(crate) fn tail_buffered(&self, port: Port, vc: usize, packet: PacketId) -> bool {
        self.lanes[port][vc]
            .queue
            .iter()
            .any(|q| q.flit.packet == packet && q.tag.ty.is_tail())
    }

    /// Pops the departing front flit of the lane.
    ///
    /// # Panics
    ///
    /// Panics if the lane is empty: only switch winners are popped.
    pub(crate) fn pop_front(&mut self, port: Port, vc: usize) -> QueuedFlit {
        self.lanes[port][vc]
            .queue
            .pop_front()
            .expect("winner queue cannot be empty")
    }

    /// Clears the lane's allocation after its tail departed.
    pub(crate) fn end_packet(&mut self, port: Port, vc: usize) {
        let l = &mut self.lanes[port][vc];
        l.route = None;
        l.out_vc = None;
    }

    /// Buffers an arriving (or injected) flit at the back of the lane.
    pub(crate) fn push(&mut self, port: Port, vc: usize, flit: QueuedFlit) {
        self.lanes[port][vc].queue.push_back(flit);
    }

    /// True if lane (`port`, `vc`) can accept one more flit under the
    /// configured accounting mode.
    pub(crate) fn has_space(&self, port: Port, vc: usize, config: &VcConfig) -> bool {
        match config.credit_mode {
            CreditMode::PerVc => self.lanes[port][vc].queue.len() < config.queue_depth,
            CreditMode::SharedPool => {
                let per_vc: Vec<usize> = self.lanes[port].iter().map(|q| q.queue.len()).collect();
                damq_admits(&per_vc, vc, config.buffers_per_input())
            }
        }
    }

    /// Flits buffered across all lanes of `port`.
    pub(crate) fn occupancy(&self, port: Port) -> usize {
        self.lanes[port].iter().map(|vc| vc.queue.len()).sum()
    }

    /// True if every lane of every port is empty.
    pub(crate) fn all_empty(&self) -> bool {
        Port::ALL
            .iter()
            .all(|&p| self.lanes[p].iter().all(|vc| vc.queue.is_empty()))
    }

    /// Dumps every lane that holds live state (queued flits or an
    /// installed route/VC grant); inert lanes are omitted.
    pub(crate) fn snapshot(&self) -> Json {
        let mut ports = Vec::new();
        for &port in &Port::ALL {
            let mut lanes = Vec::new();
            for (vc, l) in self.lanes[port].iter().enumerate() {
                if l.queue.is_empty() && l.route.is_none() && l.out_vc.is_none() {
                    continue;
                }
                let queue: Vec<Json> = l
                    .queue
                    .iter()
                    .map(|q| {
                        Json::str(format!(
                            "{:?} {:?} arrived={}",
                            q.tag,
                            q.flit,
                            q.arrived.raw()
                        ))
                    })
                    .collect();
                lanes.push(Json::obj(vec![
                    ("vc".into(), Json::Num(vc as f64)),
                    (
                        "route".into(),
                        match l.route {
                            Some(p) => Json::str(format!("{p:?}")),
                            None => Json::Null,
                        },
                    ),
                    (
                        "out_vc".into(),
                        match l.out_vc {
                            Some(v) => Json::Num(v as f64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "switch_ready_at".into(),
                        Json::Num(l.switch_ready_at.raw() as f64),
                    ),
                    ("queue".into(), Json::Arr(queue)),
                ]));
            }
            if !lanes.is_empty() {
                ports.push(Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    ("lanes".into(), Json::Arr(lanes)),
                ]));
            }
        }
        Json::Arr(ports)
    }
}

/// The VC-allocation stage: ownership of every output port's downstream
/// virtual channels, granted to one packet at a time.
#[derive(Clone, Debug)]
pub(crate) struct VcAllocStage {
    vc_owner: PortMap<Vec<bool>>,
    conflicts: u64,
}

impl VcAllocStage {
    pub(crate) fn new(num_vcs: usize) -> Self {
        VcAllocStage {
            vc_owner: PortMap::from_fn(|_| vec![false; num_vcs]),
            conflicts: 0,
        }
    }

    /// Answers `req` with a uniformly random free downstream VC, or
    /// `None` (counting the conflict) when every VC is owned.
    pub(crate) fn try_grant(
        &mut self,
        req: &VcAllocRequest,
        rng: &mut Rng,
    ) -> Option<VcAllocGrant> {
        let free: Vec<u8> = self.vc_owner[req.out_port]
            .iter()
            .enumerate()
            .filter(|(_, &owned)| !owned)
            .map(|(v, _)| v as u8)
            .collect();
        if free.is_empty() {
            self.conflicts += 1;
            return None;
        }
        let granted = *rng.choose(&free);
        self.vc_owner[req.out_port][granted as usize] = true;
        Some(VcAllocGrant { out_vc: granted })
    }

    /// Releases a downstream VC after its packet's tail traversed.
    pub(crate) fn release(&mut self, out_port: Port, out_vc: u8) {
        self.vc_owner[out_port][out_vc as usize] = false;
    }

    /// Requests that found every downstream VC owned.
    pub(crate) fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Dumps downstream-VC ownership per output port.
    pub(crate) fn snapshot(&self) -> Json {
        let owners: Vec<Json> = Port::ALL
            .iter()
            .map(|&port| {
                Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    (
                        "owned".into(),
                        Json::Arr(self.vc_owner[port].iter().map(|&o| Json::Bool(o)).collect()),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("vc_owner".into(), Json::Arr(owners)),
            ("conflicts".into(), Json::Num(self.conflicts as f64)),
        ])
    }
}

/// The switch-allocation + traversal stage: downstream credit and
/// occupancy accounting, the pluggable arbiter, and the traversal
/// counters.
#[derive(Clone, Debug)]
pub(crate) struct SwitchStage {
    /// Per-VC credits (PerVc mode).
    credits: PortMap<Vec<usize>>,
    /// Downstream occupancy per VC (SharedPool mode): the DAMQ
    /// admission rule needs per-VC counts, not just a total.
    downstream_occ: PortMap<Vec<usize>>,
    arbiter: SwitchArbiter,
    credit_stalls: u64,
    arb_retries: u64,
    data_flits_sent: u64,
}

impl SwitchStage {
    pub(crate) fn new(config: &VcConfig) -> Self {
        SwitchStage {
            credits: PortMap::from_fn(|_| vec![config.queue_depth; config.num_vcs]),
            downstream_occ: PortMap::from_fn(|_| vec![0; config.num_vcs]),
            arbiter: SwitchArbiter::new(config.switch_arbiter),
            credit_stalls: 0,
            arb_retries: 0,
            data_flits_sent: 0,
        }
    }

    /// True if one flit may be sent to (`out_port`, `out_vc`) now.
    pub(crate) fn has_credit(&self, out_port: Port, out_vc: u8, config: &VcConfig) -> bool {
        if out_port == Port::Local {
            return true;
        }
        match config.credit_mode {
            CreditMode::PerVc => self.credits[out_port][out_vc as usize] > 0,
            CreditMode::SharedPool => damq_admits(
                &self.downstream_occ[out_port],
                out_vc as usize,
                config.buffers_per_input(),
            ),
        }
    }

    /// Downstream space available to a packet-sized claim (cut-through
    /// and store-and-forward heads).
    pub(crate) fn available_for_packet(
        &self,
        out_port: Port,
        out_vc: u8,
        config: &VcConfig,
    ) -> usize {
        match config.credit_mode {
            CreditMode::PerVc => self.credits[out_port][out_vc as usize],
            CreditMode::SharedPool => {
                let occ: usize = self.downstream_occ[out_port].iter().sum();
                config.buffers_per_input().saturating_sub(occ)
            }
        }
    }

    /// Spends one downstream slot for a traversal.
    pub(crate) fn consume_credit(&mut self, out_port: Port, out_vc: u8, config: &VcConfig) {
        if out_port == Port::Local {
            return;
        }
        match config.credit_mode {
            CreditMode::PerVc => {
                let c = &mut self.credits[out_port][out_vc as usize];
                debug_assert!(*c > 0, "consuming credit below zero");
                *c -= 1;
            }
            CreditMode::SharedPool => {
                self.downstream_occ[out_port][out_vc as usize] += 1;
            }
        }
    }

    /// Applies a credit wire arriving on output `port` for `vc`.
    pub(crate) fn credit_returned(&mut self, port: Port, vc: u8, config: &VcConfig) {
        match config.credit_mode {
            CreditMode::PerVc => {
                let c = &mut self.credits[port][vc as usize];
                *c += 1;
                debug_assert!(*c <= config.queue_depth, "credit overflow");
            }
            CreditMode::SharedPool => {
                let c = &mut self.downstream_occ[port][vc as usize];
                debug_assert!(*c > 0, "credit underflow");
                *c -= 1;
            }
        }
    }

    /// Picks input `in_port`'s nomination among its ready bids.
    pub(crate) fn nominate(
        &mut self,
        in_port: Port,
        bids: &[SwitchBid],
        rng: &mut Rng,
    ) -> SwitchBid {
        self.arbiter.nominate(in_port, bids, rng)
    }

    /// Picks `out_port`'s winner; every loser is a retry.
    pub(crate) fn grant(
        &mut self,
        out_port: Port,
        contenders: &[SwitchContender],
        rng: &mut Rng,
    ) -> SwitchContender {
        let winner = self.arbiter.grant(out_port, contenders, rng);
        self.arb_retries += (contenders.len() - 1) as u64;
        winner
    }

    /// Counts a flit that lost this cycle to missing credit.
    pub(crate) fn note_credit_stall(&mut self) {
        self.credit_stalls += 1;
    }

    /// Counts a data flit forwarded onto an outgoing link.
    pub(crate) fn note_data_sent(&mut self) {
        self.data_flits_sent += 1;
    }

    pub(crate) fn credit_stalls(&self) -> u64 {
        self.credit_stalls
    }

    pub(crate) fn arb_retries(&self) -> u64 {
        self.arb_retries
    }

    pub(crate) fn data_flits_sent(&self) -> u64 {
        self.data_flits_sent
    }

    /// Dumps credit and downstream-occupancy accounting per output port.
    pub(crate) fn snapshot(&self) -> Json {
        let nums = |v: &[usize]| Json::Arr(v.iter().map(|&n| Json::Num(n as f64)).collect());
        let ports: Vec<Json> = Port::ALL
            .iter()
            .map(|&port| {
                Json::obj(vec![
                    ("port".into(), Json::str(format!("{port:?}"))),
                    ("credits".into(), nums(&self.credits[port])),
                    ("downstream_occ".into(), nums(&self.downstream_occ[port])),
                ])
            })
            .collect();
        Json::obj(vec![
            ("ports".into(), Json::Arr(ports)),
            ("credit_stalls".into(), Json::Num(self.credit_stalls as f64)),
            ("arb_retries".into(), Json::Num(self.arb_retries as f64)),
            (
                "data_flits_sent".into(),
                Json::Num(self.data_flits_sent as f64),
            ),
        ])
    }
}

/// The injection stage: the network interface's packet FIFO and the
/// local VC currently receiving the in-flight packet.
#[derive(Clone, Debug, Default)]
pub(crate) struct NiStage {
    fifo: VecDeque<(VcTag, DataFlit)>,
    current_vc: Option<u8>,
}

impl NiStage {
    /// Appends one flit of an injected packet.
    pub(crate) fn enqueue(&mut self, tag: VcTag, flit: DataFlit) {
        self.fifo.push_back((tag, flit));
    }

    /// The next flit waiting to enter the router, if any.
    pub(crate) fn front(&self) -> Option<&(VcTag, DataFlit)> {
        self.fifo.front()
    }

    /// Pops the front flit.
    pub(crate) fn pop(&mut self) -> Option<(VcTag, DataFlit)> {
        self.fifo.pop_front()
    }

    /// The local input VC mid-packet injection is bound to, if any.
    pub(crate) fn current_vc(&self) -> Option<u8> {
        self.current_vc
    }

    /// Binds injection to `vc` for the rest of the current packet.
    pub(crate) fn bind_vc(&mut self, vc: u8) {
        self.current_vc = Some(vc);
    }

    /// Releases the binding after the packet's tail entered the router.
    pub(crate) fn unbind_vc(&mut self) {
        self.current_vc = None;
    }

    /// Flits still waiting in the FIFO.
    pub(crate) fn len(&self) -> usize {
        self.fifo.len()
    }

    /// True if nothing is waiting to inject.
    pub(crate) fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Dumps the injection FIFO and its packet binding.
    pub(crate) fn snapshot(&self) -> Json {
        let fifo: Vec<Json> = self
            .fifo
            .iter()
            .map(|(tag, flit)| Json::str(format!("{tag:?} {flit:?}")))
            .collect();
        Json::obj(vec![
            (
                "current_vc".into(),
                match self.current_vc {
                    Some(v) => Json::Num(v as f64),
                    None => Json::Null,
                },
            ),
            ("fifo".into(), Json::Arr(fifo)),
        ])
    }
}
