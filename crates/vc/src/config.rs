//! Virtual-channel router configuration.

use noc_flow::ArbiterKind;

/// Granularity at which buffers and bandwidth are claimed (the paper's
/// related-work lineage: store-and-forward → virtual cut-through →
/// wormhole/VC allocate in ever smaller units).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AllocationUnit {
    /// Flit-sized units: wormhole / virtual-channel flow control.
    #[default]
    Flit,
    /// Packet-sized buffer claim downstream, but transmission may begin
    /// before the whole packet has arrived (virtual cut-through,
    /// [KerKle79]).
    CutThrough,
    /// Packet-sized claim *and* the entire packet must be buffered before
    /// any of it is forwarded (store-and-forward).
    StoreAndForward,
}

/// How downstream buffer space is accounted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CreditMode {
    /// Classic virtual-channel flow control: each VC owns a private
    /// `queue_depth`-flit queue and its own credit counter (Dally '92).
    #[default]
    PerVc,
    /// Dynamically-allocated shared pool [TamFra92]: the VCs of an input
    /// port share one pool of `num_vcs * queue_depth` buffers; credits
    /// count pool slots. The paper simulated this variant and "saw no
    /// improvement in network throughput" (Section 5).
    SharedPool,
}

/// Configuration of the virtual-channel baseline router.
///
/// # Examples
///
/// ```
/// use noc_vc::VcConfig;
///
/// let vc8 = VcConfig::vc8();
/// assert_eq!(vc8.num_vcs, 2);
/// assert_eq!(vc8.queue_depth, 4);
/// assert_eq!(vc8.buffers_per_input(), 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcConfig {
    /// Virtual channels per physical channel (`v_d`).
    pub num_vcs: usize,
    /// Flit buffers per virtual channel.
    pub queue_depth: usize,
    /// Buffer accounting mode.
    pub credit_mode: CreditMode,
    /// Buffer/bandwidth allocation granularity.
    pub allocation: AllocationUnit,
    /// Switch-allocation arbiter policy. [`ArbiterKind::Random`] is the
    /// paper's random arbitration; the alternatives swap the arbiter
    /// stage without touching the rest of the router.
    pub switch_arbiter: ArbiterKind,
}

impl VcConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_vcs` is zero, exceeds 255, or `queue_depth` is zero.
    pub fn new(num_vcs: usize, queue_depth: usize, credit_mode: CreditMode) -> Self {
        assert!(num_vcs > 0, "need at least one virtual channel");
        assert!(num_vcs <= 255, "vc count exceeds u8 id range");
        assert!(queue_depth > 0, "vc queues need at least one slot");
        VcConfig {
            num_vcs,
            queue_depth,
            credit_mode,
            allocation: AllocationUnit::Flit,
            switch_arbiter: ArbiterKind::Random,
        }
    }

    /// Virtual cut-through flow control [KerKle79]: a single queue per
    /// input sized for whole packets; the head claims a full packet
    /// buffer downstream before advancing, but cuts through as soon as it
    /// arrives.
    pub fn virtual_cut_through(packet_buffer: usize) -> Self {
        VcConfig {
            allocation: AllocationUnit::CutThrough,
            ..VcConfig::new(1, packet_buffer, CreditMode::PerVc)
        }
    }

    /// Store-and-forward flow control: like cut-through, but a packet is
    /// only forwarded once it has been received in full.
    pub fn store_and_forward(packet_buffer: usize) -> Self {
        VcConfig {
            allocation: AllocationUnit::StoreAndForward,
            ..VcConfig::new(1, packet_buffer, CreditMode::PerVc)
        }
    }

    /// Paper configuration VC8: 8 buffers per input as 2 VCs × 4 flits
    /// ("4 buffers in each virtual channel ... found to realize the best
    /// performance", footnote 10).
    pub fn vc8() -> Self {
        VcConfig::new(2, 4, CreditMode::PerVc)
    }

    /// Paper configuration VC16: 16 buffers per input as 4 VCs × 4 flits.
    pub fn vc16() -> Self {
        VcConfig::new(4, 4, CreditMode::PerVc)
    }

    /// Paper configuration VC32: 32 buffers per input as 8 VCs × 4 flits.
    pub fn vc32() -> Self {
        VcConfig::new(8, 4, CreditMode::PerVc)
    }

    /// Wormhole flow control: a single VC whose queue is the whole input
    /// buffer (the degenerate case the paper's related work starts from).
    pub fn wormhole(buffers_per_input: usize) -> Self {
        VcConfig::new(1, buffers_per_input, CreditMode::PerVc)
    }

    /// Shared-pool variant of an existing configuration [TamFra92].
    pub fn with_shared_pool(self) -> Self {
        VcConfig {
            credit_mode: CreditMode::SharedPool,
            ..self
        }
    }

    /// Same configuration with a different switch-allocation arbiter —
    /// the stage-swap knob: the arbiter is a plug-in stage, not a new
    /// router.
    pub fn with_switch_arbiter(self, switch_arbiter: ArbiterKind) -> Self {
        VcConfig {
            switch_arbiter,
            ..self
        }
    }

    /// Total data buffers per input channel (`b_d`).
    pub fn buffers_per_input(&self) -> usize {
        self.num_vcs * self.queue_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets() {
        assert_eq!(VcConfig::vc8().buffers_per_input(), 8);
        assert_eq!(VcConfig::vc16().buffers_per_input(), 16);
        assert_eq!(VcConfig::vc32().buffers_per_input(), 32);
        assert_eq!(VcConfig::vc16().num_vcs, 4);
        assert_eq!(VcConfig::vc32().num_vcs, 8);
        assert_eq!(VcConfig::vc8().credit_mode, CreditMode::PerVc);
    }

    #[test]
    fn wormhole_is_single_vc() {
        let w = VcConfig::wormhole(8);
        assert_eq!(w.num_vcs, 1);
        assert_eq!(w.queue_depth, 8);
        assert_eq!(w.buffers_per_input(), 8);
    }

    #[test]
    fn shared_pool_preserves_buffers() {
        let s = VcConfig::vc8().with_shared_pool();
        assert_eq!(s.credit_mode, CreditMode::SharedPool);
        assert_eq!(s.buffers_per_input(), 8);
    }

    #[test]
    fn arbiter_defaults_to_random_and_swaps() {
        assert_eq!(VcConfig::vc8().switch_arbiter, ArbiterKind::Random);
        let rr = VcConfig::vc8().with_switch_arbiter(ArbiterKind::RoundRobin);
        assert_eq!(rr.switch_arbiter, ArbiterKind::RoundRobin);
        assert_eq!(rr.num_vcs, VcConfig::vc8().num_vcs);
    }

    #[test]
    #[should_panic(expected = "at least one virtual channel")]
    fn zero_vcs_panics() {
        VcConfig::new(0, 4, CreditMode::PerVc);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_depth_panics() {
        VcConfig::new(2, 0, CreditMode::PerVc);
    }
}
