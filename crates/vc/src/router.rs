//! The virtual-channel flow-control router (Dally '92), the paper's
//! baseline.
//!
//! Pipeline model (documented in DESIGN.md): every flit arriving at cycle
//! `t` may traverse the switch from `t + 1` — the paper's "routing and
//! scheduling latency is 1 cycle": heads are routed and allocated a
//! virtual channel in the same cycle they traverse; flits blocked by
//! allocation or credits retry each cycle. VC and switch allocation are random,
//! matching the paper's "random arbitration". Credits return on the fast
//! credit wires; a buffer is therefore idle from the moment its flit
//! departs until the credit has propagated back and been processed — the
//! non-zero turnaround time flit-reservation flow control eliminates.
//!
//! The router is a composition of pipeline stages (see
//! [`crate::stages`] and `noc_flow::pipeline`): route compute, VC
//! allocation, switch allocation/traversal, input buffering and
//! injection each own their state; [`VcRouter::step`] is a thin driver
//! moving typed requests and grants between them. With
//! [`VcRouter::enable_contract_checks`] a `StageContractChecker`
//! verifies the inter-stage contracts every cycle.

use crate::stages::{NiStage, QueuedFlit, SwitchStage, VcAllocStage, VcInputStage};
use crate::{AllocationUnit, VcConfig};
use noc_engine::trace::{NullSink, TraceSink};
use noc_engine::{Cycle, Rng};
use noc_flow::pipeline::{StallScan, SwitchBid, SwitchContender, VcAllocRequest};
use noc_flow::{
    DataFlit, FlitType, LinkEvent, RouteCompute, Router, StageContractChecker, StepOutputs,
    TraceEmit, VcTag,
};
use noc_topology::{Mesh, NodeId, Port};
use noc_traffic::Packet;

/// A virtual-channel flow-control router.
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] disables
/// tracing at zero cost, [`VcRouter::with_tracer`] plugs a real sink in.
///
/// # Examples
///
/// ```
/// use noc_engine::Rng;
/// use noc_topology::{Mesh, NodeId};
/// use noc_vc::{VcConfig, VcRouter};
///
/// let mesh = Mesh::new(8, 8);
/// let router = VcRouter::new(mesh, NodeId::new(0), VcConfig::vc8(), Rng::from_seed(1));
/// use noc_flow::Router as _;
/// assert_eq!(router.data_buffer_capacity(noc_topology::Port::East), 8);
/// ```
#[derive(Clone, Debug)]
pub struct VcRouter<S: TraceSink = NullSink> {
    node: NodeId,
    config: VcConfig,
    rng: Rng,
    /// Route-compute stage (shared with the FR router family).
    route: RouteCompute,
    /// Input-buffer stage: per-lane queues and allocation state.
    input: VcInputStage,
    /// VC-allocation stage: downstream VC ownership.
    alloc: VcAllocStage,
    /// Switch-allocation + traversal stage: credits and the arbiter.
    switch: SwitchStage,
    /// Injection stage: the network-interface FIFO.
    ni: NiStage,
    /// Runtime verifier of the inter-stage contracts, off by default so
    /// the step loop carries no checking cost.
    contracts: Option<StageContractChecker>,
    sink: S,
}

/// Contention counters for the VC router, for the metrics layer.
///
/// Plain cumulative `u64`s updated inline; they are never read back by the
/// simulation, so they cannot perturb traces, and an idle router's step
/// reaches none of the counting sites, keeping idle-skipping bit-exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VcStats {
    /// Ready flits that lost to missing downstream credit (including
    /// packet-sized allocation waits in SAF/VCT modes).
    pub credit_stalls: u64,
    /// VC-allocation requests that found every downstream VC owned.
    pub vc_alloc_conflicts: u64,
    /// Switch bids that lost output arbitration and must retry.
    pub switch_arb_retries: u64,
    /// Data flits forwarded onto outgoing links (excludes ejections).
    pub data_flits_sent: u64,
    /// Route computations that detoured around a dead output link.
    pub masked_routes: u64,
}

impl VcRouter {
    /// Creates an untraced router for `node` of `mesh`.
    pub fn new(mesh: Mesh, node: NodeId, config: VcConfig, rng: Rng) -> Self {
        VcRouter::with_tracer(mesh, node, config, rng, NullSink)
    }
}

impl<S: TraceSink> VcRouter<S> {
    /// Creates a router that reports every event to `sink`.
    pub fn with_tracer(mesh: Mesh, node: NodeId, config: VcConfig, rng: Rng, sink: S) -> Self {
        if config.credit_mode == crate::CreditMode::SharedPool {
            assert!(
                config.buffers_per_input() >= config.num_vcs,
                "shared pool needs one dedicated slot per VC"
            );
        }
        VcRouter {
            node,
            config,
            rng,
            route: RouteCompute::new(mesh, node),
            input: VcInputStage::new(config.num_vcs),
            alloc: VcAllocStage::new(config.num_vcs),
            switch: SwitchStage::new(&config),
            ni: NiStage::default(),
            contracts: None,
            sink,
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> &VcConfig {
        &self.config
    }

    /// Cumulative contention counters since construction, assembled
    /// from the stages that own them.
    pub fn stats(&self) -> VcStats {
        VcStats {
            credit_stalls: self.switch.credit_stalls(),
            vc_alloc_conflicts: self.alloc.conflicts(),
            switch_arb_retries: self.switch.arb_retries(),
            data_flits_sent: self.switch.data_flits_sent(),
            masked_routes: self.route.masked_routes(),
        }
    }

    /// Turns on per-cycle verification of the inter-stage contracts.
    /// Each breach is surfaced as a `StageContractViolation` trace event
    /// and retained in the checker (see [`VcRouter::contract_checker`]).
    pub fn enable_contract_checks(&mut self) {
        self.contracts = Some(StageContractChecker::new());
    }

    /// The stage-contract checker, if enabled.
    pub fn contract_checker(&self) -> Option<&StageContractChecker> {
        self.contracts.as_ref()
    }

    /// Test hook: spends one downstream credit out of band.
    #[cfg(test)]
    fn consume_credit(&mut self, out_port: Port, out_vc: u8) {
        self.switch.consume_credit(out_port, out_vc, &self.config);
    }

    /// Phase 1: routing and virtual-channel allocation for head flits.
    ///
    /// The driver collects one typed [`VcAllocRequest`] per lane that is
    /// routed but holds no output VC, shuffles them (the paper's random
    /// allocation order) and plays each against the allocation stage.
    fn allocate_vcs(&mut self, now: Cycle) {
        let mut requests: Vec<VcAllocRequest> = Vec::new();
        for &in_port in &Port::ALL {
            for vc in 0..self.config.num_vcs {
                if let Some(dest) = self.input.pending_route(in_port, vc, now) {
                    let out = self.route.route(dest);
                    self.input.set_route(in_port, vc, out, now);
                    if out == Port::Local {
                        // Ejection needs no downstream VC.
                        continue;
                    }
                }
                if let Some(req) = self.input.alloc_request(in_port, vc) {
                    requests.push(req);
                }
            }
        }
        self.rng.shuffle(&mut requests);
        for req in requests {
            if let Some(ck) = self.contracts.as_mut() {
                ck.note_vc_request(req);
            }
            if let Some(grant) = self.alloc.try_grant(&req, &mut self.rng) {
                if let Some(ck) = self.contracts.as_mut() {
                    ck.note_vc_grant(&req, grant);
                }
                self.input.apply_grant(&req, grant, now);
            }
        }
    }

    /// Per-lane readiness gates for switch allocation; returns the
    /// lane's bid when every gate passes.
    fn switch_bid(&mut self, in_port: Port, vc: usize, now: Cycle) -> Option<SwitchBid> {
        let front = self.input.front(in_port, vc)?;
        let lane = self.input.lane(in_port, vc);
        let (route, out_vc) = match (lane.route, lane.out_vc) {
            (Some(r), Some(v)) => (r, v),
            _ => return None,
        };
        if front.arrived + 1 > now {
            return None;
        }
        if front.tag.ty.is_head() && lane.switch_ready_at > now {
            return None;
        }
        if !self.switch.has_credit(route, out_vc, &self.config) {
            self.switch.note_credit_stall();
            return None;
        }
        // Packet-sized allocation (store-and-forward and virtual
        // cut-through): the head advances only once a whole packet
        // buffer is free downstream ...
        if front.tag.ty.is_head()
            && route != Port::Local
            && self.config.allocation != AllocationUnit::Flit
        {
            let needed = front.flit.length as usize;
            assert!(
                needed <= self.config.queue_depth,
                "a {needed}-flit packet cannot fit the {}-flit packet buffer",
                self.config.queue_depth
            );
            if self
                .switch
                .available_for_packet(route, out_vc, &self.config)
                < needed
            {
                self.switch.note_credit_stall();
                return None;
            }
        }
        // ... and store-and-forward additionally waits for the tail to
        // arrive before forwarding anything.
        if front.tag.ty.is_head()
            && self.config.allocation == AllocationUnit::StoreAndForward
            && !self.input.tail_buffered(in_port, vc, front.flit.packet)
        {
            return None;
        }
        Some(SwitchBid {
            in_vc: vc,
            out_port: route,
            arrived: front.arrived,
        })
    }

    /// Phase 2: switch allocation and traversal. Each input port
    /// nominates one ready bid, each output port grants one nomination;
    /// both picks run through the configured arbiter stage.
    fn traverse_switch(&mut self, now: Cycle, out: &mut StepOutputs) {
        let mut nominations: Vec<(Port, SwitchBid)> = Vec::new();
        for &in_port in &Port::ALL {
            let mut bids: Vec<SwitchBid> = Vec::new();
            for vc in 0..self.config.num_vcs {
                if let Some(bid) = self.switch_bid(in_port, vc, now) {
                    bids.push(bid);
                }
            }
            if !bids.is_empty() {
                let chosen = self.switch.nominate(in_port, &bids, &mut self.rng);
                if let Some(ck) = self.contracts.as_mut() {
                    ck.note_nomination(in_port, chosen);
                }
                nominations.push((in_port, chosen));
            }
        }
        for &out_port in &Port::ALL {
            let contenders: Vec<SwitchContender> = nominations
                .iter()
                .filter(|&&(_, b)| b.out_port == out_port)
                .map(|&(p, b)| SwitchContender {
                    in_port: p,
                    in_vc: b.in_vc,
                    arrived: b.arrived,
                })
                .collect();
            if contenders.is_empty() {
                continue;
            }
            let winner = self.switch.grant(out_port, &contenders, &mut self.rng);
            if let Some(ck) = self.contracts.as_mut() {
                ck.note_switch_grant(out_port, winner);
                ck.note_traversal(out_port);
            }
            self.forward_flit(winner.in_port, winner.in_vc, out_port, now, out);
        }
    }

    fn forward_flit(
        &mut self,
        in_port: Port,
        in_vc: usize,
        out_port: Port,
        now: Cycle,
        out: &mut StepOutputs,
    ) {
        let out_vc = self
            .input
            .lane(in_port, in_vc)
            .out_vc
            .expect("winner must hold an output VC");
        let queued = self.input.pop_front(in_port, in_vc);
        self.sink
            .queue_deq(now, self.node, in_port, in_vc as u8, &queued.flit);
        self.switch.consume_credit(out_port, out_vc, &self.config);
        if out_port == Port::Local {
            out.eject(queued.flit, now);
        } else {
            self.switch.note_data_sent();
            self.sink
                .vc_data_sent(now, self.node, out_port, out_vc, &queued.flit);
            out.send(
                out_port,
                LinkEvent::VcData(
                    VcTag {
                        vc: out_vc,
                        ty: queued.tag.ty,
                    },
                    queued.flit,
                ),
            );
        }
        // Return the freed buffer slot upstream. Local-input slots are
        // observed directly by the network interface, so no wire credit.
        if in_port != Port::Local {
            self.sink.credit_sent(now, self.node, in_port, in_vc as u8);
            out.send(in_port, LinkEvent::VcCredit { vc: in_vc as u8 });
        }
        if queued.tag.ty.is_tail() {
            self.input.end_packet(in_port, in_vc);
            if out_port != Port::Local {
                self.alloc.release(out_port, out_vc);
            }
        }
    }

    /// Phase 3: move at most one flit per cycle from the injection FIFO
    /// into a local input VC.
    fn inject_from_ni(&mut self, now: Cycle) {
        let (tag, _) = match self.ni.front() {
            Some(f) => *f,
            None => return,
        };
        let vc = if tag.ty.is_head() {
            // Pick a local VC with space for the new packet.
            let candidates: Vec<u8> = (0..self.config.num_vcs)
                .filter(|&v| self.input.has_space(Port::Local, v, &self.config))
                .map(|v| v as u8)
                .collect();
            if candidates.is_empty() {
                return;
            }
            let chosen = *self.rng.choose(&candidates);
            self.ni.bind_vc(chosen);
            chosen
        } else {
            match self.ni.current_vc() {
                Some(v) if self.input.has_space(Port::Local, v as usize, &self.config) => v,
                _ => return,
            }
        };
        let (mut tag, flit) = self.ni.pop().expect("front checked");
        if tag.ty.is_tail() {
            self.ni.unbind_vc();
        }
        tag.vc = vc;
        self.sink.flit_injected(now, self.node, &flit);
        self.sink.queue_enq(now, self.node, Port::Local, vc, &flit);
        self.input.push(
            Port::Local,
            vc as usize,
            QueuedFlit {
                tag,
                flit,
                arrived: now,
            },
        );
    }
}

impl<S: TraceSink> Router for VcRouter<S> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn receive(&mut self, port: Port, event: LinkEvent, now: Cycle) {
        match event {
            LinkEvent::VcData(tag, flit) => {
                let vc = tag.vc as usize;
                assert!(vc < self.config.num_vcs, "vc id out of range");
                assert!(
                    self.input.has_space(port, vc, &self.config),
                    "upstream overflowed input {port} vc {vc} at node {}",
                    self.node
                );
                self.sink.queue_enq(now, self.node, port, tag.vc, &flit);
                self.input.push(
                    port,
                    vc,
                    QueuedFlit {
                        tag,
                        flit,
                        arrived: now,
                    },
                );
            }
            LinkEvent::VcCredit { vc } => {
                // `port` names the *output* port this credit refers to.
                self.switch.credit_returned(port, vc, &self.config);
            }
            other => panic!("VC router received foreign event {other:?}"),
        }
    }

    fn try_inject(&mut self, packet: Packet, _now: Cycle) -> bool {
        for seq in 0..packet.length_flits {
            let ty = FlitType::for_position(seq, packet.length_flits);
            self.ni.enqueue(
                VcTag { vc: 0, ty },
                DataFlit {
                    packet: packet.id,
                    seq,
                    length: packet.length_flits,
                    dest: packet.dest,
                    created_at: packet.created_at,
                    crc_ok: true,
                },
            );
        }
        true
    }

    fn step(&mut self, now: Cycle, out: &mut StepOutputs) {
        if let Some(ck) = self.contracts.as_mut() {
            ck.begin_cycle();
        }
        self.allocate_vcs(now);
        self.traverse_switch(now, out);
        self.inject_from_ni(now);
        if let Some(ck) = self.contracts.as_ref() {
            for &code in ck.end_cycle() {
                self.sink.stage_violation(now, self.node, code);
            }
        }
    }

    fn occupied_data_buffers(&self, port: Port) -> usize {
        self.input.occupancy(port)
    }

    fn data_buffer_capacity(&self, _port: Port) -> usize {
        self.config.buffers_per_input()
    }

    fn queued_flits(&self) -> usize {
        let buffered: usize = Port::ALL.iter().map(|&p| self.input.occupancy(p)).sum();
        buffered + self.ni.len()
    }

    /// Quiescent when every input VC queue and the injection FIFO are
    /// empty. Residual `route`/`out_vc` state on a drained VC is inert:
    /// `allocate_vcs` and `traverse_switch` act only on queued flits, and
    /// `inject_from_ni` returns before any RNG draw when the FIFO is
    /// empty, so `step` is a pure no-op in this state.
    fn is_idle(&self) -> bool {
        self.ni.is_empty() && self.input.all_empty()
    }

    fn collect_counters(&self, out: &mut noc_flow::RouterCounters) {
        out.credit_stalls = self.switch.credit_stalls();
        out.vc_alloc_conflicts = self.alloc.conflicts();
        out.switch_arb_retries = self.switch.arb_retries();
        out.data_flits_sent = self.switch.data_flits_sent();
        out.masked_routes = self.route.masked_routes();
    }

    fn on_link_dead(&mut self, port: Port) {
        self.route.mask_dead(port);
    }

    /// Full post-mortem dump: every pipeline stage's live state, keyed
    /// by stage name (see DESIGN.md §12 for the schema).
    fn state_snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::{Json, Snapshot};
        Json::obj(vec![
            ("family".into(), Json::str("vc")),
            ("node".into(), Json::Num(self.node.raw() as f64)),
            ("route".into(), self.route.snapshot()),
            ("input".into(), self.input.snapshot()),
            ("alloc".into(), self.alloc.snapshot()),
            ("switch".into(), self.switch.snapshot()),
            ("ni".into(), self.ni.snapshot()),
        ])
    }

    /// Classifies every front flit that was eligible this cycle but did
    /// not move. Mirrors the gating order of [`VcRouter::allocate_vcs`]
    /// and [`VcRouter::traverse_switch`]: a front with `arrived < now`
    /// still queued after the step lost at exactly one gate.
    ///
    /// Waits that are not a contention loss emit nothing and fall into
    /// the collector's residual buffer-wait bucket: a head still behind
    /// its predecessor packet (no route yet), a store-and-forward head
    /// waiting for its own tail, and all non-front flits.
    fn emit_stall_provenance(&mut self, now: Cycle) {
        let scan = match StallScan::begin(&self.sink, now, self.node) {
            Some(s) => s,
            None => return,
        };
        for &in_port in &Port::ALL {
            for vc in 0..self.config.num_vcs {
                let front = match self.input.front(in_port, vc) {
                    Some(f) if scan.eligible(f.arrived) => f,
                    _ => continue,
                };
                let (packet, seq) = (front.flit.packet, front.flit.seq);
                let lane = self.input.lane(in_port, vc);
                let (route, out_vc) = match (lane.route, lane.out_vc) {
                    (Some(r), Some(v)) => (r, v),
                    (Some(_), None) => {
                        scan.vc_alloc_stall(&mut self.sink, packet, seq);
                        continue;
                    }
                    // Head exposed mid-cycle by a departing tail: it has
                    // not been routed yet, so this cycle is queue wait,
                    // not a contention loss.
                    (None, _) => continue,
                };
                if front.tag.ty.is_head() && lane.switch_ready_at > now {
                    continue;
                }
                if !self.switch.has_credit(route, out_vc, &self.config) {
                    scan.credit_stall(&mut self.sink, packet, seq);
                    continue;
                }
                if front.tag.ty.is_head()
                    && route != Port::Local
                    && self.config.allocation != AllocationUnit::Flit
                {
                    let needed = front.flit.length as usize;
                    if self
                        .switch
                        .available_for_packet(route, out_vc, &self.config)
                        < needed
                    {
                        scan.credit_stall(&mut self.sink, packet, seq);
                        continue;
                    }
                }
                if front.tag.ty.is_head()
                    && self.config.allocation == AllocationUnit::StoreAndForward
                    && !self.input.tail_buffered(in_port, vc, packet)
                {
                    continue;
                }
                scan.switch_stall(&mut self.sink, packet, seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VcConfig;
    use noc_traffic::PacketId;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn router_at(x: u16, y: u16) -> VcRouter {
        let m = mesh();
        VcRouter::new(m, m.node_at(x, y), VcConfig::vc8(), Rng::from_seed(1))
    }

    fn packet(m: Mesh, src: (u16, u16), dst: (u16, u16), len: u32) -> Packet {
        Packet {
            id: PacketId::new(7),
            src: m.node_at(src.0, src.1),
            dest: m.node_at(dst.0, dst.1),
            length_flits: len,
            created_at: Cycle::ZERO,
        }
    }

    fn drive(router: &mut VcRouter, from: Cycle, to: Cycle) -> Vec<(Cycle, StepOutputs)> {
        let mut log = Vec::new();
        for t in from.raw()..to.raw() {
            let mut out = StepOutputs::new();
            router.step(Cycle::new(t), &mut out);
            log.push((Cycle::new(t), out));
        }
        log
    }

    /// Steps the router, echoing a credit back (one cycle later) for every
    /// data flit it sends, emulating an uncongested downstream neighbour.
    fn drive_with_credit_echo(
        router: &mut VcRouter,
        from: Cycle,
        to: Cycle,
    ) -> Vec<(Cycle, StepOutputs)> {
        let mut log = Vec::new();
        let mut pending: Vec<(Cycle, Port, u8)> = Vec::new();
        for t in from.raw()..to.raw() {
            let now = Cycle::new(t);
            pending.retain(|&(due, port, vc)| {
                if due <= now {
                    router.receive(port, LinkEvent::VcCredit { vc }, now);
                    false
                } else {
                    true
                }
            });
            let mut out = StepOutputs::new();
            router.step(now, &mut out);
            for (port, e) in &out.sends {
                if let LinkEvent::VcData(tag, _) = e {
                    pending.push((now + 1, *port, tag.vc));
                }
            }
            log.push((now, out));
        }
        log
    }

    #[test]
    fn injected_packet_departs_east() {
        let m = mesh();
        let mut r = router_at(0, 0);
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let log = drive_with_credit_echo(&mut r, Cycle::ZERO, Cycle::new(20));
        let sent: Vec<(Cycle, FlitType)> = log
            .iter()
            .flat_map(|(t, o)| {
                o.sends.iter().filter_map(move |(p, e)| match e {
                    LinkEvent::VcData(tag, _) => {
                        assert_eq!(*p, Port::East);
                        Some((*t, tag.ty))
                    }
                    _ => None,
                })
            })
            .collect();
        assert_eq!(sent.len(), 5, "all five flits leave");
        assert!(sent[0].1.is_head());
        assert!(sent[4].1.is_tail());
        // Head: injected at cycle 0 (arrives in local VC), routed and
        // switched during cycle 1 — the 1-cycle routing/scheduling latency.
        assert_eq!(sent[0].0, Cycle::new(1));
        // Body flits stream one per cycle behind the head.
        for w in sent.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
        assert_eq!(r.queued_flits(), 0);
    }

    #[test]
    fn local_destination_is_ejected() {
        let m = mesh();
        let mut r = router_at(1, 1);
        // A packet arriving from the west destined for this node.
        for seq in 0..3u32 {
            let ty = FlitType::for_position(seq, 3);
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag { vc: 0, ty },
                    DataFlit {
                        packet: PacketId::new(1),
                        seq,
                        length: 3,
                        dest: m.node_at(1, 1),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::new(seq as u64),
            );
        }
        let log = drive(&mut r, Cycle::ZERO, Cycle::new(12));
        let ejected: Vec<u32> = log
            .iter()
            .flat_map(|(_, o)| o.ejections.iter().map(|e| e.flit.seq))
            .collect();
        assert_eq!(ejected, vec![0, 1, 2]);
        // Credits went back on the west input.
        let credits = log
            .iter()
            .flat_map(|(_, o)| o.sends.iter())
            .filter(|(p, e)| *p == Port::West && matches!(e, LinkEvent::VcCredit { .. }))
            .count();
        assert_eq!(credits, 3);
    }

    #[test]
    fn no_credit_blocks_departure() {
        let m = mesh();
        let mut r = router_at(0, 0);
        // Drain all 4 credits of every VC on the east output by injecting
        // a long packet and never crediting back.
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 21), Cycle::ZERO));
        let log = drive(&mut r, Cycle::ZERO, Cycle::new(40));
        let sent: Vec<u8> = log
            .iter()
            .flat_map(|(_, o)| o.sends.iter())
            .filter_map(|(_, e)| match e {
                LinkEvent::VcData(tag, _) => Some(tag.vc),
                _ => None,
            })
            .collect();
        // Only queue_depth flits can leave before credits run dry.
        assert_eq!(sent.len(), VcConfig::vc8().queue_depth);
        // Returning one credit on the VC in use releases exactly one more.
        let used_vc = sent[0];
        r.receive(
            Port::East,
            LinkEvent::VcCredit { vc: used_vc },
            Cycle::new(40),
        );
        let log = drive(&mut r, Cycle::new(40), Cycle::new(45));
        let sent: usize = log
            .iter()
            .flat_map(|(_, o)| o.sends.iter())
            .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
            .count();
        assert_eq!(sent, 1);
    }

    #[test]
    fn vc_allocation_is_exclusive_until_tail() {
        let m = mesh();
        let mut r = router_at(0, 0);
        // Two packets competing for the east output from different inputs
        // on a 1-VC (wormhole) router: the second must wait for the tail
        // of the first.
        let mut r1 = VcRouter::new(m, m.node_at(1, 0), VcConfig::wormhole(4), Rng::from_seed(2));
        std::mem::swap(&mut r, &mut r1);
        for (port, pid) in [(Port::West, 10u64), (Port::North, 20u64)] {
            for seq in 0..3u32 {
                let ty = FlitType::for_position(seq, 3);
                r.receive(
                    port,
                    LinkEvent::VcData(
                        VcTag { vc: 0, ty },
                        DataFlit {
                            packet: PacketId::new(pid),
                            seq,
                            length: 3,
                            dest: m.node_at(3, 0),
                            created_at: Cycle::ZERO,
                            crc_ok: true,
                        },
                    ),
                    Cycle::ZERO,
                );
            }
        }
        // Echo a credit for each departed flit so only VC ownership
        // constrains progress.
        let mut sends = Vec::new();
        for t in 0..30u64 {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (p, e) in out.sends {
                if let LinkEvent::VcData(tag, f) = e {
                    assert_eq!(p, Port::East);
                    sends.push((t, f.packet.raw(), tag.ty));
                    r.receive(
                        Port::East,
                        LinkEvent::VcCredit { vc: tag.vc },
                        Cycle::new(t),
                    );
                }
            }
        }
        assert_eq!(sends.len(), 6, "both packets fully forwarded: {sends:?}");
        // Flits of the two packets must not interleave on the single VC.
        let order: Vec<u64> = sends.iter().map(|&(_, pid, _)| pid).collect();
        let first = order[0];
        assert_eq!(&order[..3], &[first; 3][..]);
        assert_ne!(order[3], first);
        assert_eq!(&order[3..], &[order[3]; 3][..]);
    }

    #[test]
    fn occupancy_accounting() {
        let m = mesh();
        let mut r = router_at(1, 1);
        assert_eq!(r.occupied_data_buffers(Port::West), 0);
        r.receive(
            Port::West,
            LinkEvent::VcData(
                VcTag {
                    vc: 1,
                    ty: FlitType::HeadTail,
                },
                DataFlit {
                    packet: PacketId::new(0),
                    seq: 0,
                    length: 1,
                    dest: m.node_at(3, 1),
                    created_at: Cycle::ZERO,
                    crc_ok: true,
                },
            ),
            Cycle::ZERO,
        );
        assert_eq!(r.occupied_data_buffers(Port::West), 1);
        assert_eq!(r.data_buffer_capacity(Port::West), 8);
        assert_eq!(r.queued_flits(), 1);
    }

    #[test]
    #[should_panic(expected = "overflowed input")]
    fn input_overflow_panics() {
        let m = mesh();
        let mut r = router_at(1, 1);
        for seq in 0..5u32 {
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag {
                        vc: 0,
                        ty: FlitType::Body,
                    },
                    DataFlit {
                        packet: PacketId::new(0),
                        seq,
                        length: 9,
                        dest: m.node_at(3, 1),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::ZERO,
            );
        }
    }

    #[test]
    fn shared_pool_allows_one_vc_past_queue_depth() {
        let m = mesh();
        let cfg = VcConfig::vc8().with_shared_pool();
        let mut r = VcRouter::new(m, m.node_at(1, 1), cfg, Rng::from_seed(3));
        // 6 flits on one VC: legal under the shared pool (cap 8), illegal
        // under per-VC queues (cap 4).
        for seq in 0..6u32 {
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag {
                        vc: 0,
                        ty: FlitType::Body,
                    },
                    DataFlit {
                        packet: PacketId::new(0),
                        seq,
                        length: 9,
                        dest: m.node_at(3, 1),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::ZERO,
            );
        }
        assert_eq!(r.occupied_data_buffers(Port::West), 6);
    }

    #[test]
    fn contract_checker_stays_clean_under_load() {
        let m = mesh();
        let mut r = router_at(0, 0);
        r.enable_contract_checks();
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        drive_with_credit_echo(&mut r, Cycle::ZERO, Cycle::new(30));
        let ck = r.contract_checker().expect("checker enabled");
        ck.assert_clean();
        assert_eq!(r.queued_flits(), 0);
    }
}

#[cfg(test)]
mod packet_allocation_tests {
    use super::*;
    use crate::AllocationUnit;
    use noc_traffic::PacketId;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn packet(m: Mesh, len: u32) -> Packet {
        Packet {
            id: PacketId::new(3),
            src: m.node_at(0, 0),
            dest: m.node_at(3, 0),
            length_flits: len,
            created_at: Cycle::ZERO,
        }
    }

    /// Sends cycles forward, returning (cycle, flit type) of data sends.
    fn departures(r: &mut VcRouter, cycles: u64) -> Vec<(u64, FlitType)> {
        let mut out_log = Vec::new();
        for t in 0..cycles {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (_, e) in out.sends {
                if let LinkEvent::VcData(tag, _) = e {
                    out_log.push((t, tag.ty));
                }
            }
        }
        out_log
    }

    #[test]
    fn cut_through_claims_whole_packet_buffer() {
        let m = mesh();
        let mut r = VcRouter::new(
            m,
            m.node_at(0, 0),
            VcConfig::virtual_cut_through(8),
            Rng::from_seed(2),
        );
        assert!(r.try_inject(packet(m, 5), Cycle::ZERO));
        // With full credits (8 ≥ 5) the packet streams out cut-through.
        let sent = departures(&mut r, 20);
        assert_eq!(sent.len(), 5);
        // Consume 4 credits so only 4 remain (< 5): the next head must
        // stall even though *some* space exists downstream.
        let mut r = VcRouter::new(
            m,
            m.node_at(0, 0),
            VcConfig::virtual_cut_through(8),
            Rng::from_seed(2),
        );
        for _ in 0..4 {
            r.consume_credit(Port::East, 0);
        }
        assert!(r.try_inject(packet(m, 5), Cycle::ZERO));
        let sent = departures(&mut r, 20);
        assert!(sent.is_empty(), "head must wait for a full packet buffer");
        // Returning one credit (5 free) releases the packet.
        r.receive(Port::East, LinkEvent::VcCredit { vc: 0 }, Cycle::new(20));
        let mut out = StepOutputs::new();
        for t in 20..40 {
            r.step(Cycle::new(t), &mut out);
        }
        let sent = out
            .sends
            .iter()
            .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
            .count();
        assert_eq!(sent, 5);
    }

    #[test]
    fn store_and_forward_waits_for_the_tail() {
        let m = mesh();
        let mut r = VcRouter::new(
            m,
            m.node_at(1, 0),
            VcConfig::store_and_forward(8),
            Rng::from_seed(2),
        );
        // Flits of a 4-flit packet trickle in one per 3 cycles from the
        // west; nothing may leave before the tail has arrived.
        let mut sent_before_tail = 0;
        let mut all_sent = Vec::new();
        let mut t = 0u64;
        for seq in 0..4u32 {
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag {
                        vc: 0,
                        ty: FlitType::for_position(seq, 4),
                    },
                    DataFlit {
                        packet: PacketId::new(9),
                        seq,
                        length: 4,
                        dest: m.node_at(3, 0),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::new(t),
            );
            for _ in 0..3 {
                let mut out = StepOutputs::new();
                r.step(Cycle::new(t), &mut out);
                let n = out
                    .sends
                    .iter()
                    .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
                    .count();
                if seq < 3 {
                    sent_before_tail += n;
                }
                all_sent.push(n);
                t += 1;
            }
        }
        // Drain after the tail arrived.
        for _ in 0..10 {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            all_sent.push(
                out.sends
                    .iter()
                    .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
                    .count(),
            );
            t += 1;
        }
        assert_eq!(sent_before_tail, 0, "store-and-forward leaked flits early");
        assert_eq!(all_sent.iter().sum::<usize>(), 4, "whole packet forwarded");
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn packet_longer_than_buffer_panics() {
        let m = mesh();
        let mut r = VcRouter::new(
            m,
            m.node_at(0, 0),
            VcConfig::virtual_cut_through(4),
            Rng::from_seed(2),
        );
        assert!(r.try_inject(packet(m, 5), Cycle::ZERO));
        departures(&mut r, 10);
    }

    #[test]
    fn flit_mode_is_unaffected() {
        assert_eq!(VcConfig::vc8().allocation, AllocationUnit::Flit);
        assert_eq!(
            VcConfig::virtual_cut_through(8).allocation,
            AllocationUnit::CutThrough
        );
        assert_eq!(
            VcConfig::store_and_forward(8).allocation,
            AllocationUnit::StoreAndForward
        );
    }
}
