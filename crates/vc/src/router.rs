//! The virtual-channel flow-control router (Dally '92), the paper's
//! baseline.
//!
//! Pipeline model (documented in DESIGN.md): every flit arriving at cycle
//! `t` may traverse the switch from `t + 1` — the paper's "routing and
//! scheduling latency is 1 cycle": heads are routed and allocated a
//! virtual channel in the same cycle they traverse; flits blocked by
//! allocation or credits retry each cycle. VC and switch allocation are random,
//! matching the paper's "random arbitration". Credits return on the fast
//! credit wires; a buffer is therefore idle from the moment its flit
//! departs until the credit has propagated back and been processed — the
//! non-zero turnaround time flit-reservation flow control eliminates.

use crate::{AllocationUnit, CreditMode, VcConfig};
use noc_engine::trace::{NullSink, TraceSink};
use noc_engine::{Cycle, Rng};
use noc_flow::{DataFlit, FlitType, LinkEvent, Router, StepOutputs, TraceEmit, VcTag};
use noc_topology::{masked_xy_route, xy_route, Mesh, NodeId, Port, PortMap};
use noc_traffic::Packet;
use std::collections::VecDeque;

/// One buffered flit with its arrival cycle.
#[derive(Clone, Debug)]
struct QueuedFlit {
    tag: VcTag,
    flit: DataFlit,
    arrived: Cycle,
}

/// Per-input-VC state machine.
#[derive(Clone, Debug)]
struct InputVc {
    queue: VecDeque<QueuedFlit>,
    /// Output port of the packet currently draining through this VC.
    route: Option<Port>,
    /// Downstream VC granted to that packet.
    out_vc: Option<u8>,
    /// Earliest cycle the (head) flit may bid for the switch.
    switch_ready_at: Cycle,
}

impl InputVc {
    fn new() -> Self {
        InputVc {
            queue: VecDeque::new(),
            route: None,
            out_vc: None,
            switch_ready_at: Cycle::ZERO,
        }
    }
}

/// Per-output-port allocation and credit state.
#[derive(Clone, Debug)]
struct OutputPort {
    /// Which downstream VCs are owned by an in-flight packet.
    vc_owner: Vec<bool>,
    /// Per-VC credits (PerVc mode).
    credits: Vec<usize>,
    /// Downstream occupancy per VC (SharedPool mode): the DAMQ admission
    /// rule needs per-VC counts, not just a total.
    downstream_occ: Vec<usize>,
}

/// Network-interface injection state.
#[derive(Clone, Debug, Default)]
struct NetworkInterface {
    fifo: VecDeque<(VcTag, DataFlit)>,
    /// Local input VC currently receiving the in-flight packet.
    current_vc: Option<u8>,
}

/// A virtual-channel flow-control router.
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] disables
/// tracing at zero cost, [`VcRouter::with_tracer`] plugs a real sink in.
///
/// # Examples
///
/// ```
/// use noc_engine::Rng;
/// use noc_topology::{Mesh, NodeId};
/// use noc_vc::{VcConfig, VcRouter};
///
/// let mesh = Mesh::new(8, 8);
/// let router = VcRouter::new(mesh, NodeId::new(0), VcConfig::vc8(), Rng::from_seed(1));
/// use noc_flow::Router as _;
/// assert_eq!(router.data_buffer_capacity(noc_topology::Port::East), 8);
/// ```
#[derive(Clone, Debug)]
pub struct VcRouter<S: TraceSink = NullSink> {
    node: NodeId,
    mesh: Mesh,
    config: VcConfig,
    rng: Rng,
    inputs: PortMap<Vec<InputVc>>,
    outputs: PortMap<OutputPort>,
    ni: NetworkInterface,
    stats: VcStats,
    /// Output ports masked out of routing after a permanent link failure
    /// (bit `1 << port.index()`); see [`Router::on_link_dead`].
    dead_mask: u8,
    sink: S,
}

/// Contention counters for the VC router, for the metrics layer.
///
/// Plain cumulative `u64`s updated inline; they are never read back by the
/// simulation, so they cannot perturb traces, and an idle router's step
/// reaches none of the counting sites, keeping idle-skipping bit-exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VcStats {
    /// Ready flits that lost to missing downstream credit (including
    /// packet-sized allocation waits in SAF/VCT modes).
    pub credit_stalls: u64,
    /// VC-allocation requests that found every downstream VC owned.
    pub vc_alloc_conflicts: u64,
    /// Switch bids that lost output arbitration and must retry.
    pub switch_arb_retries: u64,
    /// Data flits forwarded onto outgoing links (excludes ejections).
    pub data_flits_sent: u64,
    /// Route computations that detoured around a dead output link.
    pub masked_routes: u64,
}

impl VcRouter {
    /// Creates an untraced router for `node` of `mesh`.
    pub fn new(mesh: Mesh, node: NodeId, config: VcConfig, rng: Rng) -> Self {
        VcRouter::with_tracer(mesh, node, config, rng, NullSink)
    }
}

impl<S: TraceSink> VcRouter<S> {
    /// Creates a router that reports every event to `sink`.
    pub fn with_tracer(mesh: Mesh, node: NodeId, config: VcConfig, rng: Rng, sink: S) -> Self {
        let inputs = PortMap::from_fn(|_| (0..config.num_vcs).map(|_| InputVc::new()).collect());
        if config.credit_mode == CreditMode::SharedPool {
            assert!(
                config.buffers_per_input() >= config.num_vcs,
                "shared pool needs one dedicated slot per VC"
            );
        }
        let outputs = PortMap::from_fn(|_| OutputPort {
            vc_owner: vec![false; config.num_vcs],
            credits: vec![config.queue_depth; config.num_vcs],
            downstream_occ: vec![0; config.num_vcs],
        });
        VcRouter {
            node,
            mesh,
            config,
            rng,
            inputs,
            outputs,
            ni: NetworkInterface::default(),
            stats: VcStats::default(),
            dead_mask: 0,
            sink,
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> &VcConfig {
        &self.config
    }

    /// Cumulative contention counters since construction.
    pub fn stats(&self) -> &VcStats {
        &self.stats
    }

    fn route_to(&mut self, dest: NodeId) -> Port {
        if dest == self.node {
            return Port::Local;
        }
        let out = masked_xy_route(self.mesh, self.node, dest, self.dead_mask)
            .expect("non-local destination must route");
        if self.dead_mask != 0 && Some(out) != xy_route(self.mesh, self.node, dest) {
            self.stats.masked_routes += 1;
        }
        out
    }

    fn input_port_occupancy(&self, port: Port) -> usize {
        self.inputs[port].iter().map(|vc| vc.queue.len()).sum()
    }

    /// DAMQ admission rule [TamFra92]: every VC keeps one dedicated slot
    /// so an empty VC can always accept a flit (preserving the per-VC
    /// progress deadlock-freedom argument of private queues); the
    /// remaining `b_d - v` slots are shared. A VC holding `o` flits uses
    /// one dedicated slot plus `o - 1` shared slots.
    fn damq_admits(per_vc: &[usize], vc: usize, capacity: usize) -> bool {
        if per_vc[vc] == 0 {
            return true;
        }
        let shared_used: usize = per_vc.iter().map(|&o| o.saturating_sub(1)).sum();
        shared_used < capacity - per_vc.len()
    }

    fn has_input_space(&self, port: Port, vc: usize) -> bool {
        match self.config.credit_mode {
            CreditMode::PerVc => self.inputs[port][vc].queue.len() < self.config.queue_depth,
            CreditMode::SharedPool => {
                let per_vc: Vec<usize> = self.inputs[port].iter().map(|q| q.queue.len()).collect();
                Self::damq_admits(&per_vc, vc, self.config.buffers_per_input())
            }
        }
    }

    fn has_credit(&self, out_port: Port, out_vc: u8) -> bool {
        if out_port == Port::Local {
            return true;
        }
        match self.config.credit_mode {
            CreditMode::PerVc => self.outputs[out_port].credits[out_vc as usize] > 0,
            CreditMode::SharedPool => Self::damq_admits(
                &self.outputs[out_port].downstream_occ,
                out_vc as usize,
                self.config.buffers_per_input(),
            ),
        }
    }

    fn consume_credit(&mut self, out_port: Port, out_vc: u8) {
        if out_port == Port::Local {
            return;
        }
        match self.config.credit_mode {
            CreditMode::PerVc => {
                let c = &mut self.outputs[out_port].credits[out_vc as usize];
                debug_assert!(*c > 0, "consuming credit below zero");
                *c -= 1;
            }
            CreditMode::SharedPool => {
                self.outputs[out_port].downstream_occ[out_vc as usize] += 1;
            }
        }
    }

    /// Phase 1: routing and virtual-channel allocation for head flits.
    fn allocate_vcs(&mut self, now: Cycle) {
        // Gather (in_port, in_vc, out_port) requests for heads that have
        // computed their route but hold no output VC yet.
        let mut requests: Vec<(Port, usize, Port)> = Vec::new();
        for &in_port in &Port::ALL {
            for vc in 0..self.config.num_vcs {
                let (do_route, dest) = {
                    let ivc = &self.inputs[in_port][vc];
                    match ivc.queue.front() {
                        Some(front)
                            if front.tag.ty.is_head()
                                && ivc.route.is_none()
                                && front.arrived < now =>
                        {
                            (true, Some(front.flit.dest))
                        }
                        _ => (false, None),
                    }
                };
                if do_route {
                    let out = self.route_to(dest.expect("dest set with do_route"));
                    let ivc = &mut self.inputs[in_port][vc];
                    ivc.route = Some(out);
                    if out == Port::Local {
                        // Ejection needs no downstream VC.
                        ivc.out_vc = Some(0);
                        ivc.switch_ready_at = now;
                        continue;
                    }
                }
                let ivc = &self.inputs[in_port][vc];
                if let (Some(out), None) = (ivc.route, ivc.out_vc) {
                    requests.push((in_port, vc, out));
                }
            }
        }
        self.rng.shuffle(&mut requests);
        for (in_port, in_vc, out_port) in requests {
            let free: Vec<u8> = self.outputs[out_port]
                .vc_owner
                .iter()
                .enumerate()
                .filter(|(_, &owned)| !owned)
                .map(|(v, _)| v as u8)
                .collect();
            if free.is_empty() {
                self.stats.vc_alloc_conflicts += 1;
                continue;
            }
            let granted = *self.rng.choose(&free);
            self.outputs[out_port].vc_owner[granted as usize] = true;
            let ivc = &mut self.inputs[in_port][in_vc];
            ivc.out_vc = Some(granted);
            // Routing, VC allocation and switch traversal share the single
            // routing/scheduling cycle of the paper's router.
            ivc.switch_ready_at = now;
        }
    }

    /// Phase 2: switch allocation and traversal.
    fn traverse_switch(&mut self, now: Cycle, out: &mut StepOutputs) {
        // Each input port nominates one ready VC.
        let mut bids: Vec<(Port, usize, Port)> = Vec::new();
        for &in_port in &Port::ALL {
            let mut ready: Vec<(usize, Port)> = Vec::new();
            for vc in 0..self.config.num_vcs {
                let ivc = &self.inputs[in_port][vc];
                let front = match ivc.queue.front() {
                    Some(f) => f,
                    None => continue,
                };
                let (route, out_vc) = match (ivc.route, ivc.out_vc) {
                    (Some(r), Some(v)) => (r, v),
                    _ => continue,
                };
                if front.arrived + 1 > now {
                    continue;
                }
                if front.tag.ty.is_head() && ivc.switch_ready_at > now {
                    continue;
                }
                if !self.has_credit(route, out_vc) {
                    self.stats.credit_stalls += 1;
                    continue;
                }
                // Packet-sized allocation (store-and-forward and virtual
                // cut-through): the head advances only once a whole
                // packet buffer is free downstream ...
                if front.tag.ty.is_head()
                    && route != Port::Local
                    && self.config.allocation != AllocationUnit::Flit
                {
                    let needed = front.flit.length as usize;
                    assert!(
                        needed <= self.config.queue_depth,
                        "a {needed}-flit packet cannot fit the {}-flit packet buffer",
                        self.config.queue_depth
                    );
                    let available = match self.config.credit_mode {
                        CreditMode::PerVc => self.outputs[route].credits[out_vc as usize],
                        CreditMode::SharedPool => {
                            let occ: usize = self.outputs[route].downstream_occ.iter().sum();
                            self.config.buffers_per_input().saturating_sub(occ)
                        }
                    };
                    if available < needed {
                        self.stats.credit_stalls += 1;
                        continue;
                    }
                }
                // ... and store-and-forward additionally waits for the
                // tail to arrive before forwarding anything.
                if front.tag.ty.is_head()
                    && self.config.allocation == AllocationUnit::StoreAndForward
                {
                    let packet = front.flit.packet;
                    let tail_buffered = ivc
                        .queue
                        .iter()
                        .any(|q| q.flit.packet == packet && q.tag.ty.is_tail());
                    if !tail_buffered {
                        continue;
                    }
                }
                ready.push((vc, route));
            }
            if !ready.is_empty() {
                let &(vc, route) = self.rng.choose(&ready);
                bids.push((in_port, vc, route));
            }
        }
        // Each output port picks one winner among its bidders.
        for &out_port in &Port::ALL {
            let contenders: Vec<(Port, usize)> = bids
                .iter()
                .filter(|&&(_, _, o)| o == out_port)
                .map(|&(p, v, _)| (p, v))
                .collect();
            if contenders.is_empty() {
                continue;
            }
            let &(in_port, in_vc) = self.rng.choose(&contenders);
            self.stats.switch_arb_retries += (contenders.len() - 1) as u64;
            self.forward_flit(in_port, in_vc, out_port, now, out);
        }
    }

    fn forward_flit(
        &mut self,
        in_port: Port,
        in_vc: usize,
        out_port: Port,
        now: Cycle,
        out: &mut StepOutputs,
    ) {
        let out_vc = self.inputs[in_port][in_vc]
            .out_vc
            .expect("winner must hold an output VC");
        let queued = self.inputs[in_port][in_vc]
            .queue
            .pop_front()
            .expect("winner queue cannot be empty");
        self.sink
            .queue_deq(now, self.node, in_port, in_vc as u8, &queued.flit);
        self.consume_credit(out_port, out_vc);
        if out_port == Port::Local {
            out.eject(queued.flit, now);
        } else {
            self.stats.data_flits_sent += 1;
            self.sink
                .vc_data_sent(now, self.node, out_port, out_vc, &queued.flit);
            out.send(
                out_port,
                LinkEvent::VcData(
                    VcTag {
                        vc: out_vc,
                        ty: queued.tag.ty,
                    },
                    queued.flit,
                ),
            );
        }
        // Return the freed buffer slot upstream. Local-input slots are
        // observed directly by the network interface, so no wire credit.
        if in_port != Port::Local {
            self.sink.credit_sent(now, self.node, in_port, in_vc as u8);
            out.send(in_port, LinkEvent::VcCredit { vc: in_vc as u8 });
        }
        if queued.tag.ty.is_tail() {
            let ivc = &mut self.inputs[in_port][in_vc];
            ivc.route = None;
            ivc.out_vc = None;
            if out_port != Port::Local {
                self.outputs[out_port].vc_owner[out_vc as usize] = false;
            }
        }
    }

    /// Phase 3: move at most one flit per cycle from the injection FIFO
    /// into a local input VC.
    fn inject_from_ni(&mut self, now: Cycle) {
        let (tag, _) = match self.ni.fifo.front() {
            Some(f) => *f,
            None => return,
        };
        let vc = if tag.ty.is_head() {
            // Pick a local VC with space for the new packet.
            let candidates: Vec<u8> = (0..self.config.num_vcs)
                .filter(|&v| self.has_input_space(Port::Local, v))
                .map(|v| v as u8)
                .collect();
            if candidates.is_empty() {
                return;
            }
            let chosen = *self.rng.choose(&candidates);
            self.ni.current_vc = Some(chosen);
            chosen
        } else {
            match self.ni.current_vc {
                Some(v) if self.has_input_space(Port::Local, v as usize) => v,
                _ => return,
            }
        };
        let (mut tag, flit) = self.ni.fifo.pop_front().expect("front checked");
        if tag.ty.is_tail() {
            self.ni.current_vc = None;
        }
        tag.vc = vc;
        self.sink.flit_injected(now, self.node, &flit);
        self.sink.queue_enq(now, self.node, Port::Local, vc, &flit);
        self.inputs[Port::Local][vc as usize]
            .queue
            .push_back(QueuedFlit {
                tag,
                flit,
                arrived: now,
            });
    }
}

impl<S: TraceSink> Router for VcRouter<S> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn receive(&mut self, port: Port, event: LinkEvent, now: Cycle) {
        match event {
            LinkEvent::VcData(tag, flit) => {
                let vc = tag.vc as usize;
                assert!(vc < self.config.num_vcs, "vc id out of range");
                assert!(
                    self.has_input_space(port, vc),
                    "upstream overflowed input {port} vc {vc} at node {}",
                    self.node
                );
                self.sink.queue_enq(now, self.node, port, tag.vc, &flit);
                self.inputs[port][vc].queue.push_back(QueuedFlit {
                    tag,
                    flit,
                    arrived: now,
                });
            }
            LinkEvent::VcCredit { vc } => {
                // `port` names the *output* port this credit refers to.
                match self.config.credit_mode {
                    CreditMode::PerVc => {
                        let c = &mut self.outputs[port].credits[vc as usize];
                        *c += 1;
                        debug_assert!(*c <= self.config.queue_depth, "credit overflow");
                    }
                    CreditMode::SharedPool => {
                        let c = &mut self.outputs[port].downstream_occ[vc as usize];
                        debug_assert!(*c > 0, "credit underflow");
                        *c -= 1;
                    }
                }
            }
            other => panic!("VC router received foreign event {other:?}"),
        }
    }

    fn try_inject(&mut self, packet: Packet, _now: Cycle) -> bool {
        for seq in 0..packet.length_flits {
            let ty = FlitType::for_position(seq, packet.length_flits);
            self.ni.fifo.push_back((
                VcTag { vc: 0, ty },
                DataFlit {
                    packet: packet.id,
                    seq,
                    length: packet.length_flits,
                    dest: packet.dest,
                    created_at: packet.created_at,
                    crc_ok: true,
                },
            ));
        }
        true
    }

    fn step(&mut self, now: Cycle, out: &mut StepOutputs) {
        self.allocate_vcs(now);
        self.traverse_switch(now, out);
        self.inject_from_ni(now);
    }

    fn occupied_data_buffers(&self, port: Port) -> usize {
        self.input_port_occupancy(port)
    }

    fn data_buffer_capacity(&self, _port: Port) -> usize {
        self.config.buffers_per_input()
    }

    fn queued_flits(&self) -> usize {
        let buffered: usize = Port::ALL
            .iter()
            .map(|&p| self.input_port_occupancy(p))
            .sum();
        buffered + self.ni.fifo.len()
    }

    /// Quiescent when every input VC queue and the injection FIFO are
    /// empty. Residual `route`/`out_vc` state on a drained VC is inert:
    /// `allocate_vcs` and `traverse_switch` act only on queued flits, and
    /// `inject_from_ni` returns before any RNG draw when the FIFO is
    /// empty, so `step` is a pure no-op in this state.
    fn is_idle(&self) -> bool {
        self.ni.fifo.is_empty()
            && Port::ALL
                .iter()
                .all(|&p| self.inputs[p].iter().all(|vc| vc.queue.is_empty()))
    }

    fn collect_counters(&self, out: &mut noc_flow::RouterCounters) {
        out.credit_stalls = self.stats.credit_stalls;
        out.vc_alloc_conflicts = self.stats.vc_alloc_conflicts;
        out.switch_arb_retries = self.stats.switch_arb_retries;
        out.data_flits_sent = self.stats.data_flits_sent;
        out.masked_routes = self.stats.masked_routes;
    }

    fn on_link_dead(&mut self, port: Port) {
        self.dead_mask |= 1 << port.index();
    }

    /// Classifies every front flit that was eligible this cycle but did
    /// not move. Mirrors the gating order of [`VcRouter::allocate_vcs`]
    /// and [`VcRouter::traverse_switch`]: a front with `arrived < now`
    /// still queued after the step lost at exactly one gate.
    ///
    /// Waits that are not a contention loss emit nothing and fall into
    /// the collector's residual buffer-wait bucket: a head still behind
    /// its predecessor packet (no route yet), a store-and-forward head
    /// waiting for its own tail, and all non-front flits.
    fn emit_stall_provenance(&mut self, now: Cycle) {
        if !S::ENABLED {
            return;
        }
        for &in_port in &Port::ALL {
            for vc in 0..self.config.num_vcs {
                let ivc = &self.inputs[in_port][vc];
                let front = match ivc.queue.front() {
                    Some(f) if f.arrived < now => f,
                    _ => continue,
                };
                let (packet, seq) = (front.flit.packet, front.flit.seq);
                let (route, out_vc) = match (ivc.route, ivc.out_vc) {
                    (Some(r), Some(v)) => (r, v),
                    (Some(_), None) => {
                        self.sink.vc_alloc_stall(now, self.node, packet, seq);
                        continue;
                    }
                    // Head exposed mid-cycle by a departing tail: it has
                    // not been routed yet, so this cycle is queue wait,
                    // not a contention loss.
                    (None, _) => continue,
                };
                if front.tag.ty.is_head() && ivc.switch_ready_at > now {
                    continue;
                }
                if !self.has_credit(route, out_vc) {
                    self.sink.credit_stall(now, self.node, packet, seq);
                    continue;
                }
                if front.tag.ty.is_head()
                    && route != Port::Local
                    && self.config.allocation != AllocationUnit::Flit
                {
                    let needed = front.flit.length as usize;
                    let available = match self.config.credit_mode {
                        CreditMode::PerVc => self.outputs[route].credits[out_vc as usize],
                        CreditMode::SharedPool => {
                            let occ: usize = self.outputs[route].downstream_occ.iter().sum();
                            self.config.buffers_per_input().saturating_sub(occ)
                        }
                    };
                    if available < needed {
                        self.sink.credit_stall(now, self.node, packet, seq);
                        continue;
                    }
                }
                if front.tag.ty.is_head()
                    && self.config.allocation == AllocationUnit::StoreAndForward
                {
                    let tail_buffered = ivc
                        .queue
                        .iter()
                        .any(|q| q.flit.packet == packet && q.tag.ty.is_tail());
                    if !tail_buffered {
                        continue;
                    }
                }
                self.sink.switch_stall(now, self.node, packet, seq);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::PacketId;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn router_at(x: u16, y: u16) -> VcRouter {
        let m = mesh();
        VcRouter::new(m, m.node_at(x, y), VcConfig::vc8(), Rng::from_seed(1))
    }

    fn packet(m: Mesh, src: (u16, u16), dst: (u16, u16), len: u32) -> Packet {
        Packet {
            id: PacketId::new(7),
            src: m.node_at(src.0, src.1),
            dest: m.node_at(dst.0, dst.1),
            length_flits: len,
            created_at: Cycle::ZERO,
        }
    }

    fn drive(router: &mut VcRouter, from: Cycle, to: Cycle) -> Vec<(Cycle, StepOutputs)> {
        let mut log = Vec::new();
        for t in from.raw()..to.raw() {
            let mut out = StepOutputs::new();
            router.step(Cycle::new(t), &mut out);
            log.push((Cycle::new(t), out));
        }
        log
    }

    /// Steps the router, echoing a credit back (one cycle later) for every
    /// data flit it sends, emulating an uncongested downstream neighbour.
    fn drive_with_credit_echo(
        router: &mut VcRouter,
        from: Cycle,
        to: Cycle,
    ) -> Vec<(Cycle, StepOutputs)> {
        let mut log = Vec::new();
        let mut pending: Vec<(Cycle, Port, u8)> = Vec::new();
        for t in from.raw()..to.raw() {
            let now = Cycle::new(t);
            pending.retain(|&(due, port, vc)| {
                if due <= now {
                    router.receive(port, LinkEvent::VcCredit { vc }, now);
                    false
                } else {
                    true
                }
            });
            let mut out = StepOutputs::new();
            router.step(now, &mut out);
            for (port, e) in &out.sends {
                if let LinkEvent::VcData(tag, _) = e {
                    pending.push((now + 1, *port, tag.vc));
                }
            }
            log.push((now, out));
        }
        log
    }

    #[test]
    fn injected_packet_departs_east() {
        let m = mesh();
        let mut r = router_at(0, 0);
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let log = drive_with_credit_echo(&mut r, Cycle::ZERO, Cycle::new(20));
        let sent: Vec<(Cycle, FlitType)> = log
            .iter()
            .flat_map(|(t, o)| {
                o.sends.iter().filter_map(move |(p, e)| match e {
                    LinkEvent::VcData(tag, _) => {
                        assert_eq!(*p, Port::East);
                        Some((*t, tag.ty))
                    }
                    _ => None,
                })
            })
            .collect();
        assert_eq!(sent.len(), 5, "all five flits leave");
        assert!(sent[0].1.is_head());
        assert!(sent[4].1.is_tail());
        // Head: injected at cycle 0 (arrives in local VC), routed and
        // switched during cycle 1 — the 1-cycle routing/scheduling latency.
        assert_eq!(sent[0].0, Cycle::new(1));
        // Body flits stream one per cycle behind the head.
        for w in sent.windows(2) {
            assert_eq!(w[1].0, w[0].0 + 1);
        }
        assert_eq!(r.queued_flits(), 0);
    }

    #[test]
    fn local_destination_is_ejected() {
        let m = mesh();
        let mut r = router_at(1, 1);
        // A packet arriving from the west destined for this node.
        for seq in 0..3u32 {
            let ty = FlitType::for_position(seq, 3);
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag { vc: 0, ty },
                    DataFlit {
                        packet: PacketId::new(1),
                        seq,
                        length: 3,
                        dest: m.node_at(1, 1),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::new(seq as u64),
            );
        }
        let log = drive(&mut r, Cycle::ZERO, Cycle::new(12));
        let ejected: Vec<u32> = log
            .iter()
            .flat_map(|(_, o)| o.ejections.iter().map(|e| e.flit.seq))
            .collect();
        assert_eq!(ejected, vec![0, 1, 2]);
        // Credits went back on the west input.
        let credits = log
            .iter()
            .flat_map(|(_, o)| o.sends.iter())
            .filter(|(p, e)| *p == Port::West && matches!(e, LinkEvent::VcCredit { .. }))
            .count();
        assert_eq!(credits, 3);
    }

    #[test]
    fn no_credit_blocks_departure() {
        let m = mesh();
        let mut r = router_at(0, 0);
        // Drain all 4 credits of every VC on the east output by injecting
        // a long packet and never crediting back.
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 21), Cycle::ZERO));
        let log = drive(&mut r, Cycle::ZERO, Cycle::new(40));
        let sent: Vec<u8> = log
            .iter()
            .flat_map(|(_, o)| o.sends.iter())
            .filter_map(|(_, e)| match e {
                LinkEvent::VcData(tag, _) => Some(tag.vc),
                _ => None,
            })
            .collect();
        // Only queue_depth flits can leave before credits run dry.
        assert_eq!(sent.len(), VcConfig::vc8().queue_depth);
        // Returning one credit on the VC in use releases exactly one more.
        let used_vc = sent[0];
        r.receive(
            Port::East,
            LinkEvent::VcCredit { vc: used_vc },
            Cycle::new(40),
        );
        let log = drive(&mut r, Cycle::new(40), Cycle::new(45));
        let sent: usize = log
            .iter()
            .flat_map(|(_, o)| o.sends.iter())
            .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
            .count();
        assert_eq!(sent, 1);
    }

    #[test]
    fn vc_allocation_is_exclusive_until_tail() {
        let m = mesh();
        let mut r = router_at(0, 0);
        // Two packets competing for the east output from different inputs
        // on a 1-VC (wormhole) router: the second must wait for the tail
        // of the first.
        let mut r1 = VcRouter::new(m, m.node_at(1, 0), VcConfig::wormhole(4), Rng::from_seed(2));
        std::mem::swap(&mut r, &mut r1);
        for (port, pid) in [(Port::West, 10u64), (Port::North, 20u64)] {
            for seq in 0..3u32 {
                let ty = FlitType::for_position(seq, 3);
                r.receive(
                    port,
                    LinkEvent::VcData(
                        VcTag { vc: 0, ty },
                        DataFlit {
                            packet: PacketId::new(pid),
                            seq,
                            length: 3,
                            dest: m.node_at(3, 0),
                            created_at: Cycle::ZERO,
                            crc_ok: true,
                        },
                    ),
                    Cycle::ZERO,
                );
            }
        }
        // Echo a credit for each departed flit so only VC ownership
        // constrains progress.
        let mut sends = Vec::new();
        for t in 0..30u64 {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (p, e) in out.sends {
                if let LinkEvent::VcData(tag, f) = e {
                    assert_eq!(p, Port::East);
                    sends.push((t, f.packet.raw(), tag.ty));
                    r.receive(
                        Port::East,
                        LinkEvent::VcCredit { vc: tag.vc },
                        Cycle::new(t),
                    );
                }
            }
        }
        assert_eq!(sends.len(), 6, "both packets fully forwarded: {sends:?}");
        // Flits of the two packets must not interleave on the single VC.
        let order: Vec<u64> = sends.iter().map(|&(_, pid, _)| pid).collect();
        let first = order[0];
        assert_eq!(&order[..3], &[first; 3][..]);
        assert_ne!(order[3], first);
        assert_eq!(&order[3..], &[order[3]; 3][..]);
    }

    #[test]
    fn occupancy_accounting() {
        let m = mesh();
        let mut r = router_at(1, 1);
        assert_eq!(r.occupied_data_buffers(Port::West), 0);
        r.receive(
            Port::West,
            LinkEvent::VcData(
                VcTag {
                    vc: 1,
                    ty: FlitType::HeadTail,
                },
                DataFlit {
                    packet: PacketId::new(0),
                    seq: 0,
                    length: 1,
                    dest: m.node_at(3, 1),
                    created_at: Cycle::ZERO,
                    crc_ok: true,
                },
            ),
            Cycle::ZERO,
        );
        assert_eq!(r.occupied_data_buffers(Port::West), 1);
        assert_eq!(r.data_buffer_capacity(Port::West), 8);
        assert_eq!(r.queued_flits(), 1);
    }

    #[test]
    #[should_panic(expected = "overflowed input")]
    fn input_overflow_panics() {
        let m = mesh();
        let mut r = router_at(1, 1);
        for seq in 0..5u32 {
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag {
                        vc: 0,
                        ty: FlitType::Body,
                    },
                    DataFlit {
                        packet: PacketId::new(0),
                        seq,
                        length: 9,
                        dest: m.node_at(3, 1),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::ZERO,
            );
        }
    }

    #[test]
    fn shared_pool_allows_one_vc_past_queue_depth() {
        let m = mesh();
        let cfg = VcConfig::vc8().with_shared_pool();
        let mut r = VcRouter::new(m, m.node_at(1, 1), cfg, Rng::from_seed(3));
        // 6 flits on one VC: legal under the shared pool (cap 8), illegal
        // under per-VC queues (cap 4).
        for seq in 0..6u32 {
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag {
                        vc: 0,
                        ty: FlitType::Body,
                    },
                    DataFlit {
                        packet: PacketId::new(0),
                        seq,
                        length: 9,
                        dest: m.node_at(3, 1),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::ZERO,
            );
        }
        assert_eq!(r.occupied_data_buffers(Port::West), 6);
    }
}

#[cfg(test)]
mod packet_allocation_tests {
    use super::*;
    use crate::AllocationUnit;
    use noc_traffic::PacketId;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn packet(m: Mesh, len: u32) -> Packet {
        Packet {
            id: PacketId::new(3),
            src: m.node_at(0, 0),
            dest: m.node_at(3, 0),
            length_flits: len,
            created_at: Cycle::ZERO,
        }
    }

    /// Sends cycles forward, returning (cycle, flit type) of data sends.
    fn departures(r: &mut VcRouter, cycles: u64) -> Vec<(u64, FlitType)> {
        let mut out_log = Vec::new();
        for t in 0..cycles {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (_, e) in out.sends {
                if let LinkEvent::VcData(tag, _) = e {
                    out_log.push((t, tag.ty));
                }
            }
        }
        out_log
    }

    #[test]
    fn cut_through_claims_whole_packet_buffer() {
        let m = mesh();
        let mut r = VcRouter::new(
            m,
            m.node_at(0, 0),
            VcConfig::virtual_cut_through(8),
            Rng::from_seed(2),
        );
        assert!(r.try_inject(packet(m, 5), Cycle::ZERO));
        // With full credits (8 ≥ 5) the packet streams out cut-through.
        let sent = departures(&mut r, 20);
        assert_eq!(sent.len(), 5);
        // Consume 4 credits so only 4 remain (< 5): the next head must
        // stall even though *some* space exists downstream.
        let mut r = VcRouter::new(
            m,
            m.node_at(0, 0),
            VcConfig::virtual_cut_through(8),
            Rng::from_seed(2),
        );
        for _ in 0..4 {
            r.consume_credit(Port::East, 0);
        }
        assert!(r.try_inject(packet(m, 5), Cycle::ZERO));
        let sent = departures(&mut r, 20);
        assert!(sent.is_empty(), "head must wait for a full packet buffer");
        // Returning one credit (5 free) releases the packet.
        r.receive(Port::East, LinkEvent::VcCredit { vc: 0 }, Cycle::new(20));
        let mut out = StepOutputs::new();
        for t in 20..40 {
            r.step(Cycle::new(t), &mut out);
        }
        let sent = out
            .sends
            .iter()
            .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
            .count();
        assert_eq!(sent, 5);
    }

    #[test]
    fn store_and_forward_waits_for_the_tail() {
        let m = mesh();
        let mut r = VcRouter::new(
            m,
            m.node_at(1, 0),
            VcConfig::store_and_forward(8),
            Rng::from_seed(2),
        );
        // Flits of a 4-flit packet trickle in one per 3 cycles from the
        // west; nothing may leave before the tail has arrived.
        let mut sent_before_tail = 0;
        let mut all_sent = Vec::new();
        let mut t = 0u64;
        for seq in 0..4u32 {
            r.receive(
                Port::West,
                LinkEvent::VcData(
                    VcTag {
                        vc: 0,
                        ty: FlitType::for_position(seq, 4),
                    },
                    DataFlit {
                        packet: PacketId::new(9),
                        seq,
                        length: 4,
                        dest: m.node_at(3, 0),
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    },
                ),
                Cycle::new(t),
            );
            for _ in 0..3 {
                let mut out = StepOutputs::new();
                r.step(Cycle::new(t), &mut out);
                let n = out
                    .sends
                    .iter()
                    .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
                    .count();
                if seq < 3 {
                    sent_before_tail += n;
                }
                all_sent.push(n);
                t += 1;
            }
        }
        // Drain after the tail arrived.
        for _ in 0..10 {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            all_sent.push(
                out.sends
                    .iter()
                    .filter(|(_, e)| matches!(e, LinkEvent::VcData(..)))
                    .count(),
            );
            t += 1;
        }
        assert_eq!(sent_before_tail, 0, "store-and-forward leaked flits early");
        assert_eq!(all_sent.iter().sum::<usize>(), 4, "whole packet forwarded");
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn packet_longer_than_buffer_panics() {
        let m = mesh();
        let mut r = VcRouter::new(
            m,
            m.node_at(0, 0),
            VcConfig::virtual_cut_through(4),
            Rng::from_seed(2),
        );
        assert!(r.try_inject(packet(m, 5), Cycle::ZERO));
        departures(&mut r, 10);
    }

    #[test]
    fn flit_mode_is_unaffected() {
        assert_eq!(VcConfig::vc8().allocation, AllocationUnit::Flit);
        assert_eq!(
            VcConfig::virtual_cut_through(8).allocation,
            AllocationUnit::CutThrough
        );
        assert_eq!(
            VcConfig::store_and_forward(8).allocation,
            AllocationUnit::StoreAndForward
        );
    }
}
