//! # noc-vc
//!
//! The virtual-channel flow-control baseline (Dally '92) the paper
//! compares against, plus the wormhole and shared-buffer-pool [TamFra92]
//! variants discussed in its related-work and discussion sections.
//!
//! # Examples
//!
//! ```
//! use noc_engine::Rng;
//! use noc_topology::{Mesh, NodeId};
//! use noc_vc::{VcConfig, VcRouter};
//!
//! // The paper's VC8 configuration: 2 VCs x 4 flit buffers per input.
//! let mesh = Mesh::new(8, 8);
//! let router = VcRouter::new(mesh, NodeId::new(0), VcConfig::vc8(), Rng::from_seed(0));
//! assert_eq!(router.config().buffers_per_input(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod router;
mod stages;

pub use config::{AllocationUnit, CreditMode, VcConfig};
pub use noc_flow::ArbiterKind;
pub use router::{VcRouter, VcStats};
