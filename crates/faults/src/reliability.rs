//! The end-to-end reliability protocol: source-side retransmit buffers
//! with ACK/NACK and bounded exponential backoff.
//!
//! One [`Reliability`] instance models the retransmit buffers of every
//! source NI in the network (packet ids are globally unique, so the
//! per-source buffers never interact). The network drives it with four
//! calls:
//!
//! * [`Reliability::register`] when a packet is first injected — the
//!   packet is held until acknowledged;
//! * [`Reliability::schedule_nack`] when the destination discards a
//!   CRC-failed flit — a NACK travels back and triggers retransmission;
//! * [`Reliability::schedule_ack`] when the destination accepts the last
//!   flit of a packet — the ACK retires the buffer entry;
//! * [`Reliability::poll`] once per cycle — fires due ACK/NACK/timeout
//!   events and returns the actions the network must take.
//!
//! The protocol is NACK-initiated and timeout-continued: no timer is
//! armed until the first NACK, because the fault model (corruption and
//! drop-as-delay) can never silently lose a flit — every fault is
//! eventually observed at the destination. This is what makes the layer
//! exactly zero-cost when no fault fires: a fault-free run schedules
//! nothing and draws nothing.
//!
//! Every queue is drained in deterministic order (a binary heap keyed by
//! `(cycle, kind, packet)`), so fault runs replay bit-identically.

use noc_traffic::{Packet, PacketId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Why a retransmission fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetransmitCause {
    /// The destination NACKed a corrupted flit.
    Nack,
    /// The retransmit timer expired without an ACK.
    Timeout,
}

/// One action the network must take after [`Reliability::poll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReliabilityAction {
    /// Re-inject `packet` from its source NI.
    Retransmit {
        /// The buffered packet to re-send.
        packet: Packet,
        /// Attempt number of this copy (1 for the first retransmission).
        attempt: u32,
        /// What triggered the retransmission.
        cause: RetransmitCause,
    },
    /// An ACK landed: the source retired its buffer entry for `packet`.
    Retired {
        /// The acknowledged packet.
        packet: PacketId,
    },
}

/// Event kinds in the timer heap; the rank is the deterministic
/// tie-break for events due on the same cycle.
const RANK_ACK: u8 = 0;
const RANK_NACK: u8 = 1;
const RANK_TIMEOUT: u8 = 2;

#[derive(Clone, Debug)]
struct Entry {
    packet: Packet,
    /// Retransmissions performed so far.
    attempts: u32,
    /// Deadline of the currently armed timeout; heap events that do not
    /// match are stale (superseded by a re-arm) and ignored.
    armed_timeout: Option<u64>,
    /// True while a NACK is in flight, suppressing duplicate NACKs from
    /// further corrupt flits of the same copy.
    nack_pending: bool,
}

/// The collective retransmit-buffer state of every source NI.
#[derive(Clone, Debug, Default)]
pub struct Reliability {
    entries: HashMap<u64, Entry>,
    /// Min-heap of `(due_cycle, kind_rank, packet)` events.
    timers: BinaryHeap<Reverse<(u64, u8, u64)>>,
    /// Base retransmit timeout (cycles).
    timeout: u64,
    /// Cap on backoff doublings.
    max_backoff_exp: u32,
    /// Peak number of simultaneously buffered packets (for metrics).
    peak_buffered: usize,
}

impl Reliability {
    /// Creates the protocol state with the plan's timeout knobs.
    pub fn new(retransmit_timeout: u64, max_backoff_exp: u32) -> Self {
        Reliability {
            timeout: retransmit_timeout.max(1),
            max_backoff_exp,
            ..Reliability::default()
        }
    }

    /// Buffers a freshly injected packet until it is acknowledged.
    /// Re-registering an id (a retransmitted packet re-entering the
    /// source queue) is a no-op: the entry already exists.
    pub fn register(&mut self, packet: Packet) {
        self.entries.entry(packet.id.raw()).or_insert(Entry {
            packet,
            attempts: 0,
            armed_timeout: None,
            nack_pending: false,
        });
        self.peak_buffered = self.peak_buffered.max(self.entries.len());
    }

    /// Schedules the NACK for a corrupt flit of `packet`, due at `at`.
    /// Returns `true` if a NACK was actually scheduled (`false` when one
    /// is already in flight or the packet was already acknowledged).
    pub fn schedule_nack(&mut self, packet: PacketId, at: u64) -> bool {
        match self.entries.get_mut(&packet.raw()) {
            Some(e) if !e.nack_pending => {
                e.nack_pending = true;
                self.timers.push(Reverse((at, RANK_NACK, packet.raw())));
                true
            }
            _ => false,
        }
    }

    /// Schedules the ACK for a completely delivered `packet`, due at `at`.
    pub fn schedule_ack(&mut self, packet: PacketId, at: u64) {
        self.timers.push(Reverse((at, RANK_ACK, packet.raw())));
    }

    /// Fires every event due at or before `now`, in deterministic order,
    /// and returns the resulting actions.
    pub fn poll(&mut self, now: u64, out: &mut Vec<ReliabilityAction>) {
        let (timeout, max_exp) = (self.timeout, self.max_backoff_exp);
        let backoff = |attempt: u32| Self::backoff_after(timeout, max_exp, attempt);
        while let Some(&Reverse((due, rank, id))) = self.timers.peek() {
            if due > now {
                break;
            }
            self.timers.pop();
            match rank {
                RANK_ACK => {
                    if self.entries.remove(&id).is_some() {
                        out.push(ReliabilityAction::Retired {
                            packet: PacketId::new(id),
                        });
                    }
                }
                RANK_NACK => {
                    if let Some(e) = self.entries.get_mut(&id) {
                        e.nack_pending = false;
                        let (packet, attempt) = (e.packet, e.attempts + 1);
                        e.attempts = attempt;
                        let deadline = now + backoff(attempt);
                        e.armed_timeout = Some(deadline);
                        self.timers.push(Reverse((deadline, RANK_TIMEOUT, id)));
                        out.push(ReliabilityAction::Retransmit {
                            packet,
                            attempt,
                            cause: RetransmitCause::Nack,
                        });
                    }
                }
                _ => {
                    // Timeout: only the most recently armed deadline
                    // counts; earlier heap entries were superseded.
                    if let Some(e) = self.entries.get_mut(&id) {
                        if e.armed_timeout == Some(due) {
                            let (packet, attempt) = (e.packet, e.attempts + 1);
                            e.attempts = attempt;
                            let deadline = now + backoff(attempt);
                            e.armed_timeout = Some(deadline);
                            self.timers.push(Reverse((deadline, RANK_TIMEOUT, id)));
                            out.push(ReliabilityAction::Retransmit {
                                packet,
                                attempt,
                                cause: RetransmitCause::Timeout,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Timeout armed after retransmission `attempt`: the base timeout
    /// doubled once per earlier attempt, capped at `max_exp` doublings.
    fn backoff_after(timeout: u64, max_exp: u32, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(max_exp);
        timeout.saturating_mul(1u64 << exp.min(62))
    }

    /// The timeout this instance arms after retransmission `attempt`.
    #[cfg(test)]
    fn backoff(&self, attempt: u32) -> u64 {
        Self::backoff_after(self.timeout, self.max_backoff_exp, attempt)
    }

    /// Packets currently held in retransmit buffers.
    pub fn buffered(&self) -> usize {
        self.entries.len()
    }

    /// Peak simultaneous retransmit-buffer occupancy.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// True when no packet is buffered and no timer is pending — the
    /// reliability layer is fully drained.
    pub fn is_drained(&self) -> bool {
        self.entries.is_empty() && self.timers.is_empty()
    }

    /// The next cycle at which a timer fires, if any; lets the network's
    /// idle-skip jump straight to it instead of polling every cycle.
    pub fn next_deadline(&self) -> Option<u64> {
        self.timers.peek().map(|Reverse((due, _, _))| *due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::Cycle;
    use noc_topology::NodeId;

    fn packet(id: u64) -> Packet {
        Packet {
            id: PacketId::new(id),
            src: NodeId::new(0),
            dest: NodeId::new(5),
            length_flits: 5,
            created_at: Cycle::ZERO,
        }
    }

    fn poll(r: &mut Reliability, now: u64) -> Vec<ReliabilityAction> {
        let mut out = Vec::new();
        r.poll(now, &mut out);
        out
    }

    #[test]
    fn ack_retires_the_entry() {
        let mut r = Reliability::new(100, 4);
        r.register(packet(1));
        r.schedule_ack(PacketId::new(1), 10);
        assert!(poll(&mut r, 9).is_empty());
        assert_eq!(
            poll(&mut r, 10),
            vec![ReliabilityAction::Retired {
                packet: PacketId::new(1)
            }]
        );
        assert!(r.is_drained());
    }

    #[test]
    fn nack_triggers_retransmit_and_arms_a_timeout() {
        let mut r = Reliability::new(100, 4);
        r.register(packet(1));
        assert!(r.schedule_nack(PacketId::new(1), 20));
        // A second corrupt flit of the same copy is suppressed.
        assert!(!r.schedule_nack(PacketId::new(1), 21));
        let actions = poll(&mut r, 20);
        assert_eq!(
            actions,
            vec![ReliabilityAction::Retransmit {
                packet: packet(1),
                attempt: 1,
                cause: RetransmitCause::Nack,
            }]
        );
        assert_eq!(r.next_deadline(), Some(120));
        // The timeout keeps firing with doubling backoff until an ACK.
        let actions = poll(&mut r, 120);
        assert_eq!(
            actions,
            vec![ReliabilityAction::Retransmit {
                packet: packet(1),
                attempt: 2,
                cause: RetransmitCause::Timeout,
            }]
        );
        assert_eq!(r.next_deadline(), Some(120 + 200));
    }

    #[test]
    fn ack_cancels_pending_timeouts() {
        let mut r = Reliability::new(100, 4);
        r.register(packet(1));
        r.schedule_nack(PacketId::new(1), 5);
        assert_eq!(poll(&mut r, 5).len(), 1);
        r.schedule_ack(PacketId::new(1), 50);
        assert_eq!(
            poll(&mut r, 200),
            vec![ReliabilityAction::Retired {
                packet: PacketId::new(1)
            }]
        );
        // The stale timeout at 105 fired into a removed entry: no-op.
        assert!(r.is_drained());
    }

    #[test]
    fn backoff_is_capped() {
        let r = Reliability::new(10, 3);
        assert_eq!(r.backoff(1), 10);
        assert_eq!(r.backoff(2), 20);
        assert_eq!(r.backoff(4), 80);
        assert_eq!(r.backoff(40), 80);
    }

    #[test]
    fn nack_after_ack_is_ignored() {
        let mut r = Reliability::new(100, 4);
        r.register(packet(1));
        r.schedule_ack(PacketId::new(1), 10);
        poll(&mut r, 10);
        assert!(!r.schedule_nack(PacketId::new(1), 12));
        assert!(poll(&mut r, 100).is_empty());
    }

    #[test]
    fn same_cycle_events_fire_in_deterministic_order() {
        let mut r = Reliability::new(100, 4);
        r.register(packet(1));
        r.register(packet(2));
        r.schedule_nack(PacketId::new(2), 10);
        r.schedule_nack(PacketId::new(1), 10);
        r.schedule_ack(PacketId::new(3), 10);
        let actions = poll(&mut r, 10);
        // ACKs before NACKs, then by packet id. Packet 3 was never
        // registered so its ACK is a silent no-op.
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            ReliabilityAction::Retransmit { packet, attempt: 1, .. } if packet.id.raw() == 1
        ));
        assert!(matches!(
            actions[1],
            ReliabilityAction::Retransmit { packet, attempt: 1, .. } if packet.id.raw() == 2
        ));
    }

    #[test]
    fn peak_occupancy_tracks_the_high_water_mark() {
        let mut r = Reliability::new(100, 4);
        for id in 0..4 {
            r.register(packet(id));
        }
        r.schedule_ack(PacketId::new(0), 1);
        poll(&mut r, 1);
        assert_eq!(r.buffered(), 3);
        assert_eq!(r.peak_buffered(), 4);
    }
}
