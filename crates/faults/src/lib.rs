//! # noc-faults
//!
//! Deterministic fault injection and end-to-end reliability for the
//! flit-reservation stack.
//!
//! The crate is pure protocol and plan state — it owns no wires and no
//! routers. `noc-network` composes it into the simulation:
//!
//! * [`FaultPlan`] describes every fault a run will experience
//!   (transient data-flit corruption, control-flit drops, permanent link
//!   failures), derived entirely from a seed so any run is reproducible
//!   from its `RunManifest`;
//! * [`Reliability`] implements the source-side retransmit buffers with
//!   ACK/NACK and bounded exponential backoff;
//! * [`FaultCounters`] aggregates everything the fault layer did, for
//!   the metrics export.
//!
//! # Examples
//!
//! ```
//! use noc_faults::FaultPlan;
//!
//! let mut plan = FaultPlan::quiet(7);
//! assert!(!plan.is_active());          // installing it changes nothing
//! plan.data_corrupt_rate = 1e-3;
//! assert!(plan.is_active());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod reliability;

pub use plan::{DeadLink, FaultPlan};
pub use reliability::{Reliability, ReliabilityAction, RetransmitCause};

/// Cumulative counts of everything the fault layer did in one run.
///
/// Exported under `fault.*` keys by the network's metrics flush; all
/// zeros when the plan is inactive.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Data flits whose CRC was corrupted on a link.
    pub data_corrupted: u64,
    /// Control flits dropped on a link (re-driven by the repair).
    pub control_dropped: u64,
    /// CRC-failed flit copies discarded at destination NIs.
    pub corrupt_discarded: u64,
    /// Duplicate flit copies discarded at destination NIs.
    pub duplicate_discarded: u64,
    /// ACKs that retired a retransmit-buffer entry.
    pub acks: u64,
    /// NACKs issued for corrupted flits.
    pub nacks: u64,
    /// Packet retransmissions (NACK- and timeout-triggered).
    pub retransmits: u64,
    /// The subset of retransmissions triggered by a timeout.
    pub timeout_retransmits: u64,
    /// Permanent link failures activated (ports masked).
    pub links_masked: u64,
}
