//! The fault plan: a complete, seed-derived description of every fault a
//! run will experience.
//!
//! A [`FaultPlan`] is pure data. The network derives all fault decisions
//! (which flit gets corrupted, which control flit gets dropped, when a
//! link dies) from the plan's rates and its dedicated RNG stream, so two
//! runs with the same plan and the same traffic seed are bit-identical —
//! including their faults. The plan's [`FaultPlan::summary`] string goes
//! into the `RunManifest`, which therefore pins the entire fault
//! schedule of an experiment.

use noc_engine::Rng;
use noc_topology::{Mesh, NodeId, Port};

/// A permanent link failure: the outgoing link of `node` on `port` is
/// taken out of service at `at_cycle`.
///
/// "Out of service" means the owning router masks the port out of its
/// routing function for *new* traffic; traffic already committed to the
/// link (booked reservations, flits mid-switch) still drains, modelling
/// an administrative shutdown rather than a wire severed mid-flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadLink {
    /// Node owning the failing output link.
    pub node: NodeId,
    /// Output port of the failing link.
    pub port: Port,
    /// Cycle at which the failure takes effect.
    pub at_cycle: u64,
}

/// Everything the fault injector needs to know, in one value.
///
/// All rates are per-traversal probabilities drawn from the plan's own
/// RNG stream (seeded by `seed`), independent of the traffic RNG, so
/// enabling faults never perturbs which packets are generated.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (independent of the traffic seed).
    pub seed: u64,
    /// Per-traversal probability that a data flit's CRC is corrupted on
    /// a link. The flit keeps travelling and consuming its reserved
    /// resources; the destination discards it and NACKs the source.
    pub data_corrupt_rate: f64,
    /// Per-traversal probability that a control flit is dropped on a
    /// link. The link-level repair re-drives it `repair_delay` cycles
    /// later, re-issuing the bookings it carries (FR reservation repair).
    pub control_drop_rate: f64,
    /// Extra cycles a dropped control flit waits before the repair
    /// re-drives it.
    pub repair_delay: u64,
    /// Propagation delay of ACKs and NACKs from destination back to
    /// source (modelled as a fixed out-of-band latency).
    pub ack_latency: u64,
    /// Base retransmit timeout armed after each retransmission; doubles
    /// per attempt up to `max_backoff_exp` doublings.
    pub retransmit_timeout: u64,
    /// Cap on exponential-backoff doublings of the retransmit timeout.
    pub max_backoff_exp: u32,
    /// Permanent link failures, applied in `at_cycle` order.
    pub dead_links: Vec<DeadLink>,
}

impl FaultPlan {
    /// A plan that injects nothing: all rates zero, no dead links.
    ///
    /// Installing a quiet plan is indistinguishable from installing no
    /// plan at all (see [`FaultPlan::is_active`]).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            data_corrupt_rate: 0.0,
            control_drop_rate: 0.0,
            repair_delay: 8,
            ack_latency: 16,
            retransmit_timeout: 256,
            max_backoff_exp: 4,
            dead_links: Vec::new(),
        }
    }

    /// True if the plan can actually inject a fault. Networks ignore
    /// inactive plans entirely, which keeps fault-free runs bit-identical
    /// to runs that never loaded the fault layer.
    pub fn is_active(&self) -> bool {
        self.data_corrupt_rate > 0.0 || self.control_drop_rate > 0.0 || !self.dead_links.is_empty()
    }

    /// A randomized-but-reproducible plan derived entirely from `seed`:
    /// small transient rates and one permanent horizontal link failure at
    /// an interior node of `mesh`. Used by the chaos and determinism
    /// suites to explore many fault schedules without hand-writing them.
    pub fn randomized(seed: u64, mesh: Mesh) -> Self {
        let mut rng = Rng::from_seed(seed ^ 0xFA17_F1A5);
        // Rates in [1e-4, ~2e-3]: high enough to fire in short runs,
        // low enough that retransmissions stay bounded.
        let data_corrupt_rate = 1e-4 * (1 + rng.below(20)) as f64;
        let control_drop_rate = 1e-4 * (1 + rng.below(20)) as f64;
        // One dead horizontal link at an interior node (x in 1..w-2 so an
        // east neighbour exists and detours have room on both sides).
        let (w, h) = (mesh.width(), mesh.height());
        let x = 1 + (rng.below((w as u64).saturating_sub(3).max(1)) as u16);
        let y = 1 + (rng.below((h as u64).saturating_sub(2).max(1)) as u16);
        let port = if rng.below(2) == 0 {
            Port::East
        } else {
            Port::West
        };
        let dead = DeadLink {
            node: mesh.node_at(x.min(w - 2), y.min(h - 1)),
            port,
            at_cycle: 64 + rng.below(512),
        };
        FaultPlan {
            seed,
            data_corrupt_rate,
            control_drop_rate,
            dead_links: vec![dead],
            ..FaultPlan::quiet(seed)
        }
    }

    /// Compact one-line description for `RunManifest` config strings,
    /// e.g. `faults(seed=7,corrupt=1e-3,drop=5e-4,dead=1)`.
    pub fn summary(&self) -> String {
        format!(
            "faults(seed={},corrupt={:e},drop={:e},repair={},ack={},rto={},backoff={},dead={})",
            self.seed,
            self.data_corrupt_rate,
            self.control_drop_rate,
            self.repair_delay,
            self.ack_latency,
            self.retransmit_timeout,
            self.max_backoff_exp,
            self.dead_links.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_inactive() {
        assert!(!FaultPlan::quiet(7).is_active());
    }

    #[test]
    fn any_rate_or_dead_link_activates() {
        let mut p = FaultPlan::quiet(7);
        p.data_corrupt_rate = 1e-3;
        assert!(p.is_active());
        let mut p = FaultPlan::quiet(7);
        p.control_drop_rate = 1e-3;
        assert!(p.is_active());
        let mut p = FaultPlan::quiet(7);
        p.dead_links.push(DeadLink {
            node: NodeId::new(0),
            port: Port::East,
            at_cycle: 10,
        });
        assert!(p.is_active());
    }

    #[test]
    fn randomized_plans_are_reproducible_and_active() {
        let mesh = Mesh::new(8, 8);
        let a = FaultPlan::randomized(42, mesh);
        let b = FaultPlan::randomized(42, mesh);
        assert_eq!(a, b);
        assert!(a.is_active());
        assert_ne!(a, FaultPlan::randomized(43, mesh));
    }

    #[test]
    fn randomized_dead_link_is_horizontal_and_on_mesh() {
        let mesh = Mesh::new(8, 8);
        for seed in 0..32 {
            let p = FaultPlan::randomized(seed, mesh);
            for d in &p.dead_links {
                assert!(matches!(d.port, Port::East | Port::West));
                assert!(
                    mesh.neighbor(d.node, d.port).is_some(),
                    "dead link must be a real link"
                );
            }
        }
    }

    #[test]
    fn summary_mentions_the_knobs() {
        let p = FaultPlan::quiet(9);
        let s = p.summary();
        assert!(s.contains("seed=9"));
        assert!(s.contains("dead=0"));
    }
}
