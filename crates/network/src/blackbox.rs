//! Black-box flight recording, crash sidecars and manifest-driven replay.
//!
//! The observability layer's "what happened?" machinery: a run armed
//! through [`run_blackbox`] carries a bounded [`RingSink`] flight
//! recorder and the network's progress watchdog; when the watchdog
//! fires, or a conservation/contract panic unwinds out of the cycle
//! loop, the harness captures a **crash sidecar** — one JSON document
//! holding the ring's recent events, the complete
//! [`Network::state_snapshot`] dump with its digest, the reproduction
//! manifest and the [`ReplaySpec`] that rebuilds the run.
//!
//! Because the whole simulator is deterministic from its seed, the
//! sidecar is *executable*: [`replay_to_cycle`] reconstructs the network
//! with the exact recipe of the experiment harness, re-runs it to the
//! captured cycle (on any thread count) and verifies that the live
//! [`Network::state_digest`] matches the dump bit for bit. That replay
//! check is also the state-serialization substrate for checkpoint /
//! restore: a state dump that replays bit-identically is a state dump
//! that can be trusted to restore from.

use crate::Network;
use flit_reservation::{FrConfig, FrRouter};
use noc_engine::trace::RingSink;
use noc_engine::Rng;
use noc_faults::{DeadLink, FaultPlan};
use noc_flow::LinkTiming;
use noc_metrics::{json_diff, Json, JsonDiff, RunManifest};
use noc_topology::{Mesh, NodeId, Port};
use noc_traffic::{LoadSpec, TrafficGenerator};
use noc_vc::{VcConfig, VcRouter};

/// Version of the crash-sidecar document layout.
pub const SIDECAR_SCHEMA_VERSION: u64 = 1;

/// Everything needed to rebuild a blackbox run from scratch: the
/// construction recipe parameters of the experiment harness plus the
/// observability knobs. Serializes to/from the `replay` section of a
/// crash sidecar, so a sidecar alone reproduces its run.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplaySpec {
    /// Flow-control preset label: `VC8`, `VC32`, `FR6` or `FR13`.
    pub config: String,
    /// Mesh width in nodes.
    pub mesh_width: u16,
    /// Mesh height in nodes.
    pub mesh_height: u16,
    /// Offered load as a fraction of capacity.
    pub load: f64,
    /// Packet length in data flits.
    pub packet_flits: u32,
    /// Root RNG seed; traffic and router streams fork from it exactly as
    /// in the experiment harness.
    pub seed: u64,
    /// Cycles of active injection before the drain begins.
    pub inject_cycles: u64,
    /// Maximum drain cycles after injection stops.
    pub drain_cap: u64,
    /// Flight-recorder capacity exponent (the ring holds `1 << ring_log2`
    /// events).
    pub ring_log2: u32,
    /// Progress-watchdog threshold in cycles; `None` disables it.
    pub watchdog: Option<u64>,
    /// Fault plan to arm, if any.
    pub fault: Option<FaultPlan>,
}

impl ReplaySpec {
    /// A small default spec: FR6 on a 4×4 mesh at moderate load.
    pub fn fr6_small(seed: u64) -> Self {
        ReplaySpec {
            config: "FR6".into(),
            mesh_width: 4,
            mesh_height: 4,
            load: 0.3,
            packet_flits: 5,
            seed,
            inject_cycles: 500,
            drain_cap: 20_000,
            ring_log2: 10,
            watchdog: Some(500),
            fault: None,
        }
    }

    /// Renders the spec as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("config".into(), Json::str(&self.config)),
            ("mesh_width".into(), Json::Num(self.mesh_width as f64)),
            ("mesh_height".into(), Json::Num(self.mesh_height as f64)),
            ("load".into(), Json::Num(self.load)),
            ("packet_flits".into(), Json::Num(self.packet_flits as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("inject_cycles".into(), Json::Num(self.inject_cycles as f64)),
            ("drain_cap".into(), Json::Num(self.drain_cap as f64)),
            ("ring_log2".into(), Json::Num(self.ring_log2 as f64)),
            (
                "watchdog".into(),
                match self.watchdog {
                    Some(w) => Json::Num(w as f64),
                    None => Json::Null,
                },
            ),
            (
                "fault".into(),
                match &self.fault {
                    Some(p) => fault_plan_to_json(p),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a spec back out of [`ReplaySpec::to_json`]'s layout.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let u64_field = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("replay spec: missing numeric field `{key}`"))
        };
        let config = doc
            .get("config")
            .and_then(Json::as_str)
            .ok_or("replay spec: missing `config`")?
            .to_string();
        let load = doc
            .get("load")
            .and_then(Json::as_f64)
            .ok_or("replay spec: missing `load`")?;
        let watchdog = match doc.get("watchdog") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("replay spec: `watchdog` must be a number or null")?,
            ),
        };
        let fault = match doc.get("fault") {
            None | Some(Json::Null) => None,
            Some(v) => Some(fault_plan_from_json(v)?),
        };
        Ok(ReplaySpec {
            config,
            mesh_width: u64_field("mesh_width")? as u16,
            mesh_height: u64_field("mesh_height")? as u16,
            load,
            packet_flits: u64_field("packet_flits")? as u32,
            seed: u64_field("seed")?,
            inject_cycles: u64_field("inject_cycles")?,
            drain_cap: u64_field("drain_cap")?,
            ring_log2: u64_field("ring_log2")? as u32,
            watchdog,
            fault,
        })
    }

    /// The mesh this spec runs on.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.mesh_width, self.mesh_height)
    }

    /// Builds the network exactly as the experiment harness does: one
    /// root RNG from `seed`, the traffic stream on the harness's fork
    /// constant, one router stream per node forked by node id, and the
    /// ring flight recorder as the network-level sink.
    pub fn build(&self) -> Result<BlackboxNet, String> {
        let mesh = self.mesh();
        let root = Rng::from_seed(self.seed);
        let spec = LoadSpec::fraction_of_capacity(self.load, self.packet_flits);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(0x7261_6666_6963)); // "raffic"
        let ring = RingSink::new(1usize << self.ring_log2);
        let mut net = match self.config.as_str() {
            "VC8" | "VC32" => {
                let cfg = if self.config == "VC8" {
                    VcConfig::vc8()
                } else {
                    VcConfig::vc32()
                };
                BlackboxNet::Vc(Network::with_tracer(
                    mesh,
                    LinkTiming::fast_control(),
                    2,
                    generator,
                    |node| VcRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
                    ring,
                ))
            }
            "FR6" | "FR13" => {
                let cfg = if self.config == "FR6" {
                    FrConfig::fr6()
                } else {
                    FrConfig::fr13()
                };
                BlackboxNet::Fr(Network::with_tracer(
                    mesh,
                    cfg.timing,
                    cfg.control_lanes,
                    generator,
                    |node| FrRouter::new(mesh, node, cfg, root.fork(node.raw() as u64)),
                    ring,
                ))
            }
            other => return Err(format!("unknown flow-control preset `{other}`")),
        };
        if let Some(plan) = &self.fault {
            net.set_fault_plan(plan.clone());
        }
        net.set_watchdog(self.watchdog);
        Ok(net)
    }
}

/// Renders a fault plan as JSON (the sidecar's `replay.fault` section).
pub fn fault_plan_to_json(plan: &FaultPlan) -> Json {
    Json::obj(vec![
        ("seed".into(), Json::Num(plan.seed as f64)),
        (
            "data_corrupt_rate".into(),
            Json::Num(plan.data_corrupt_rate),
        ),
        (
            "control_drop_rate".into(),
            Json::Num(plan.control_drop_rate),
        ),
        ("repair_delay".into(), Json::Num(plan.repair_delay as f64)),
        ("ack_latency".into(), Json::Num(plan.ack_latency as f64)),
        (
            "retransmit_timeout".into(),
            Json::Num(plan.retransmit_timeout as f64),
        ),
        (
            "max_backoff_exp".into(),
            Json::Num(plan.max_backoff_exp as f64),
        ),
        (
            "dead_links".into(),
            Json::Arr(
                plan.dead_links
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("node".into(), Json::Num(d.node.raw() as f64)),
                            ("port".into(), Json::str(format!("{:?}", d.port))),
                            ("at_cycle".into(), Json::Num(d.at_cycle as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a fault plan from [`fault_plan_to_json`]'s layout.
pub fn fault_plan_from_json(doc: &Json) -> Result<FaultPlan, String> {
    let u64_field = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fault plan: missing numeric field `{key}`"))
    };
    let f64_field = |key: &str| -> Result<f64, String> {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("fault plan: missing numeric field `{key}`"))
    };
    let mut dead_links = Vec::new();
    for entry in doc
        .get("dead_links")
        .and_then(Json::as_array)
        .ok_or("fault plan: missing `dead_links`")?
    {
        let node = entry
            .get("node")
            .and_then(Json::as_u64)
            .ok_or("dead link: missing `node`")?;
        let port = match entry.get("port").and_then(Json::as_str) {
            Some("North") => Port::North,
            Some("South") => Port::South,
            Some("East") => Port::East,
            Some("West") => Port::West,
            Some("Local") => Port::Local,
            other => return Err(format!("dead link: bad port {other:?}")),
        };
        dead_links.push(DeadLink {
            node: NodeId::new(node as u16),
            port,
            at_cycle: entry
                .get("at_cycle")
                .and_then(Json::as_u64)
                .ok_or("dead link: missing `at_cycle`")?,
        });
    }
    Ok(FaultPlan {
        seed: u64_field("seed")?,
        data_corrupt_rate: f64_field("data_corrupt_rate")?,
        control_drop_rate: f64_field("control_drop_rate")?,
        repair_delay: u64_field("repair_delay")?,
        ack_latency: u64_field("ack_latency")?,
        retransmit_timeout: u64_field("retransmit_timeout")?,
        max_backoff_exp: u64_field("max_backoff_exp")? as u32,
        dead_links,
    })
}

/// A ring-armed network of either shipped router family, so the blackbox
/// harness (and `frfc-inspect`) can drive both through one value.
pub enum BlackboxNet {
    /// Virtual-channel baseline.
    Vc(Network<VcRouter, RingSink>),
    /// Flit-reservation.
    Fr(Network<FrRouter, RingSink>),
}

macro_rules! delegate {
    ($self:ident, $net:ident => $body:expr) => {
        match $self {
            BlackboxNet::Vc($net) => $body,
            BlackboxNet::Fr($net) => $body,
        }
    };
}

impl BlackboxNet {
    /// Steps one cycle: sequential for `threads <= 1`, sharded otherwise.
    pub fn step(&mut self, threads: usize) {
        delegate!(self, net => {
            if threads <= 1 {
                net.cycle();
            } else {
                net.cycle_sharded(threads);
            }
        })
    }

    /// See [`Network::stop_injection`].
    pub fn stop_injection(&mut self) {
        delegate!(self, net => net.stop_injection())
    }

    /// See [`Network::set_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        delegate!(self, net => net.set_fault_plan(plan))
    }

    /// See [`Network::set_watchdog`].
    pub fn set_watchdog(&mut self, cycles: Option<u64>) {
        delegate!(self, net => net.set_watchdog(cycles))
    }

    /// See [`Network::watchdog_tripped`].
    pub fn watchdog_tripped(&self) -> bool {
        delegate!(self, net => net.watchdog_tripped())
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        delegate!(self, net => net.now().raw())
    }

    /// Packets injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        delegate!(self, net => net.tracker().in_flight())
    }

    /// Flits delivered so far.
    pub fn delivered_flits(&self) -> u64 {
        delegate!(self, net => net.tracker().delivered_flits())
    }

    /// The flight recorder.
    pub fn ring(&self) -> &RingSink {
        delegate!(self, net => net.tracer())
    }

    /// See [`Network::state_snapshot`].
    pub fn state_snapshot(&self) -> Json {
        delegate!(self, net => net.state_snapshot())
    }

    /// See [`Network::state_digest`].
    pub fn state_digest(&self) -> String {
        delegate!(self, net => net.state_digest())
    }
}

/// What ended a blackbox run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// The run drained cleanly: nothing to capture.
    Completed,
    /// The progress watchdog fired (no delivery progress with traffic in
    /// flight).
    Watchdog,
    /// A panic — invariant, contract or conservation violation — unwound
    /// out of the cycle loop; the payload message rides in the sidecar.
    Panic,
    /// The drain cap elapsed with traffic still in flight (throughput
    /// collapse rather than a hard deadlock).
    DrainCap,
}

impl Trigger {
    /// Stable lower-case label used in sidecar documents.
    pub fn label(&self) -> &'static str {
        match self {
            Trigger::Completed => "completed",
            Trigger::Watchdog => "watchdog",
            Trigger::Panic => "panic",
            Trigger::DrainCap => "drain_cap",
        }
    }
}

/// Outcome of [`run_blackbox`]: the trigger, a human-readable detail
/// line, and — for every non-clean trigger — the captured crash sidecar.
#[derive(Clone, Debug)]
pub struct BlackboxRun {
    /// What ended the run.
    pub trigger: Trigger,
    /// One-line diagnosis (panic message, stall length, ...).
    pub detail: String,
    /// The crash sidecar; `None` when the run completed cleanly.
    pub sidecar: Option<Json>,
    /// Cycles executed.
    pub cycles: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Steps one cycle catching panics, so invariant violations become
/// capturable triggers instead of aborting the harness.
fn step_caught(net: &mut BlackboxNet, threads: usize) -> Result<(), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| net.step(threads)))
        .map_err(|p| panic_message(p.as_ref()))
}

/// Assembles a crash sidecar: schema version, trigger, manifest, replay
/// spec, ring contents and the full state dump with its digest.
pub fn capture_sidecar(
    net: &BlackboxNet,
    spec: &ReplaySpec,
    threads: usize,
    trigger: &Trigger,
    detail: &str,
) -> Json {
    let mut manifest = RunManifest::new(
        "blackbox",
        spec.seed,
        format!("{}x{}@{:.2}", spec.mesh_width, spec.mesh_height, spec.load),
        &spec.config,
    );
    manifest.threads = threads.max(1) as u64;
    let ring = net.ring();
    let events: Vec<Json> = ring.events().map(|e| Json::Str(format!("{e:?}"))).collect();
    let state = net.state_snapshot();
    let digest = noc_metrics::state_digest(&state);
    Json::obj(vec![
        (
            "schema_version".into(),
            Json::Num(SIDECAR_SCHEMA_VERSION as f64),
        ),
        ("trigger".into(), Json::str(trigger.label())),
        ("detail".into(), Json::str(detail)),
        ("cycle".into(), Json::Num(net.now() as f64)),
        ("in_flight".into(), Json::Num(net.in_flight() as f64)),
        (
            "delivered_flits".into(),
            Json::Num(net.delivered_flits() as f64),
        ),
        ("manifest".into(), manifest.to_json()),
        ("replay".into(), spec.to_json()),
        (
            "ring".into(),
            Json::obj(vec![
                ("capacity".into(), Json::Num(ring.capacity() as f64)),
                ("dropped".into(), Json::Num(ring.dropped() as f64)),
                ("events".into(), Json::Arr(events)),
            ]),
        ),
        ("state".into(), state),
        ("state_digest".into(), Json::Str(digest)),
    ])
}

/// Runs `spec` end to end with the flight recorder and watchdog armed:
/// `inject_cycles` of traffic, then a drain of at most `drain_cap`
/// cycles. A watchdog trip, a panic out of the cycle loop, or an
/// exhausted drain cap each capture a crash sidecar; a clean drain
/// returns [`Trigger::Completed`] with no sidecar.
pub fn run_blackbox(spec: &ReplaySpec, threads: usize) -> Result<BlackboxRun, String> {
    let mut net = spec.build()?;
    let capture = |net: &BlackboxNet, trigger: Trigger, detail: String| BlackboxRun {
        sidecar: Some(capture_sidecar(net, spec, threads, &trigger, &detail)),
        cycles: net.now(),
        delivered_flits: net.delivered_flits(),
        trigger,
        detail,
    };
    let mut drained = false;
    for phase in ["inject", "drain"] {
        let budget = if phase == "inject" {
            spec.inject_cycles
        } else {
            net.stop_injection();
            spec.drain_cap
        };
        for _ in 0..budget {
            if phase == "drain" && net.in_flight() == 0 {
                drained = true;
                break;
            }
            if let Err(message) = step_caught(&mut net, threads) {
                return Ok(capture(&net, Trigger::Panic, message));
            }
            if net.watchdog_tripped() {
                let detail = format!(
                    "no delivery progress for {} cycles with {} packets in flight",
                    spec.watchdog.unwrap_or(0),
                    net.in_flight()
                );
                return Ok(capture(&net, Trigger::Watchdog, detail));
            }
        }
    }
    if !drained && net.in_flight() > 0 {
        let detail = format!(
            "drain cap of {} cycles elapsed with {} packets in flight",
            spec.drain_cap,
            net.in_flight()
        );
        return Ok(capture(&net, Trigger::DrainCap, detail));
    }
    Ok(BlackboxRun {
        trigger: Trigger::Completed,
        detail: format!("drained at cycle {}", net.now()),
        sidecar: None,
        cycles: net.now(),
        delivered_flits: net.delivered_flits(),
    })
}

/// Runs `spec` to exactly `cycle` cycles (honouring the injection-stop
/// schedule) and captures an unconditional sidecar — the checkpoint
/// write path, and the harness the replay-equality tests drive.
pub fn capture_at_cycle(spec: &ReplaySpec, cycle: u64, threads: usize) -> Result<Json, String> {
    let net = run_to_cycle(spec, cycle, threads)?;
    Ok(capture_sidecar(
        &net,
        spec,
        threads,
        &Trigger::Completed,
        &format!("manual capture at cycle {cycle}"),
    ))
}

/// Rebuilds `spec`'s network and steps it to exactly `cycle` cycles,
/// stopping injection at `spec.inject_cycles` just as the capture run
/// did.
fn run_to_cycle(spec: &ReplaySpec, cycle: u64, threads: usize) -> Result<BlackboxNet, String> {
    let mut net = spec.build()?;
    for t in 0..cycle {
        if t == spec.inject_cycles {
            net.stop_injection();
        }
        net.step(threads);
    }
    if cycle >= spec.inject_cycles {
        // The capture run may have stopped injection on the boundary
        // cycle itself; stopping again is idempotent.
        net.stop_injection();
    }
    Ok(net)
}

/// Result of replaying a sidecar: the captured and live digests plus any
/// structural differences between the dumps.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Cycle the replay ran to.
    pub cycle: u64,
    /// Digest recorded in the sidecar.
    pub expected_digest: String,
    /// Digest of the replayed network's live state.
    pub live_digest: String,
    /// Structural differences between the captured and live dumps
    /// (empty exactly when the digests match).
    pub diffs: Vec<JsonDiff>,
}

impl ReplayReport {
    /// True when the live state matched the capture bit for bit.
    pub fn matches(&self) -> bool {
        self.expected_digest == self.live_digest && self.diffs.is_empty()
    }
}

/// Replays a crash sidecar: rebuilds the network from its `replay`
/// section, runs to the captured cycle on `threads` workers, and
/// compares the live state dump against the captured one bit for bit.
pub fn replay_to_cycle(sidecar: &Json, threads: usize) -> Result<ReplayReport, String> {
    let spec = ReplaySpec::from_json(sidecar.get("replay").ok_or("sidecar: missing `replay`")?)?;
    let cycle = sidecar
        .get("cycle")
        .and_then(Json::as_u64)
        .ok_or("sidecar: missing `cycle`")?;
    let expected_digest = sidecar
        .get("state_digest")
        .and_then(Json::as_str)
        .ok_or("sidecar: missing `state_digest`")?
        .to_string();
    let expected_state = sidecar.get("state").ok_or("sidecar: missing `state`")?;
    let net = run_to_cycle(&spec, cycle, threads)?;
    let live_state = net.state_snapshot();
    let live_digest = noc_metrics::state_digest(&live_state);
    let diffs = json_diff(expected_state, &live_state);
    Ok(ReplayReport {
        cycle,
        expected_digest,
        live_digest,
        diffs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_spec_round_trips_through_json() {
        let mut spec = ReplaySpec::fr6_small(77);
        spec.fault = Some(FaultPlan {
            data_corrupt_rate: 1e-3,
            dead_links: vec![DeadLink {
                node: NodeId::new(5),
                port: Port::West,
                at_cycle: 123,
            }],
            ..FaultPlan::quiet(9)
        });
        let doc = spec.to_json();
        let back = ReplaySpec::from_json(&doc).expect("parse");
        assert_eq!(spec, back);
        // And through the text renderer too.
        let text = doc.render();
        let reparsed = Json::parse(&text).expect("reparse");
        assert_eq!(ReplaySpec::from_json(&reparsed).expect("parse"), spec);
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let mut spec = ReplaySpec::fr6_small(1);
        spec.config = "SAF24".into();
        assert!(spec.build().is_err());
        assert!(run_blackbox(&spec, 1).is_err());
    }

    #[test]
    fn clean_run_produces_no_sidecar() {
        let mut spec = ReplaySpec::fr6_small(0x0B_5E);
        spec.inject_cycles = 120;
        let run = run_blackbox(&spec, 1).expect("run");
        assert_eq!(run.trigger, Trigger::Completed);
        assert!(run.sidecar.is_none());
        assert!(run.delivered_flits > 0);
    }

    #[test]
    fn capture_and_replay_agree_on_the_digest() {
        let mut spec = ReplaySpec::fr6_small(0xD1_6E);
        spec.inject_cycles = 150;
        let sidecar = capture_at_cycle(&spec, 200, 1).expect("capture");
        let report = replay_to_cycle(&sidecar, 1).expect("replay");
        assert!(
            report.matches(),
            "replay diverged: {:?}",
            report.diffs.first()
        );
    }
}
