//! Runtime profiles of the parallel engine.
//!
//! [`crate::Network::set_profiling`] arms wall-clock sampling across the
//! stepping engine: per-phase and per-sequential-tail durations on the
//! driving thread, per-worker busy time and barrier waits inside the
//! [`noc_engine::pool::WorkerPool`], and shard-context lock traffic. The
//! snapshot comes back as an [`EngineProfile`], which renders as a JSON
//! object (for `telemetry_report` and experiment sidecars) or a Chrome
//! trace-event timeline (load `chrome://tracing` or Perfetto on the
//! output of [`EngineProfile::chrome_trace`]).
//!
//! **Barrier-safe clocking.** Every duration is measured as an elapsed
//! `Instant` on the thread that did the work; only elapsed nanoseconds
//! ever cross threads (through relaxed atomic adds). No timestamp from
//! one thread is compared against a timestamp from another, so the
//! profile is meaningful even on hosts without synchronized per-core
//! clocks — and turning it off reverts the engine to the exact
//! instruction stream the determinism suites pin down.
//!
//! All wall-clock data is nondeterministic by nature. It lives here and
//! in `profile.*` registry keys — never in the deterministic metric
//! sections — so same-seed exports stay byte-identical whether or not a
//! run was profiled.

use noc_metrics::Json;

/// Engine phase names, indexing [`EngineProfile::phase_ns`]. Matches the
/// network's phase order: deliver, inject, step, apply, observe.
pub const PROFILE_PHASES: [&str; 5] = ["deliver", "inject", "step", "apply", "observe"];

/// Sequential-tail names, indexing [`EngineProfile::tail_ns`]: the parts
/// of a sharded cycle that run on one thread whatever the worker count
/// (traffic generation, fault events, ejection commit, outbox publish,
/// shard-context construction). These bound the parallel speed-up.
pub const PROFILE_TAILS: [&str; 5] = [
    "traffic_gen",
    "fault_events",
    "eject_commit",
    "outbox_publish",
    "ctx_build",
];

/// One per-window wall-clock sample: the phase and tail time spent while
/// the telemetry window `window` was accumulating. Tails nest inside
/// phases (a breakdown, not extra attribution).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileSample {
    /// Absolute telemetry window index the sample covers.
    pub window: u64,
    /// Per-phase wall-clock nanoseconds within the window.
    pub phase_ns: [u64; 5],
    /// Per-tail wall-clock nanoseconds within the window.
    pub tail_ns: [u64; 5],
}

/// A complete runtime profile of one run, from
/// [`crate::Network::engine_profile`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineProfile {
    /// Worker threads the engine ran with (1 = sequential).
    pub threads: u64,
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Whole-cycle wall clock on the driving thread — the denominator of
    /// [`EngineProfile::attributed_fraction`].
    pub cycle_wall_ns: u64,
    /// Per-phase wall clock, indexed by [`PROFILE_PHASES`].
    pub phase_ns: [u64; 5],
    /// Per-sequential-tail wall clock, indexed by [`PROFILE_TAILS`].
    pub tail_ns: [u64; 5],
    /// Pool rounds executed while profiling (0 for sequential runs).
    pub rounds: u64,
    /// Driving-thread wall clock across those rounds.
    pub round_wall_ns: u64,
    /// Driving-thread time spent waiting at the round barrier after
    /// finishing its own shard.
    pub barrier_wait_ns: u64,
    /// Per-worker busy time inside shard jobs, indexed by worker id.
    pub worker_busy_ns: Vec<u64>,
    /// Per-shard context-mutex acquisitions.
    pub lock_count: Vec<u64>,
    /// Per-shard wall clock spent acquiring those mutexes.
    pub lock_ns: Vec<u64>,
    /// Per-telemetry-window samples (empty without windowed telemetry).
    pub samples: Vec<ProfileSample>,
    /// Telemetry window exponent the samples were folded on, if armed.
    pub window_log2: Option<u32>,
}

impl EngineProfile {
    /// Fraction of the measured whole-cycle wall clock attributed to a
    /// named phase. The phase timers wrap everything a cycle does except
    /// the loop scaffolding itself, so a healthy profile attributes
    /// ≥ 95% (`1.0` when nothing was measured).
    pub fn attributed_fraction(&self) -> f64 {
        if self.cycle_wall_ns == 0 {
            return 1.0;
        }
        let attributed: u64 = self.phase_ns.iter().sum();
        (attributed as f64 / self.cycle_wall_ns as f64).min(1.0)
    }

    /// Worker idle fraction: time workers spent without a shard job,
    /// relative to total worker capacity over the profiled rounds.
    /// `0.0` for sequential runs or unprofiled pools.
    pub fn worker_idle_fraction(&self) -> f64 {
        let threads = self.worker_busy_ns.len() as u64;
        if threads == 0 || self.round_wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.worker_busy_ns.iter().sum();
        let capacity = self.round_wall_ns.saturating_mul(threads);
        (1.0 - busy as f64 / capacity as f64).max(0.0)
    }

    /// Named wall-clock consumers, largest first: every engine phase,
    /// the barrier wait, and every sequential tail (tails are marked
    /// with a `tail:` prefix because they nest inside phases).
    pub fn top_consumers(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for (i, name) in PROFILE_PHASES.iter().enumerate() {
            out.push((format!("phase:{name}"), self.phase_ns[i]));
        }
        out.push(("barrier_wait".to_string(), self.barrier_wait_ns));
        for (i, name) in PROFILE_TAILS.iter().enumerate() {
            out.push((format!("tail:{name}"), self.tail_ns[i]));
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Renders the profile as a JSON object (the `profile` side-car
    /// schema documented in EXPERIMENTS.md).
    pub fn to_json(&self) -> Json {
        let ns_map = |names: &[&str; 5], values: &[u64; 5]| {
            Json::Obj(
                names
                    .iter()
                    .zip(values.iter())
                    .map(|(n, &v)| (n.to_string(), Json::Num(v as f64)))
                    .collect(),
            )
        };
        let u64s =
            |values: &[u64]| Json::Arr(values.iter().map(|&v| Json::Num(v as f64)).collect());
        let samples = Json::Arr(
            self.samples
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("window".into(), Json::Num(s.window as f64)),
                        ("phase_ns".into(), ns_map(&PROFILE_PHASES, &s.phase_ns)),
                        ("tail_ns".into(), ns_map(&PROFILE_TAILS, &s.tail_ns)),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            ("threads".into(), Json::Num(self.threads as f64)),
            ("cycles".into(), Json::Num(self.cycles as f64)),
            ("cycle_wall_ns".into(), Json::Num(self.cycle_wall_ns as f64)),
            (
                "attributed_fraction".into(),
                Json::Num(self.attributed_fraction()),
            ),
            ("phase_ns".into(), ns_map(&PROFILE_PHASES, &self.phase_ns)),
            ("tail_ns".into(), ns_map(&PROFILE_TAILS, &self.tail_ns)),
            (
                "pool".into(),
                Json::Obj(vec![
                    ("rounds".into(), Json::Num(self.rounds as f64)),
                    ("round_wall_ns".into(), Json::Num(self.round_wall_ns as f64)),
                    (
                        "barrier_wait_ns".into(),
                        Json::Num(self.barrier_wait_ns as f64),
                    ),
                    ("worker_busy_ns".into(), u64s(&self.worker_busy_ns)),
                    (
                        "worker_idle_fraction".into(),
                        Json::Num(self.worker_idle_fraction()),
                    ),
                ]),
            ),
            (
                "locks".into(),
                Json::Obj(vec![
                    ("count".into(), u64s(&self.lock_count)),
                    ("ns".into(), u64s(&self.lock_ns)),
                ]),
            ),
            (
                "window_log2".into(),
                match self.window_log2 {
                    Some(l) => Json::Num(l as f64),
                    None => Json::Null,
                },
            ),
            ("samples".into(), samples),
        ])
    }

    /// Renders the profile as a Chrome trace-event document (the JSON
    /// object form with a `traceEvents` array), loadable in
    /// `chrome://tracing` or Perfetto.
    ///
    /// Two tracks are emitted on one process: tid 1 carries the engine
    /// phases, tid 2 the sequential tails. Per-window samples are laid
    /// out sequentially along the timeline (each window's phases
    /// back-to-back), which preserves every duration and the window
    /// ordering; without windowed samples one span per phase/tail covers
    /// the whole run.
    pub fn chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        let meta = |name: &str, tid: u64, label: &str| {
            Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("ph".into(), Json::str("M")),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(tid as f64)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::str(label))]),
                ),
            ])
        };
        events.push(meta("thread_name", 1, "engine phases"));
        events.push(meta("thread_name", 2, "sequential tails"));
        let span =
            |name: &str, tid: u64, ts_us: f64, dur_us: f64, cat: &str, window: Option<u64>| {
                let mut fields = vec![
                    ("name".into(), Json::str(name)),
                    ("cat".into(), Json::str(cat)),
                    ("ph".into(), Json::str("X")),
                    ("pid".into(), Json::Num(1.0)),
                    ("tid".into(), Json::Num(tid as f64)),
                    ("ts".into(), Json::Num(ts_us)),
                    ("dur".into(), Json::Num(dur_us)),
                ];
                if let Some(w) = window {
                    fields.push((
                        "args".into(),
                        Json::Obj(vec![("window".into(), Json::Num(w as f64))]),
                    ));
                }
                Json::Obj(fields)
            };
        let us = |ns: u64| ns as f64 / 1.0e3;
        if self.samples.is_empty() {
            let mut ts = 0.0;
            for (i, name) in PROFILE_PHASES.iter().enumerate() {
                let dur = us(self.phase_ns[i]);
                events.push(span(name, 1, ts, dur, "phase", None));
                ts += dur;
            }
            let mut ts = 0.0;
            for (i, name) in PROFILE_TAILS.iter().enumerate() {
                let dur = us(self.tail_ns[i]);
                if dur > 0.0 {
                    events.push(span(name, 2, ts, dur, "tail", None));
                }
                ts += dur;
            }
        } else {
            let mut phase_ts = 0.0f64;
            let mut tail_ts = 0.0f64;
            for s in &self.samples {
                let window_start = phase_ts;
                for (i, name) in PROFILE_PHASES.iter().enumerate() {
                    let dur = us(s.phase_ns[i]);
                    events.push(span(name, 1, phase_ts, dur, "phase", Some(s.window)));
                    phase_ts += dur;
                }
                // Tails track aligns each window with the phase track.
                tail_ts = tail_ts.max(window_start);
                for (i, name) in PROFILE_TAILS.iter().enumerate() {
                    let dur = us(s.tail_ns[i]);
                    if dur > 0.0 {
                        events.push(span(name, 2, tail_ts, dur, "tail", Some(s.window)));
                        tail_ts += dur;
                    }
                }
            }
        }
        Json::Obj(vec![("traceEvents".into(), Json::Arr(events))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> EngineProfile {
        EngineProfile {
            threads: 4,
            cycles: 1000,
            cycle_wall_ns: 1_000_000,
            phase_ns: [100_000, 200_000, 400_000, 200_000, 60_000],
            tail_ns: [50_000, 0, 30_000, 10_000, 20_000],
            rounds: 2000,
            round_wall_ns: 600_000,
            barrier_wait_ns: 80_000,
            worker_busy_ns: vec![500_000, 480_000, 470_000, 460_000],
            lock_count: vec![2000; 4],
            lock_ns: vec![5_000; 4],
            samples: vec![ProfileSample {
                window: 3,
                phase_ns: [10, 20, 30, 40, 50],
                tail_ns: [1, 0, 2, 3, 4],
            }],
            window_log2: Some(9),
        }
    }

    #[test]
    fn attribution_sums_phases_over_cycle_wall() {
        let p = sample_profile();
        assert!((p.attributed_fraction() - 0.96).abs() < 1e-12);
        assert_eq!(EngineProfile::default().attributed_fraction(), 1.0);
    }

    #[test]
    fn idle_fraction_is_capacity_minus_busy() {
        let p = sample_profile();
        let busy = 500_000.0 + 480_000.0 + 470_000.0 + 460_000.0;
        let expect = 1.0 - busy / (600_000.0 * 4.0);
        assert!((p.worker_idle_fraction() - expect).abs() < 1e-12);
        assert_eq!(EngineProfile::default().worker_idle_fraction(), 0.0);
    }

    #[test]
    fn top_consumers_sorts_descending_with_barrier_and_tails() {
        let p = sample_profile();
        let top = p.top_consumers();
        assert_eq!(top[0].0, "phase:step");
        assert!(top.iter().any(|(n, _)| n == "barrier_wait"));
        assert!(top.iter().any(|(n, _)| n == "tail:eject_commit"));
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn json_shape_is_self_describing() {
        let doc = sample_profile().to_json();
        assert_eq!(doc.get("threads").and_then(Json::as_u64), Some(4));
        let phases = doc.get("phase_ns").expect("phase_ns");
        assert_eq!(phases.get("step").and_then(Json::as_u64), Some(400_000));
        let pool = doc.get("pool").expect("pool");
        assert_eq!(pool.get("rounds").and_then(Json::as_u64), Some(2000));
        assert!(doc.get("attributed_fraction").is_some());
        assert_eq!(doc.get("window_log2").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn chrome_trace_emits_spans_for_every_sampled_phase() {
        let p = sample_profile();
        let doc = p.chrome_trace();
        let rendered = doc.render();
        assert!(rendered.contains("traceEvents"));
        for name in PROFILE_PHASES {
            assert!(rendered.contains(name), "missing phase span {name}");
        }
        // 2 metadata events + 5 phase spans + 4 nonzero tail spans.
        if let Json::Obj(fields) = &doc {
            if let Json::Arr(events) = &fields[0].1 {
                assert_eq!(events.len(), 2 + 5 + 4);
            } else {
                panic!("traceEvents not an array");
            }
        } else {
            panic!("trace not an object");
        }
    }

    #[test]
    fn chrome_trace_without_samples_uses_run_totals() {
        let mut p = sample_profile();
        p.samples.clear();
        let rendered = p.chrome_trace().render();
        assert!(rendered.contains("\"dur\""));
        assert!(rendered.contains("outbox_publish"));
    }
}
