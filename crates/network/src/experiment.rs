//! Experiment harness: build networks for either flow control, sweep
//! offered loads, and locate saturation — the machinery behind every
//! figure and table of the paper.

use crate::{
    run_simulation, run_simulation_sharded, EngineProfile, FaultSummary, Network, RunResult,
    SimConfig,
};
use flit_reservation::{FrConfig, FrRouter};
use noc_engine::trace::{NullSink, SharedSink};
use noc_engine::{sweep, Rng};
use noc_faults::FaultPlan;
use noc_flow::LinkTiming;
use noc_metrics::{MetricsRegistry, NullRecorder};
use noc_provenance::{ProvenanceCollector, ProvenanceReport};
use noc_topology::Mesh;
use noc_traffic::{LoadSpec, TrafficGenerator};
use noc_vc::{VcConfig, VcRouter};

/// Everything one telemetry-armed run produces: the measurement record,
/// the registry (aggregates, series *and* windowed telemetry) and the
/// engine's runtime profile. From [`FlowControl::run_telemetry`].
#[derive(Debug)]
pub struct TelemetryRun {
    /// The measurement record, identical to an uninstrumented run.
    pub result: RunResult,
    /// The filled metrics registry, windows included.
    pub registry: MetricsRegistry,
    /// The engine's wall-clock profile (nondeterministic by nature).
    pub profile: EngineProfile,
}

/// Shared tail of [`FlowControl::run_telemetry`]: arms windows and the
/// profiler, runs the methodology, and snapshots the profile before the
/// registry is taken.
fn run_with_telemetry<R: noc_flow::Router + Send>(
    network: &mut Network<R, NullSink, MetricsRegistry>,
    sim: &SimConfig,
    sample_period: u64,
    window_log2: u32,
    threads: usize,
) -> TelemetryRun {
    network.set_metrics_period(sample_period);
    network.set_telemetry_windows(window_log2);
    network.set_profiling(true);
    let result = if threads <= 1 {
        run_simulation(network, sim)
    } else {
        run_simulation_sharded(network, sim, threads)
    };
    let profile = network.engine_profile();
    TelemetryRun {
        result,
        registry: std::mem::take(network.metrics_mut()),
        profile,
    }
}

/// Which flow control to simulate, with its full configuration.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowControl {
    /// Virtual-channel baseline (Dally '92); carries the link timing since
    /// the VC network has no control wires of its own.
    VirtualChannel(VcConfig, LinkTiming),
    /// Flit-reservation flow control (timing lives in [`FrConfig`]).
    FlitReservation(FrConfig),
}

impl FlowControl {
    /// Short label used in tables and plots (e.g. `VC8`, `FR6`, `WH8`,
    /// `VCT24`, `SAF24`).
    pub fn label(&self) -> String {
        match self {
            FlowControl::VirtualChannel(cfg, _) => {
                let b = cfg.buffers_per_input();
                match cfg.allocation {
                    noc_vc::AllocationUnit::StoreAndForward => format!("SAF{b}"),
                    noc_vc::AllocationUnit::CutThrough => format!("VCT{b}"),
                    noc_vc::AllocationUnit::Flit if cfg.num_vcs == 1 => format!("WH{b}"),
                    noc_vc::AllocationUnit::Flit => format!("VC{b}"),
                }
            }
            FlowControl::FlitReservation(cfg) => format!("FR{}", cfg.data_buffers),
        }
    }

    /// The wire timing this configuration runs on.
    pub fn timing(&self) -> LinkTiming {
        match self {
            FlowControl::VirtualChannel(_, t) => *t,
            FlowControl::FlitReservation(cfg) => cfg.timing,
        }
    }

    /// Runs one simulation at `load` on an `mesh` network.
    pub fn run(&self, mesh: Mesh, load: LoadSpec, sim: &SimConfig) -> RunResult {
        let root = Rng::from_seed(sim.seed);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(0x7261_6666_6963)); // "raffic"
        match self {
            FlowControl::VirtualChannel(cfg, timing) => {
                let mut network = Network::new(mesh, *timing, 2, generator, |node| {
                    VcRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64))
                });
                run_simulation(&mut network, sim)
            }
            FlowControl::FlitReservation(cfg) => {
                let mut network =
                    Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |node| {
                        FrRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64))
                    });
                run_simulation(&mut network, sim)
            }
        }
    }

    /// Runs one simulation at `load` with the given fault plan armed:
    /// deterministic transient link faults (CRC-caught data corruption,
    /// dropped-then-repaired control flits), permanent link failures, and
    /// the end-to-end ACK/NACK/retransmit recovery protocol.
    ///
    /// Identical seeds and methodology to [`FlowControl::run`]; an
    /// inactive plan (all rates zero, no dead links) produces a
    /// bit-identical `RunResult`. Returns the measurement record and the
    /// fault layer's activity summary.
    pub fn run_faulty(
        &self,
        mesh: Mesh,
        load: LoadSpec,
        sim: &SimConfig,
        plan: &FaultPlan,
    ) -> (RunResult, FaultSummary) {
        let root = Rng::from_seed(sim.seed);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(0x7261_6666_6963)); // "raffic"
        match self {
            FlowControl::VirtualChannel(cfg, timing) => {
                let mut network = Network::new(mesh, *timing, 2, generator, |node| {
                    VcRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64))
                });
                network.set_fault_plan(plan.clone());
                let result = run_simulation(&mut network, sim);
                (result, network.fault_summary().unwrap_or_default())
            }
            FlowControl::FlitReservation(cfg) => {
                let mut network =
                    Network::new(mesh, cfg.timing, cfg.control_lanes, generator, |node| {
                        FrRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64))
                    });
                network.set_fault_plan(plan.clone());
                let result = run_simulation(&mut network, sim);
                (result, network.fault_summary().unwrap_or_default())
            }
        }
    }

    /// Runs one simulation at `load` with metrics collection enabled,
    /// returning the run result together with the filled registry.
    ///
    /// Identical methodology to [`FlowControl::run`] — same seeds, same
    /// traffic, same warm-up/measure/drain — and, because metrics never
    /// feed back into the simulation, identical `RunResult`s. The
    /// registry's time-axis series sample every `sample_period` cycles
    /// (0 disables series; counters and gauges are always collected).
    pub fn run_metered(
        &self,
        mesh: Mesh,
        load: LoadSpec,
        sim: &SimConfig,
        sample_period: u64,
    ) -> (RunResult, MetricsRegistry) {
        let root = Rng::from_seed(sim.seed);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(0x7261_6666_6963)); // "raffic"
        match self {
            FlowControl::VirtualChannel(cfg, timing) => {
                let mut network = Network::with_instruments(
                    mesh,
                    *timing,
                    2,
                    generator,
                    |node| VcRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64)),
                    NullSink,
                    MetricsRegistry::new(),
                );
                network.set_metrics_period(sample_period);
                let result = run_simulation(&mut network, sim);
                (result, std::mem::take(network.metrics_mut()))
            }
            FlowControl::FlitReservation(cfg) => {
                let mut network = Network::with_instruments(
                    mesh,
                    cfg.timing,
                    cfg.control_lanes,
                    generator,
                    |node| FrRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64)),
                    NullSink,
                    MetricsRegistry::new(),
                );
                network.set_metrics_period(sample_period);
                let result = run_simulation(&mut network, sim);
                (result, std::mem::take(network.metrics_mut()))
            }
        }
    }

    /// [`FlowControl::run_metered`] with the per-cycle stepping sharded
    /// over `threads` worker threads.
    ///
    /// The sharded engine is bit-identical to sequential stepping, so
    /// both the `RunResult` and the exported registry (after
    /// [`noc_metrics::strip_nondeterministic`] removes wall-clock data)
    /// match the single-threaded run exactly — the contract
    /// `tests/parallel_equivalence.rs` pins.
    pub fn run_metered_sharded(
        &self,
        mesh: Mesh,
        load: LoadSpec,
        sim: &SimConfig,
        sample_period: u64,
        threads: usize,
    ) -> (RunResult, MetricsRegistry) {
        let root = Rng::from_seed(sim.seed);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(0x7261_6666_6963)); // "raffic"
        match self {
            FlowControl::VirtualChannel(cfg, timing) => {
                let mut network = Network::with_instruments(
                    mesh,
                    *timing,
                    2,
                    generator,
                    |node| VcRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64)),
                    NullSink,
                    MetricsRegistry::new(),
                );
                network.set_metrics_period(sample_period);
                let result = run_simulation_sharded(&mut network, sim, threads);
                (result, std::mem::take(network.metrics_mut()))
            }
            FlowControl::FlitReservation(cfg) => {
                let mut network = Network::with_instruments(
                    mesh,
                    cfg.timing,
                    cfg.control_lanes,
                    generator,
                    |node| FrRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64)),
                    NullSink,
                    MetricsRegistry::new(),
                );
                network.set_metrics_period(sample_period);
                let result = run_simulation_sharded(&mut network, sim, threads);
                (result, std::mem::take(network.metrics_mut()))
            }
        }
    }

    /// Runs one simulation at `load` with windowed telemetry and the
    /// runtime profiler armed: the registry collects everything
    /// [`FlowControl::run_metered`] collects *plus* epoch-bucketed
    /// windows of `1 << window_log2` cycles (per-window offered/ejected
    /// flits, latency quantiles, stall and reservation counters, buffer
    /// occupancy), and the engine samples its own wall clock into an
    /// [`EngineProfile`].
    ///
    /// `threads == 1` runs the true sequential engine; larger values
    /// shard the stepping. Either way the `RunResult` and the
    /// deterministic registry sections are bit-identical to
    /// [`FlowControl::run_metered`] at the same seed — telemetry records
    /// only in the sequential phases, and all wall-clock data stays in
    /// the profile.
    pub fn run_telemetry(
        &self,
        mesh: Mesh,
        load: LoadSpec,
        sim: &SimConfig,
        sample_period: u64,
        window_log2: u32,
        threads: usize,
    ) -> TelemetryRun {
        let root = Rng::from_seed(sim.seed);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(0x7261_6666_6963)); // "raffic"
        match self {
            FlowControl::VirtualChannel(cfg, timing) => {
                let mut network = Network::with_instruments(
                    mesh,
                    *timing,
                    2,
                    generator,
                    |node| VcRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64)),
                    NullSink,
                    MetricsRegistry::new(),
                );
                run_with_telemetry(&mut network, sim, sample_period, window_log2, threads)
            }
            FlowControl::FlitReservation(cfg) => {
                let mut network = Network::with_instruments(
                    mesh,
                    cfg.timing,
                    cfg.control_lanes,
                    generator,
                    |node| FrRouter::new(mesh, node, *cfg, root.fork(node.raw() as u64)),
                    NullSink,
                    MetricsRegistry::new(),
                );
                run_with_telemetry(&mut network, sim, sample_period, window_log2, threads)
            }
        }
    }

    /// Runs one simulation at `load` with latency-provenance tracing on,
    /// returning the run result and the reconstructed provenance report.
    ///
    /// Identical methodology and seeds to [`FlowControl::run`]; the
    /// provenance sink is observation-only (the routers' stall scans are
    /// read-only and draw no randomness), so the returned `RunResult` is
    /// bit-identical to an untraced run. Packets with
    /// `id % sample_every == 0` are tracked (1 = every packet).
    pub fn run_traced(
        &self,
        mesh: Mesh,
        load: LoadSpec,
        sim: &SimConfig,
        sample_every: u64,
    ) -> (RunResult, ProvenanceReport) {
        let root = Rng::from_seed(sim.seed);
        let generator = TrafficGenerator::uniform(mesh, load, root.fork(0x7261_6666_6963)); // "raffic"
        let sink = SharedSink::new(ProvenanceCollector::new(sample_every));
        match self {
            FlowControl::VirtualChannel(cfg, timing) => {
                let mut network = Network::with_instruments(
                    mesh,
                    *timing,
                    2,
                    generator,
                    |node| {
                        VcRouter::with_tracer(
                            mesh,
                            node,
                            *cfg,
                            root.fork(node.raw() as u64),
                            sink.clone(),
                        )
                    },
                    sink.clone(),
                    NullRecorder,
                );
                let result = run_simulation(&mut network, sim);
                drop(network);
                (result, sink.into_inner().finish())
            }
            FlowControl::FlitReservation(cfg) => {
                let mut network = Network::with_instruments(
                    mesh,
                    cfg.timing,
                    cfg.control_lanes,
                    generator,
                    |node| {
                        FrRouter::with_tracer(
                            mesh,
                            node,
                            *cfg,
                            root.fork(node.raw() as u64),
                            sink.clone(),
                        )
                    },
                    sink.clone(),
                    NullRecorder,
                );
                let result = run_simulation(&mut network, sim);
                drop(network);
                (result, sink.into_inner().finish())
            }
        }
    }
}

/// One point of a latency-throughput curve.
#[derive(Clone, Debug)]
pub struct LoadPoint {
    /// Offered load as a fraction of capacity.
    pub offered: f64,
    /// Full measurement record.
    pub result: RunResult,
}

/// A labelled latency-throughput curve.
#[derive(Clone, Debug)]
pub struct Curve {
    /// Configuration label (`VC8`, `FR6`, ...).
    pub label: String,
    /// Points in increasing offered load.
    pub points: Vec<LoadPoint>,
}

impl Curve {
    /// Mean latency at the point closest to `offered` (`None` if that
    /// point saturated).
    pub fn latency_at(&self, offered: f64) -> Option<f64> {
        let point = self.points.iter().min_by(|a, b| {
            (a.offered - offered)
                .abs()
                .partial_cmp(&(b.offered - offered).abs())
                .expect("loads are finite")
        })?;
        point.result.completed.then(|| point.result.mean_latency())
    }

    /// Highest offered load whose run completed with latency below
    /// `latency_limit` — the measured saturation throughput.
    pub fn saturation_throughput(&self, latency_limit: f64) -> f64 {
        self.points
            .iter()
            .filter(|p| p.result.completed && p.result.mean_latency() <= latency_limit)
            .map(|p| p.offered)
            .fold(0.0, f64::max)
    }

    /// Lowest measured mean latency — the base (zero-load) latency when
    /// the sweep includes a low-load point.
    pub fn base_latency(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.result.completed)
            .map(|p| p.result.mean_latency())
            .fold(f64::INFINITY, f64::min)
    }
}

/// Sweeps `loads` (fractions of capacity) for one flow control, running
/// points across `threads` workers.
pub fn sweep_loads(
    flow: &FlowControl,
    mesh: Mesh,
    packet_length: u32,
    loads: &[f64],
    sim: &SimConfig,
    threads: usize,
) -> Curve {
    let points = sweep::run_parallel(loads, threads, |i, &fraction| {
        let load = LoadSpec::fraction_of_capacity(fraction, packet_length);
        let mut point_sim = *sim;
        point_sim.seed = sim.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
        let result = flow.run(mesh, load, &point_sim);
        LoadPoint {
            offered: fraction,
            result,
        }
    });
    Curve {
        label: flow.label(),
        points,
    }
}

/// Measures base latency with a single near-zero-load run.
pub fn base_latency(flow: &FlowControl, mesh: Mesh, packet_length: u32, sim: &SimConfig) -> f64 {
    let load = LoadSpec::fraction_of_capacity(0.05, packet_length);
    flow.run(mesh, load, sim).mean_latency()
}

/// Finds saturation throughput by bisection between `lo` (must complete)
/// and `hi` (should saturate), to `tol` resolution in capacity fraction.
///
/// A load "sustains" when the run completes and mean latency stays below
/// `latency_limit` cycles.
pub fn find_saturation(
    flow: &FlowControl,
    mesh: Mesh,
    packet_length: u32,
    sim: &SimConfig,
    latency_limit: f64,
    tol: f64,
) -> f64 {
    let sustains = |fraction: f64| -> bool {
        let load = LoadSpec::fraction_of_capacity(fraction, packet_length);
        let r = flow.run(mesh, load, sim);
        r.completed && r.mean_latency() <= latency_limit
    };
    let mut lo = 0.2;
    let mut hi = 1.0;
    if !sustains(lo) {
        return 0.0;
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if sustains(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_engine::warmup::WarmupConfig;

    fn tiny_sim(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            warmup: WarmupConfig {
                min_cycles: 300,
                max_cycles: 2_000,
                window: 4,
                tolerance: 0.1,
            },
            sample_packets: 120,
            drain_cap: 8_000,
            warmup_probe_period: 16,
        }
    }

    #[test]
    fn labels_match_paper_names() {
        let vc8 = FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control());
        assert_eq!(vc8.label(), "VC8");
        let vc32 = FlowControl::VirtualChannel(VcConfig::vc32(), LinkTiming::fast_control());
        assert_eq!(vc32.label(), "VC32");
        let fr6 = FlowControl::FlitReservation(FrConfig::fr6());
        assert_eq!(fr6.label(), "FR6");
        let fr13 = FlowControl::FlitReservation(FrConfig::fr13());
        assert_eq!(fr13.label(), "FR13");
        assert_eq!(fr6.timing().data_delay, 4);
    }

    #[test]
    fn sweep_produces_monotone_low_load_points() {
        let mesh = Mesh::new(4, 4);
        let fr6 = FlowControl::FlitReservation(FrConfig::fr6());
        let curve = sweep_loads(&fr6, mesh, 5, &[0.1, 0.3], &tiny_sim(2), 1);
        assert_eq!(curve.label, "FR6");
        assert_eq!(curve.points.len(), 2);
        assert!(curve.points[0].result.completed);
        assert!(curve.points[1].result.completed);
        // Latency grows (weakly) with load.
        assert!(
            curve.points[0].result.mean_latency() <= curve.points[1].result.mean_latency() + 2.0
        );
        let base = curve.base_latency();
        assert!(base > 10.0 && base < 80.0);
        assert!(curve.latency_at(0.1).is_some());
    }

    #[test]
    fn saturation_throughput_uses_latency_limit() {
        let mesh = Mesh::new(4, 4);
        let vc8 = FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control());
        let curve = sweep_loads(&vc8, mesh, 5, &[0.2, 0.5, 1.2], &tiny_sim(3), 1);
        let base = curve.base_latency();
        let sat = curve.saturation_throughput(base * 3.0);
        assert!(sat >= 0.2, "low load must sustain (got {sat})");
        assert!(sat < 1.2, "overload must not count as sustained");
    }
}
