//! Wiring routers into a mesh network.
//!
//! The network owns all routers and every directed inter-router link
//! (three wire classes per link: data, control, credit), delivers arrivals
//! at the start of each cycle, injects offered traffic, steps every
//! router, and routes the outputs back onto the wires. All routers
//! observe a consistent snapshot: every arrival for cycle `t` is delivered
//! before any router steps cycle `t`.

use crate::DeliveryTracker;
use noc_engine::trace::{NullSink, TraceSink};
use noc_engine::Cycle;
use noc_flow::{Link, LinkEvent, LinkTiming, Router, StepOutputs, TraceEmit, WireClass};
use noc_topology::{Mesh, NodeId, Port, PortMap};
use noc_traffic::TrafficGenerator;

/// The three wires of one directed inter-router link.
#[derive(Debug)]
struct LinkSet {
    data: Link<LinkEvent>,
    control: Link<LinkEvent>,
    credit: Link<LinkEvent>,
}

/// Per-cycle observation knobs (warm-up signal, occupancy probe).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeConfig {
    /// Node whose buffer pools are sampled for the Section 4.2 occupancy
    /// probe (defaults to the mesh centre).
    pub node: NodeId,
    /// Input port probed.
    pub port: Port,
}

/// Occupancy probe accumulators.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbeState {
    /// Cycles observed.
    pub cycles: u64,
    /// Cycles the probed pool was completely full.
    pub full_cycles: u64,
    /// Sum of occupancy fractions, for the mean.
    pub occupancy_sum: f64,
}

impl ProbeState {
    /// Fraction of observed cycles with a full pool.
    pub fn full_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.full_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean pool occupancy (0..=1).
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum / self.cycles as f64
        }
    }
}

/// A complete simulated mesh network of `R` routers.
///
/// The second type parameter is the network-level [`TraceSink`]; with the
/// default [`NullSink`] every emit site compiles away. The network itself
/// emits the end-to-end events ([`packet_injected`], [`flit_ejected`],
/// [`packet_delivered`], [`control_retried`]) — per-router events come
/// from sinks handed to the routers via `make_router`, typically clones
/// of one [`noc_engine::trace::SharedSink`].
///
/// [`packet_injected`]: noc_flow::TraceEmit::packet_injected
/// [`flit_ejected`]: noc_flow::TraceEmit::flit_ejected
/// [`packet_delivered`]: noc_flow::TraceEmit::packet_delivered
/// [`control_retried`]: noc_flow::TraceEmit::control_retried
pub struct Network<R: Router, S: TraceSink = NullSink> {
    mesh: Mesh,
    timing: LinkTiming,
    routers: Vec<R>,
    /// Directed links: `links[node][mesh port]`.
    links: Vec<PortMap<Option<LinkSet>>>,
    generator: TrafficGenerator,
    tracker: DeliveryTracker,
    now: Cycle,
    probe: ProbeConfig,
    probe_state: ProbeState,
    probe_enabled: bool,
    /// Packets still being offered to a router that refused them.
    backlog: Vec<std::collections::VecDeque<noc_traffic::Packet>>,
    /// Marks injected packets as "measured" while active.
    measuring: bool,
    /// Set while draining: no new traffic is offered.
    injection_stopped: bool,
    /// Control-wire error model (Section 5, "Error recovery"): each
    /// control flit transmission is independently corrupted with this
    /// probability; the error-detection code catches it and the flit is
    /// retransmitted, costing one extra control-wire traversal per retry
    /// while preserving link FIFO order (go-back-N style).
    control_error_rate: f64,
    error_rng: noc_engine::Rng,
    control_retries: u64,
    scratch: StepOutputs,
    sink: S,
}

impl<R: Router> Network<R> {
    /// Builds an untraced network: one router per node (created by
    /// `make_router`), one three-wire link set per directed mesh edge.
    ///
    /// `control_bandwidth` is the control-wire bandwidth in flits/cycle
    /// (the paper transfers 2 narrow control flits per cycle).
    pub fn new(
        mesh: Mesh,
        timing: LinkTiming,
        control_bandwidth: u32,
        generator: TrafficGenerator,
        make_router: impl FnMut(NodeId) -> R,
    ) -> Self {
        Network::with_tracer(
            mesh,
            timing,
            control_bandwidth,
            generator,
            make_router,
            NullSink,
        )
    }
}

impl<R: Router, S: TraceSink> Network<R, S> {
    /// Builds a network whose end-to-end events go to `sink`. Routers
    /// trace separately — pass them their own sinks inside `make_router`.
    pub fn with_tracer(
        mesh: Mesh,
        timing: LinkTiming,
        control_bandwidth: u32,
        generator: TrafficGenerator,
        mut make_router: impl FnMut(NodeId) -> R,
        sink: S,
    ) -> Self {
        let routers: Vec<R> = mesh.nodes().map(&mut make_router).collect();
        let links = mesh
            .nodes()
            .map(|n| {
                PortMap::from_fn(|p| {
                    if p.is_mesh() && mesh.neighbor(n, p).is_some() {
                        Some(LinkSet {
                            data: Link::new(timing.data_delay, 1),
                            control: Link::new(timing.control_delay, control_bandwidth),
                            credit: Link::new(timing.credit_delay, 64),
                        })
                    } else {
                        None
                    }
                })
            })
            .collect();
        let backlog = (0..mesh.node_count())
            .map(|_| std::collections::VecDeque::new())
            .collect();
        let probe = ProbeConfig {
            node: mesh.node_at(mesh.width() / 2, mesh.height() / 2),
            port: Port::West,
        };
        Network {
            mesh,
            timing,
            routers,
            links,
            generator,
            tracker: DeliveryTracker::new(4096),
            now: Cycle::ZERO,
            probe,
            probe_state: ProbeState::default(),
            probe_enabled: false,
            backlog,
            measuring: false,
            injection_stopped: false,
            control_error_rate: 0.0,
            error_rng: noc_engine::Rng::from_seed(0xE44),
            control_retries: 0,
            scratch: StepOutputs::new(),
            sink,
        }
    }

    /// The network-level trace sink.
    pub fn tracer(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the network-level trace sink (e.g. to drain a
    /// [`noc_engine::trace::VecSink`] between measurement windows).
    pub fn tracer_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Enables the control-wire error model: every control flit
    /// transmission is corrupted with probability `rate` and
    /// retransmitted (paper Section 5: "control flits may be protected by
    /// an error detection code and retransmitted in the event of an
    /// error"). Each retry costs one extra control-wire traversal;
    /// corrupted retransmissions are re-retransmitted, and the link
    /// delivers in FIFO order so control flits of a packet never
    /// overtake one another.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1)`.
    pub fn set_control_error_rate(&mut self, rate: f64, seed: u64) {
        assert!((0.0..1.0).contains(&rate), "error rate must be in [0, 1)");
        self.control_error_rate = rate;
        self.error_rng = noc_engine::Rng::from_seed(seed);
    }

    /// Control flits retransmitted so far under the error model.
    pub fn control_retries(&self) -> u64 {
        self.control_retries
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Delivery tracker (latency and conservation accounting).
    pub fn tracker(&self) -> &DeliveryTracker {
        &self.tracker
    }

    /// Traffic generator.
    pub fn generator(&self) -> &TrafficGenerator {
        &self.generator
    }

    /// Immutable access to a router, e.g. for FR statistics.
    pub fn router(&self, node: NodeId) -> &R {
        &self.routers[node.index()]
    }

    /// Iterates over all routers.
    pub fn routers(&self) -> impl Iterator<Item = &R> {
        self.routers.iter()
    }

    /// Starts/stops marking newly injected packets as measured.
    pub fn set_measuring(&mut self, on: bool) {
        self.measuring = on;
    }

    /// Enables the occupancy probe (cleared counters).
    pub fn enable_probe(&mut self) {
        self.probe_enabled = true;
        self.probe_state = ProbeState::default();
    }

    /// Occupancy probe results.
    pub fn probe_state(&self) -> ProbeState {
        self.probe_state
    }

    /// Overrides the probed node/port.
    pub fn set_probe(&mut self, probe: ProbeConfig) {
        self.probe = probe;
    }

    /// Average number of flits queued per router — the warm-up signal.
    pub fn mean_queued_flits(&self) -> f64 {
        let total: usize = self.routers.iter().map(|r| r.queued_flits()).sum();
        total as f64 / self.routers.len() as f64
    }

    /// Stops offering new traffic (used while draining).
    pub fn stop_injection(&mut self) {
        self.backlog.iter_mut().for_each(|q| q.clear());
        self.injection_stopped = true;
    }

    /// Advances the network by one cycle.
    pub fn cycle(&mut self) {
        let now = self.now;
        // Phase 1: deliver link arrivals.
        for n in 0..self.routers.len() {
            for &port in &Port::MESH {
                let Some(set) = self.links[n].index_mut_opt(port) else {
                    continue;
                };
                let deliver_port = port.opposite().expect("mesh port");
                let to = self
                    .mesh
                    .neighbor(NodeId::new(n as u16), port)
                    .expect("link implies neighbor");
                for wire in [&mut set.data, &mut set.control, &mut set.credit] {
                    for event in wire.take_arrivals(now) {
                        self.routers[to.index()].receive(deliver_port, event, now);
                    }
                }
            }
        }
        // Phase 2: offer traffic.
        if !self.injection_stopped {
            for packet in self.generator.tick(now) {
                self.tracker.on_inject(&packet, self.measuring);
                self.sink.packet_injected(
                    now,
                    packet.src,
                    packet.id,
                    packet.src,
                    packet.dest,
                    packet.length_flits,
                );
                self.backlog[packet.src.index()].push_back(packet);
            }
        }
        for n in 0..self.routers.len() {
            while let Some(&packet) = self.backlog[n].front() {
                if self.routers[n].try_inject(packet, now) {
                    self.backlog[n].pop_front();
                } else {
                    break;
                }
            }
        }
        // Phase 3: step every router and route its outputs.
        for n in 0..self.routers.len() {
            self.scratch.clear();
            self.routers[n].step(now, &mut self.scratch);
            let node = NodeId::new(n as u16);
            let sends = std::mem::take(&mut self.scratch.sends);
            for (port, event) in sends {
                assert!(port.is_mesh(), "routers send on mesh ports only");
                let set = self.links[n]
                    .index_mut_opt(port)
                    .unwrap_or_else(|| panic!("send on missing link {node} {port}"));
                let class = event.wire_class();
                let wire = match class {
                    WireClass::Data => &mut set.data,
                    WireClass::Control => &mut set.control,
                    WireClass::Credit => &mut set.credit,
                };
                // Error model: a corrupted control flit is retransmitted;
                // each retry adds one wire traversal of delay.
                let mut extra = 0;
                if class == WireClass::Control && self.control_error_rate > 0.0 {
                    while self.error_rng.chance(self.control_error_rate) {
                        self.control_retries += 1;
                        self.sink.control_retried(now, node, port);
                        extra += self.timing.control_delay.max(1);
                    }
                }
                wire.push_with_extra_delay(now, event, extra)
                    .expect("link bandwidth exceeded: flow-control protocol bug");
            }
            let ejections = std::mem::take(&mut self.scratch.ejections);
            for e in ejections {
                self.sink.flit_ejected(e.at, node, &e.flit);
                let done = self.tracker.on_eject(e.flit.packet, e.flit.seq, node, e.at);
                if let Some(latency) = done {
                    self.sink
                        .packet_delivered(e.at, node, e.flit.packet, latency);
                }
            }
        }
        // Phase 4: probes.
        if self.probe_enabled {
            let r = &self.routers[self.probe.node.index()];
            let occ = r.occupied_data_buffers(self.probe.port);
            let cap = r.data_buffer_capacity(self.probe.port).max(1);
            self.probe_state.cycles += 1;
            if occ >= cap {
                self.probe_state.full_cycles += 1;
            }
            self.probe_state.occupancy_sum += occ as f64 / cap as f64;
        }
        self.now = now.next();
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.cycle();
        }
    }
}

// A small extension so `Network::cycle` can get `Option<&mut LinkSet>`
// out of a `PortMap<Option<LinkSet>>` without fighting the borrow checker.
trait PortMapOptExt {
    fn index_mut_opt(&mut self, port: Port) -> Option<&mut LinkSet>;
}

impl PortMapOptExt for PortMap<Option<LinkSet>> {
    fn index_mut_opt(&mut self, port: Port) -> Option<&mut LinkSet> {
        self[port].as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use flit_reservation::{FrConfig, FrRouter};
    use noc_engine::warmup::WarmupConfig;
    use noc_engine::Rng;
    use noc_traffic::LoadSpec;
    use noc_vc::{VcConfig, VcRouter};

    fn tiny_sim(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            warmup: WarmupConfig {
                min_cycles: 300,
                max_cycles: 2_000,
                window: 4,
                tolerance: 0.1,
            },
            sample_packets: 150,
            drain_cap: 10_000,
            warmup_probe_period: 16,
        }
    }

    fn vc_network(mesh: Mesh, load: f64, seed: u64) -> Network<VcRouter> {
        let root = Rng::from_seed(seed);
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
            VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64))
        })
    }

    fn fr_network(mesh: Mesh, load: f64, seed: u64) -> Network<FrRouter> {
        let root = Rng::from_seed(seed);
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
            FrRouter::new(mesh, node, FrConfig::fr6(), root.fork(node.raw() as u64))
        })
    }

    #[test]
    fn vc_network_conserves_packets() {
        let mesh = Mesh::new(4, 4);
        let mut net = vc_network(mesh, 0.3, 11);
        net.run_cycles(2_000);
        net.stop_injection();
        net.run_cycles(2_000);
        // Everything injected was delivered exactly once (the tracker
        // panics on duplicates/wrong destinations).
        assert_eq!(net.tracker().in_flight(), 0, "network must drain");
        assert!(net.tracker().delivered_packets() > 50);
        assert_eq!(net.mean_queued_flits(), 0.0);
    }

    #[test]
    fn fr_network_conserves_packets() {
        let mesh = Mesh::new(4, 4);
        let mut net = fr_network(mesh, 0.3, 11);
        net.run_cycles(2_000);
        net.stop_injection();
        net.run_cycles(3_000);
        assert_eq!(net.tracker().in_flight(), 0, "network must drain");
        assert!(net.tracker().delivered_packets() > 50);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mesh = Mesh::new(4, 4);
        let mut a = fr_network(mesh, 0.4, 5);
        let mut b = fr_network(mesh, 0.4, 5);
        a.set_measuring(true);
        b.set_measuring(true);
        a.run_cycles(1_500);
        b.run_cycles(1_500);
        assert_eq!(a.tracker().delivered_flits(), b.tracker().delivered_flits());
        assert_eq!(a.tracker().latency().mean(), b.tracker().latency().mean());
    }

    #[test]
    fn different_seeds_differ() {
        let mesh = Mesh::new(4, 4);
        let mut a = vc_network(mesh, 0.4, 5);
        let mut b = vc_network(mesh, 0.4, 6);
        a.set_measuring(true);
        b.set_measuring(true);
        a.run_cycles(1_500);
        b.run_cycles(1_500);
        // Latency trajectories differ with overwhelming probability.
        assert_ne!(a.tracker().latency().mean(), b.tracker().latency().mean());
    }

    #[test]
    fn probe_records_occupancy() {
        let mesh = Mesh::new(4, 4);
        let mut net = fr_network(mesh, 0.8, 3);
        net.enable_probe();
        net.run_cycles(2_000);
        let p = net.probe_state();
        assert_eq!(p.cycles, 2_000);
        assert!(p.mean_occupancy() >= 0.0 && p.mean_occupancy() <= 1.0);
        assert!(p.full_fraction() <= 1.0);
    }

    #[test]
    fn run_simulation_completes_at_low_load() {
        let mesh = Mesh::new(4, 4);
        let mut net = vc_network(mesh, 0.2, 21);
        let r = crate::run_simulation(&mut net, &tiny_sim(21));
        assert!(r.completed);
        assert_eq!(r.delivered, 150);
        assert!(r.mean_latency() > 10.0 && r.mean_latency() < 100.0);
        assert!(r.accepted_fraction > 0.1 && r.accepted_fraction < 0.4);
        assert!(r.end_cycle > r.measure_start);
    }

    #[test]
    fn overload_is_flagged_saturated() {
        let mesh = Mesh::new(4, 4);
        // 150% of capacity cannot be sustained by any flow control.
        let mut net = vc_network(mesh, 1.5, 21);
        let mut sim = tiny_sim(21);
        sim.drain_cap = 500;
        sim.sample_packets = 2_000;
        let r = crate::run_simulation(&mut net, &sim);
        assert!(!r.completed, "overload must be flagged");
        assert!(r.accepted_fraction < 1.2);
    }

    #[test]
    fn fr_beats_vc_latency_at_moderate_load() {
        let mesh = Mesh::new(4, 4);
        let sim = tiny_sim(9);
        let mut vc = vc_network(mesh, 0.4, 9);
        let mut fr = fr_network(mesh, 0.4, 9);
        let rv = crate::run_simulation(&mut vc, &sim);
        let rf = crate::run_simulation(&mut fr, &sim);
        assert!(rv.completed && rf.completed);
        assert!(
            rf.mean_latency() < rv.mean_latency(),
            "FR {:.1} must beat VC {:.1}",
            rf.mean_latency(),
            rv.mean_latency()
        );
    }
}
