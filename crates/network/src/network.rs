//! Wiring routers into a mesh network.
//!
//! The network owns all routers and every directed inter-router link
//! (three wire classes per link: data, control, credit) and drives them
//! through an explicit phase-separated cycle:
//!
//! 1. **deliver** — every link arrival for cycle `t` is drained in place
//!    and handed to its receiving router (which is woken);
//! 2. **inject** — offered traffic is generated into a reusable scratch
//!    buffer and pushed through the per-node backlogs;
//! 3. **step** — every *awake* router advances one cycle into its own
//!    retained [`StepOutputs`] arena. Routers touch only their own state
//!    here;
//! 4. **apply** — the staged outputs are committed to links and the
//!    delivery tracker in router order (this serialises the
//!    control-error RNG and every network-level trace event, which is
//!    what keeps sharded and sequential runs bit-identical);
//! 5. **observe** — probes sample and time advances.
//!
//! All routers observe a consistent snapshot: every arrival for cycle `t`
//! is delivered before any router steps cycle `t`, and nothing sent at
//! cycle `t` is seen before `t + delay` (all wires have delay ≥ 1).
//!
//! The steady state allocates nothing: arrivals pop off links in place,
//! traffic lands in a retained scratch `Vec`, and each router's
//! [`StepOutputs`] arena is drained and reused, so per-cycle `Vec` churn
//! is gone. Quiescent routers ([`noc_flow::Router::is_idle`]) are skipped
//! entirely unless [`Network::set_idle_skip`] turns the wake-list off —
//! by the idle contract, both modes produce bit-identical traces.
//!
//! # Sharded stepping
//!
//! [`Network::cycle_sharded`] drives the same phases across a persistent
//! [`noc_engine::pool::WorkerPool`]: the mesh is partitioned into
//! contiguous node-range shards (a [`ShardPlan`]), and each worker owns
//! its shard's router slots, backlogs **and inbound links** — the link
//! arena is keyed by receiver, so a shard's inbound links are one dense,
//! disjoint memory range. Deliver, backlog offers and step fuse into one
//! parallel round (all three touch only shard-local state). The apply
//! phase also runs sharded when no RNG rides on sends: intra-shard sends
//! push straight onto the receiver's link, while sends whose receiver
//! lives in another shard are staged in a per-shard outbox and published
//! only at the round barrier — the cross-shard hand-off — after which
//! ejections commit sequentially in node order. Whenever sends do draw
//! RNG (control-error model, armed faults), the apply phase falls back
//! to the sequential path wholesale, so the RNG trajectory stays in
//! global node order. Either way the result is bit-identical to
//! [`Network::cycle`] for every thread count and shard plan.

use crate::profile::{EngineProfile, ProfileSample};
use crate::{DeliveryTracker, ShardPlan};
use noc_engine::pool::WorkerPool;
use noc_engine::trace::{NullSink, TraceSink};
use noc_engine::Cycle;
use noc_faults::{
    DeadLink, FaultCounters, FaultPlan, Reliability, ReliabilityAction, RetransmitCause,
};
use noc_flow::{
    Link, LinkEvent, LinkTiming, Router, RouterCounters, StepOutputs, TraceEmit, WireClass,
};
use noc_metrics::{NullRecorder, Recorder};
use noc_topology::{Mesh, NodeId, Port, PortMap};
use noc_traffic::{Packet, TrafficGenerator};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Phase indices into [`Instruments::phase_ns`].
const PHASE_DELIVER: usize = 0;
const PHASE_INJECT: usize = 1;
const PHASE_STEP: usize = 2;
const PHASE_APPLY: usize = 3;
const PHASE_OBSERVE: usize = 4;
const PHASE_NAMES: [&str; 5] = ["deliver", "inject", "step", "apply", "observe"];

/// Sequential-tail indices into [`Instruments::tail_ns`]: the parts of a
/// sharded cycle that run on one thread whatever the worker count, and so
/// bound the parallel speed-up (Amdahl). Indexes must agree with
/// [`crate::profile::PROFILE_TAILS`].
const TAIL_TRAFFIC_GEN: usize = 0;
const TAIL_FAULT_EVENTS: usize = 1;
const TAIL_EJECT_COMMIT: usize = 2;
const TAIL_OUTBOX: usize = 3;
const TAIL_CTX_BUILD: usize = 4;

/// Flits committed onto one directed link, split by wire class.
#[derive(Clone, Copy, Debug, Default)]
struct LinkFlits {
    data: u64,
    control: u64,
    credit: u64,
}

/// Per-input-pool occupancy accumulators (sampled once per cycle).
#[derive(Clone, Copy, Debug, Default)]
struct PoolStat {
    /// Sum of per-cycle occupancy fractions.
    occ_sum: f64,
    /// Cycles the pool was completely full.
    full_cycles: u64,
    /// High-water mark of occupied buffers (flits, not a fraction).
    occ_peak: usize,
}

/// Retained instrumentation state. Present in every network but only ever
/// touched under `M::ENABLED`, so the metrics-off path pays one unused
/// struct per network and nothing per cycle.
#[derive(Debug, Default)]
struct Instruments {
    /// Wall-clock nanoseconds per engine phase (self-profiler).
    phase_ns: [u64; 5],
    /// Wall-clock nanoseconds of the sequential tails (profiler only;
    /// indexed by the `TAIL_*` constants).
    tail_ns: [u64; 5],
    /// Wall-clock nanoseconds of whole cycles while profiling was on —
    /// the denominator of the profiler's attribution check.
    cycle_wall_ns: u64,
    /// Cycles observed while metrics were enabled.
    observed_cycles: u64,
    /// Sum over cycles of the wake-list size (idle-skip effectiveness).
    awake_sum: u64,
    /// Per-router, per-input-port occupancy accumulators.
    pools: Vec<PortMap<PoolStat>>,
    /// High-water mark of network-wide reservations in flight (the sum of
    /// [`Router::bookings_in_flight`] over all routers, sampled once per
    /// cycle; stays zero for disciplines without reservation state).
    bookings_peak: u64,
    /// Per-link flit commit counters: `link_flits[node][out port]`.
    link_flits: Vec<PortMap<LinkFlits>>,
    /// Control-wire bandwidth in flits/cycle (for utilization gauges).
    control_bandwidth: u32,
    /// Windowed telemetry accumulators; `None` until
    /// [`Network::set_telemetry_windows`] arms them.
    win: Option<Box<TelemetryWindow>>,
    /// Per-window wall-clock samples (profiling only; nondeterministic,
    /// exported through [`Network::engine_profile`], never the registry's
    /// deterministic sections).
    profile_samples: Vec<ProfileSample>,
    /// Phase/tail snapshots at the last window fold, for sample deltas.
    prev_phase_ns: [u64; 5],
    prev_tail_ns: [u64; 5],
}

/// Windowed-telemetry state: event accumulators for the window in flight
/// plus snapshots of every cumulative source, so each fold writes exact
/// per-window deltas. All recording sites sit in the sequential phases of
/// both stepping modes, which is what makes windowed exports byte-identical
/// across thread counts and shard plans.
#[derive(Debug)]
struct TelemetryWindow {
    /// Window length exponent (windows span `1 << log2` cycles).
    log2: u32,
    /// Absolute index of the window currently accumulating.
    current: u64,
    /// Whether anything has been observed since the last fold.
    dirty: bool,
    /// Flits offered by the traffic generator this window (whole packets
    /// count all their flits at injection time, matching the tracker).
    offered_flits: u64,
    /// Flits accepted by destination network interfaces this window.
    ejected_flits: u64,
    /// Packets fully delivered this window.
    delivered_packets: u64,
    /// Latencies of packets delivered this window (reset per window).
    latencies: noc_engine::stats::Histogram,
    /// Run totals of the per-window event counts (folded windows only);
    /// the aggregate side of the window-sum == aggregate identity.
    cum_offered_flits: u64,
    cum_ejected_flits: u64,
    cum_delivered_packets: u64,
    /// Router-counter totals at the last fold.
    prev_router: RouterCounters,
    /// Fault-layer counters at the last fold.
    prev_fault: FaultCounters,
    /// Control-retry count at the last fold.
    prev_retries: u64,
    /// Per-router `occ_sum` totals (over ports) at the last fold.
    prev_occ: Vec<f64>,
    /// Observed-cycle count at the last fold.
    prev_observed: u64,
    /// Ports with data capacity per router; lazily filled at first fold.
    occ_ports: Vec<u32>,
}

impl TelemetryWindow {
    fn new(log2: u32, start_window: u64, nodes: usize) -> Self {
        TelemetryWindow {
            log2,
            current: start_window,
            dirty: false,
            offered_flits: 0,
            ejected_flits: 0,
            delivered_packets: 0,
            latencies: noc_engine::stats::Histogram::new(4096),
            cum_offered_flits: 0,
            cum_ejected_flits: 0,
            cum_delivered_packets: 0,
            prev_router: RouterCounters::default(),
            prev_fault: FaultCounters::default(),
            prev_retries: 0,
            prev_occ: vec![0.0; nodes],
            prev_observed: 0,
            occ_ports: Vec::new(),
        }
    }
}

/// Deterministic fault-injection state. Boxed behind an `Option` so a
/// fault-free network carries one null pointer and executes not a single
/// extra fault instruction — traces, RNG trajectories and metric exports
/// stay bit-identical to a network that never heard of faults.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Fault RNG. Decoupled from the control-error RNG and every traffic
    /// stream, and drawn only in the sequential phases, so sharded and
    /// sequential runs see the same fault schedule.
    rng: noc_engine::Rng,
    /// Source-side retransmit buffer and ACK/NACK/timeout bookkeeping.
    reliability: Reliability,
    counters: FaultCounters,
    /// Permanent link failures not yet activated, sorted by `at_cycle`
    /// (then node) *descending* so activation pops from the end.
    pending_dead: Vec<DeadLink>,
    /// Retained scratch for the reliability layer's due actions.
    actions: Vec<ReliabilityAction>,
}

/// Snapshot of the fault layer's activity, for tests and experiment
/// reports. Obtained from [`Network::fault_summary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Event counters: corruptions, drops, discards, ACK/NACK traffic,
    /// retransmissions and masked links.
    pub counters: FaultCounters,
    /// Packets currently held in the source retransmit buffer (packets
    /// that have been NACKed at least once and not yet ACKed).
    pub retransmit_buffered: usize,
    /// Peak retransmit-buffer occupancy over the run.
    pub retransmit_peak: usize,
}

/// The three wires of one directed inter-router link.
#[derive(Debug)]
struct LinkSet {
    data: Link<LinkEvent>,
    control: Link<LinkEvent>,
    credit: Link<LinkEvent>,
}

/// The wire of `set` that carries `class` events.
fn wire_of(set: &mut LinkSet, class: WireClass) -> &mut Link<LinkEvent> {
    match class {
        WireClass::Data => &mut set.data,
        WireClass::Control => &mut set.control,
        WireClass::Credit => &mut set.credit,
    }
}

/// A node's deliver scan order: its mesh in-ports sorted by the sending
/// neighbour's node id, `None`-padded. Draining a node's inbound links in
/// this order replays, per receiver, exactly the arrival order of the
/// historical sender-major scan — which is what keeps the receiver-keyed
/// link arena bit-identical to the engine every baseline was tuned on.
#[derive(Clone, Copy, Debug, Default)]
struct DeliverOrder {
    ports: [Option<Port>; 4],
}

/// One router plus the per-router state the stepping engine needs: the
/// retained output arena its step phase writes into, and the wake flag
/// that lets quiescent routers be skipped. Keeping these together (rather
/// than in parallel vectors) lets the sharded engine hand each worker
/// thread a contiguous, self-contained chunk with no unsafe splitting.
#[derive(Debug)]
struct RouterSlot<R> {
    router: R,
    /// Outputs staged by this cycle's step, drained by the apply phase.
    /// Retained across cycles so the steady state never allocates.
    out: StepOutputs,
    /// Wake flag: step this router this cycle. Set by arrivals and
    /// accepted injections, recomputed from `is_idle` on quiet steps.
    active: bool,
    /// Consecutive output-free steps since the last wake or `is_idle`
    /// scan; the scan only runs once this reaches [`IDLE_HYSTERESIS`].
    quiet: u32,
}

/// After this many consecutive output-free steps a slot pays for a full
/// [`Router::is_idle`] scan; until then it is presumed still busy. Above
/// ~40% load routers oscillate between busy and briefly-quiet, and
/// scanning on every quiet step made the scan itself the dominant
/// stepping cost — the streak requirement amortises it ~[`IDLE_HYSTERESIS`]×.
/// Any value is trace-neutral: by the idle contract, stepping a router
/// the scan would have retired is a pure no-op.
const IDLE_HYSTERESIS: u32 = 8;

/// Steps one router slot for cycle `now`. With `idle_skip`, a slot that
/// is not awake is passed over: its arena is already empty (the apply
/// phase drains it every cycle) and, by the [`Router::is_idle`] contract,
/// stepping it would change nothing.
fn step_slot<R: Router>(slot: &mut RouterSlot<R>, now: Cycle, idle_skip: bool) {
    if idle_skip && !slot.active {
        debug_assert!(slot.out.sends.is_empty() && slot.out.ejections.is_empty());
        return;
    }
    slot.out.clear();
    slot.router.step(now, &mut slot.out);
    if !slot.out.sends.is_empty() || !slot.out.ejections.is_empty() {
        // Output proves the router is still active; no scan needed.
        slot.quiet = 0;
        return;
    }
    slot.quiet += 1;
    if slot.quiet >= IDLE_HYSTERESIS {
        slot.quiet = 0;
        slot.active = !slot.router.is_idle();
    }
}

/// Wakes a slot (arrival delivered, injection accepted, fault event):
/// it must step next cycle, and its quiet streak restarts.
#[inline]
fn wake_slot<R>(slot: &mut RouterSlot<R>) {
    slot.active = true;
    slot.quiet = 0;
}

/// Drains every arrival due at `now` into `slot`'s router, waking it.
/// Receiver-owned: touches only this node's slot and its inbound links
/// (`links` may be just the owning shard's arena slice, rebased by
/// `link_base`).
fn deliver_node<R: Router>(
    slot: &mut RouterSlot<R>,
    links: &mut [LinkSet],
    link_base: usize,
    inbound: &PortMap<Option<u32>>,
    order: &DeliverOrder,
    now: Cycle,
) {
    for port in order.ports.into_iter().flatten() {
        let idx = inbound[port].expect("ordered port has a link") as usize;
        let set = &mut links[idx - link_base];
        if set.data.is_empty() && set.control.is_empty() && set.credit.is_empty() {
            continue;
        }
        for wire in [&mut set.data, &mut set.control, &mut set.credit] {
            while let Some(event) = wire.pop_arrival(now) {
                slot.router.receive(port, event, now);
                wake_slot(slot);
            }
        }
    }
}

/// Offers a node's backlog to its router until it refuses, waking it on
/// every acceptance.
fn offer_backlog<R: Router>(slot: &mut RouterSlot<R>, backlog: &mut VecDeque<Packet>, now: Cycle) {
    while let Some(&packet) = backlog.front() {
        if slot.router.try_inject(packet, now) {
            backlog.pop_front();
            wake_slot(slot);
        } else {
            break;
        }
    }
}

/// State for true multi-core stepping: a persistent worker pool, the
/// shard plan pairing it with the mesh, and the retained cross-shard
/// mailboxes. Installed by [`Network::set_shard_plan`] (or lazily by
/// [`Network::cycle_sharded`]); absent on purely sequential networks.
struct ParallelEngine {
    pool: WorkerPool,
    plan: ShardPlan,
    /// Cross-shard outboxes: `outboxes[shard]` holds the sends staged by
    /// that shard whose receiving link lives in another shard, as
    /// `(link arena index, event)` pairs. Published in shard order at
    /// the apply barrier; retained so the steady state never allocates.
    outboxes: Vec<Vec<(u32, LinkEvent)>>,
    /// Per-shard awake-router counts, sampled inside the fused round and
    /// summed (deterministically — u64 partials) after the barrier.
    awake: Vec<u64>,
    /// Profiler: per-shard `ShardCtx` mutex acquisitions. Each worker
    /// only ever locks its own shard's mutex, so these count the lock
    /// traffic the splitting protocol costs (contention-free by design —
    /// the timing numbers prove it).
    lock_count: Vec<AtomicU64>,
    /// Profiler: wall-clock nanoseconds spent acquiring those locks.
    lock_ns: Vec<AtomicU64>,
}

/// One worker's disjoint view of the network's hot per-node state: its
/// shard's router slots, inbound-link arena slice, backlogs and flit
/// counters, plus its outbox and awake-count cell. Built fresh each
/// round by [`shard_contexts`] and handed to the worker through a
/// per-shard mutex — each worker locks only its own context, so the
/// locks never contend and the splitting needs no unsafe code.
struct ShardCtx<'a, R> {
    /// Node index range this shard owns.
    range: Range<usize>,
    /// Arena index of `links[0]`.
    link_base: usize,
    slots: &'a mut [RouterSlot<R>],
    links: &'a mut [LinkSet],
    backlog: &'a mut [VecDeque<Packet>],
    flits: &'a mut [PortMap<LinkFlits>],
    outbox: &'a mut Vec<(u32, LinkEvent)>,
    awake: &'a mut u64,
}

/// Splits the network's per-node state into one disjoint [`ShardCtx`]
/// per shard of `plan`. Contiguous node ranges map to contiguous slices
/// of every array (the link arena is keyed by receiver, so a node range
/// induces the arena range `link_starts[start]..link_starts[end]`).
#[allow(clippy::too_many_arguments)]
fn shard_contexts<'a, R>(
    plan: &ShardPlan,
    link_starts: &[u32],
    mut slots: &'a mut [RouterSlot<R>],
    mut links: &'a mut [LinkSet],
    mut backlog: &'a mut [VecDeque<Packet>],
    mut flits: &'a mut [PortMap<LinkFlits>],
    outboxes: &'a mut [Vec<(u32, LinkEvent)>],
    awake: &'a mut [u64],
) -> Vec<Mutex<ShardCtx<'a, R>>> {
    let mut ctxs = Vec::with_capacity(plan.shards());
    let mut outboxes = outboxes.iter_mut();
    let mut awake = awake.iter_mut();
    for w in 0..plan.shards() {
        let range = plan.range(w);
        let link_base = link_starts[range.start] as usize;
        let link_end = link_starts[range.end] as usize;
        let (s, rest) = slots.split_at_mut(range.len());
        slots = rest;
        let (l, rest) = links.split_at_mut(link_end - link_base);
        links = rest;
        let (b, rest) = backlog.split_at_mut(range.len());
        backlog = rest;
        let (f, rest) = flits.split_at_mut(range.len());
        flits = rest;
        ctxs.push(Mutex::new(ShardCtx {
            range,
            link_base,
            slots: s,
            links: l,
            backlog: b,
            flits: f,
            outbox: outboxes.next().expect("outbox per shard"),
            awake: awake.next().expect("awake cell per shard"),
        }));
    }
    ctxs
}

/// Acquires one shard's context mutex, optionally timing the acquisition
/// into the profiler's per-shard lock cells. Each worker locks only its
/// own shard's mutex, so the wait time measures the protocol's fixed
/// cost, not contention. Barrier-safe clocking: the `Instant` is created
/// and read on the acquiring thread; only the elapsed duration crosses
/// threads, through a relaxed atomic add.
fn lock_shard<'a, 'b, R>(
    ctx: &'a Mutex<ShardCtx<'b, R>>,
    profiling: bool,
    count: &AtomicU64,
    ns: &AtomicU64,
) -> std::sync::MutexGuard<'a, ShardCtx<'b, R>> {
    if profiling {
        let start = Instant::now();
        let guard = ctx.lock().expect("shard context");
        ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        count.fetch_add(1, Ordering::Relaxed);
        guard
    } else {
        ctx.lock().expect("shard context")
    }
}

/// Per-cycle observation knobs (warm-up signal, occupancy probe).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeConfig {
    /// Node whose buffer pools are sampled for the Section 4.2 occupancy
    /// probe (defaults to the mesh centre).
    pub node: NodeId,
    /// Input port probed.
    pub port: Port,
}

/// Occupancy probe accumulators.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProbeState {
    /// Cycles observed.
    pub cycles: u64,
    /// Cycles the probed pool was completely full.
    pub full_cycles: u64,
    /// Sum of occupancy fractions, for the mean.
    pub occupancy_sum: f64,
}

impl ProbeState {
    /// Fraction of observed cycles with a full pool.
    pub fn full_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.full_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean pool occupancy (0..=1).
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum / self.cycles as f64
        }
    }
}

/// A complete simulated mesh network of `R` routers.
///
/// The second type parameter is the network-level [`TraceSink`]; with the
/// default [`NullSink`] every emit site compiles away. The network itself
/// emits the end-to-end events ([`packet_injected`], [`flit_ejected`],
/// [`packet_delivered`], [`control_retried`]) — per-router events come
/// from sinks handed to the routers via `make_router`, typically clones
/// of one [`noc_engine::trace::SharedSink`].
///
/// The third type parameter is the metrics [`Recorder`]; with the default
/// [`NullRecorder`] every instrumentation site compiles away, which is what
/// keeps the trace-equality and determinism suites bit-identical with
/// metrics off. Plug a [`noc_metrics::MetricsRegistry`] in via
/// [`Network::with_instruments`] to collect per-phase wall-clock profiles,
/// per-link flit counts, per-router occupancy and the router-level counters
/// from [`Router::collect_counters`].
///
/// [`packet_injected`]: noc_flow::TraceEmit::packet_injected
/// [`flit_ejected`]: noc_flow::TraceEmit::flit_ejected
/// [`packet_delivered`]: noc_flow::TraceEmit::packet_delivered
/// [`control_retried`]: noc_flow::TraceEmit::control_retried
pub struct Network<R: Router, S: TraceSink = NullSink, M: Recorder = NullRecorder> {
    mesh: Mesh,
    timing: LinkTiming,
    slots: Vec<RouterSlot<R>>,
    /// Dense arena of every directed link, keyed by **receiver**: node
    /// `r`'s inbound links occupy `link_starts[r]..link_starts[r + 1]`,
    /// so a contiguous shard of nodes owns a contiguous arena range.
    links: Vec<LinkSet>,
    /// Arena index of the link arriving at `inbound[node][in-port]`.
    inbound: Vec<PortMap<Option<u32>>>,
    /// Arena start of each node's inbound links (`node_count + 1` long).
    link_starts: Vec<u32>,
    /// Per-node deliver scan order (see [`DeliverOrder`]).
    deliver_order: Vec<DeliverOrder>,
    /// Worker pool + shard plan for parallel stepping; `None` until a
    /// sharded entry point installs one.
    parallel: Option<Box<ParallelEngine>>,
    generator: TrafficGenerator,
    tracker: DeliveryTracker,
    now: Cycle,
    probe: ProbeConfig,
    probe_state: ProbeState,
    probe_enabled: bool,
    /// Packets still being offered to a router that refused them.
    backlog: Vec<std::collections::VecDeque<noc_traffic::Packet>>,
    /// Retained scratch for the generator's per-cycle packet batch.
    packet_scratch: Vec<noc_traffic::Packet>,
    /// Marks injected packets as "measured" while active.
    measuring: bool,
    /// Set while draining: no new traffic is offered.
    injection_stopped: bool,
    /// Skip stepping quiescent routers (trace-neutral; on by default).
    idle_skip: bool,
    /// Control-wire error model (Section 5, "Error recovery"): each
    /// control flit transmission is independently corrupted with this
    /// probability; the error-detection code catches it and the flit is
    /// retransmitted, costing one extra control-wire traversal per retry
    /// while preserving link FIFO order (go-back-N style).
    control_error_rate: f64,
    error_rng: noc_engine::Rng,
    control_retries: u64,
    /// Fault-injection and reliability layer; `None` (the overwhelmingly
    /// common case) means the fault path costs one branch per phase.
    faults: Option<Box<FaultState>>,
    /// Progress watchdog threshold in cycles; `None` disables the check.
    watchdog: Option<u64>,
    /// Delivered-flit count at the last observed progress.
    watchdog_delivered: u64,
    /// Consecutive cycles with packets in flight but no flit delivered.
    watchdog_stalled: u64,
    /// Latched when the stall counter reaches the threshold.
    watchdog_tripped: bool,
    sink: S,
    /// Metrics recorder; `NullRecorder` by default.
    metrics: M,
    /// Series sampling period in cycles; 0 disables series sampling.
    metrics_period: u64,
    /// Runtime profiler switch: when on (and metrics are enabled), the
    /// engine times its sequential tails, whole-cycle wall clock and
    /// shard-lock acquisitions, and folds per-window profile samples.
    /// All wall-clock data stays out of the deterministic export
    /// sections, so profiling never perturbs determinism comparisons.
    profiling: bool,
    /// Retained instrumentation accumulators (untouched when `M` is the
    /// null recorder).
    instruments: Instruments,
}

impl<R: Router> Network<R> {
    /// Builds an untraced network: one router per node (created by
    /// `make_router`), one three-wire link set per directed mesh edge.
    ///
    /// `control_bandwidth` is the control-wire bandwidth in flits/cycle
    /// (the paper transfers 2 narrow control flits per cycle).
    pub fn new(
        mesh: Mesh,
        timing: LinkTiming,
        control_bandwidth: u32,
        generator: TrafficGenerator,
        make_router: impl FnMut(NodeId) -> R,
    ) -> Self {
        Network::with_tracer(
            mesh,
            timing,
            control_bandwidth,
            generator,
            make_router,
            NullSink,
        )
    }
}

impl<R: Router, S: TraceSink> Network<R, S> {
    /// Builds a network whose end-to-end events go to `sink`. Routers
    /// trace separately — pass them their own sinks inside `make_router`.
    pub fn with_tracer(
        mesh: Mesh,
        timing: LinkTiming,
        control_bandwidth: u32,
        generator: TrafficGenerator,
        make_router: impl FnMut(NodeId) -> R,
        sink: S,
    ) -> Self {
        Network::with_instruments(
            mesh,
            timing,
            control_bandwidth,
            generator,
            make_router,
            sink,
            NullRecorder,
        )
    }
}

impl<R: Router, S: TraceSink, M: Recorder> Network<R, S, M> {
    /// Builds a network with both a trace sink and a metrics recorder.
    /// This is the fully instrumented constructor; [`Network::new`] and
    /// [`Network::with_tracer`] delegate here with null instruments.
    pub fn with_instruments(
        mesh: Mesh,
        timing: LinkTiming,
        control_bandwidth: u32,
        generator: TrafficGenerator,
        mut make_router: impl FnMut(NodeId) -> R,
        sink: S,
        metrics: M,
    ) -> Self {
        let slots: Vec<RouterSlot<R>> = mesh
            .nodes()
            .map(|n| RouterSlot {
                router: make_router(n),
                out: StepOutputs::new(),
                // Every router starts awake; the first step settles the
                // flag from its actual state.
                active: true,
                quiet: 0,
            })
            .collect();
        // Receiver-keyed link arena: one entry per directed mesh edge,
        // grouped by receiving node, each node's in-ports ordered by the
        // sending neighbour's id (see `DeliverOrder`).
        let mut links: Vec<LinkSet> = Vec::new();
        let mut inbound: Vec<PortMap<Option<u32>>> = Vec::with_capacity(mesh.node_count());
        let mut link_starts: Vec<u32> = Vec::with_capacity(mesh.node_count() + 1);
        let mut deliver_order: Vec<DeliverOrder> = Vec::with_capacity(mesh.node_count());
        for r in mesh.nodes() {
            link_starts.push(links.len() as u32);
            let mut senders: Vec<(u16, Port)> = Port::MESH
                .iter()
                .filter_map(|&q| mesh.neighbor(r, q).map(|s| (s.raw(), q)))
                .collect();
            senders.sort_unstable();
            let mut map: PortMap<Option<u32>> = PortMap::from_fn(|_| None);
            let mut order = DeliverOrder::default();
            for (i, &(_, q)) in senders.iter().enumerate() {
                order.ports[i] = Some(q);
                map[q] = Some(links.len() as u32);
                links.push(LinkSet {
                    data: Link::new(timing.data_delay, 1),
                    control: Link::new(timing.control_delay, control_bandwidth),
                    credit: Link::new(timing.credit_delay, 64),
                });
            }
            inbound.push(map);
            deliver_order.push(order);
        }
        link_starts.push(links.len() as u32);
        let backlog = (0..mesh.node_count())
            .map(|_| std::collections::VecDeque::new())
            .collect();
        let probe = ProbeConfig {
            node: mesh.node_at(mesh.width() / 2, mesh.height() / 2),
            port: Port::West,
        };
        let instruments = Instruments {
            pools: (0..mesh.node_count())
                .map(|_| PortMap::from_fn(|_| PoolStat::default()))
                .collect(),
            link_flits: (0..mesh.node_count())
                .map(|_| PortMap::from_fn(|_| LinkFlits::default()))
                .collect(),
            control_bandwidth,
            ..Instruments::default()
        };
        Network {
            mesh,
            timing,
            slots,
            links,
            inbound,
            link_starts,
            deliver_order,
            parallel: None,
            generator,
            tracker: DeliveryTracker::new(4096),
            now: Cycle::ZERO,
            probe,
            probe_state: ProbeState::default(),
            probe_enabled: false,
            backlog,
            packet_scratch: Vec::new(),
            measuring: false,
            injection_stopped: false,
            idle_skip: true,
            control_error_rate: 0.0,
            error_rng: noc_engine::Rng::from_seed(0xE44),
            control_retries: 0,
            faults: None,
            watchdog: None,
            watchdog_delivered: 0,
            watchdog_stalled: 0,
            watchdog_tripped: false,
            sink,
            metrics,
            metrics_period: 64,
            profiling: false,
            instruments,
        }
    }

    /// The metrics recorder.
    pub fn metrics(&self) -> &M {
        &self.metrics
    }

    /// Mutable access to the metrics recorder (e.g. to
    /// `std::mem::take` a filled `MetricsRegistry` after a run).
    pub fn metrics_mut(&mut self) -> &mut M {
        &mut self.metrics
    }

    /// Runs `f` against the metrics registry when metrics are enabled;
    /// a no-op (the closure is never built) under the null recorder.
    #[inline(always)]
    pub fn metrics_record(&mut self, f: impl FnOnce(&mut noc_metrics::MetricsRegistry)) {
        self.metrics.record(f);
    }

    /// Sets the series sampling period in cycles (0 disables series).
    /// Counter/gauge collection is unaffected — only the time-axis series
    /// density changes.
    pub fn set_metrics_period(&mut self, period: u64) {
        self.metrics_period = period;
    }

    /// Arms windowed telemetry: per-window event counts and derived
    /// gauges, bucketed into epochs of `1 << log2` cycles. Recording
    /// sites all sit in the sequential phases of both stepping modes, so
    /// windowed exports are byte-identical across thread counts and
    /// shard plans. A no-op under the null recorder.
    ///
    /// Arm before the first cycle: every per-window Sum then sums exactly
    /// to its aggregate counter (the `telemetry_report --quick`
    /// consistency contract).
    ///
    /// # Panics
    ///
    /// Panics unless `log2 < 32` (larger windows than 4 G-cycles are a
    /// configuration bug).
    pub fn set_telemetry_windows(&mut self, log2: u32) {
        assert!(log2 < 32, "telemetry window log2 {log2} out of range");
        if !M::ENABLED {
            return;
        }
        self.instruments.win = Some(Box::new(TelemetryWindow::new(
            log2,
            self.now.raw() >> log2,
            self.slots.len(),
        )));
    }

    /// The armed telemetry window exponent, if any.
    pub fn telemetry_log2(&self) -> Option<u32> {
        self.instruments.win.as_ref().map(|w| w.log2)
    }

    /// Turns the runtime profiler on or off: sequential-tail timers,
    /// whole-cycle wall clock, worker busy/barrier-wait accounting and
    /// shard-lock acquisition counts, read back via
    /// [`Network::engine_profile`]. Requires metrics to be enabled
    /// (`M::ENABLED`); a no-op otherwise.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
        if let Some(engine) = self.parallel.as_ref() {
            engine.pool.set_profiling(M::ENABLED && on);
        }
    }

    /// Whether the runtime profiler is on.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// Snapshot of the runtime profiler: engine phase and sequential-tail
    /// wall-clock totals, per-worker busy/barrier-wait time, shard-lock
    /// traffic and per-window samples. Meaningful after a profiled run;
    /// all zeros otherwise. Wall-clock data is nondeterministic by
    /// nature — export it next to, never inside, the deterministic
    /// metric sections.
    pub fn engine_profile(&self) -> EngineProfile {
        let ins = &self.instruments;
        let mut profile = EngineProfile {
            threads: 1,
            cycles: self.now.raw(),
            cycle_wall_ns: ins.cycle_wall_ns,
            phase_ns: ins.phase_ns,
            tail_ns: ins.tail_ns,
            rounds: 0,
            round_wall_ns: 0,
            barrier_wait_ns: 0,
            worker_busy_ns: Vec::new(),
            lock_count: Vec::new(),
            lock_ns: Vec::new(),
            samples: ins.profile_samples.clone(),
            window_log2: ins.win.as_ref().map(|w| w.log2),
        };
        if let Some(engine) = self.parallel.as_ref() {
            let pool = engine.pool.profile();
            profile.threads = engine.pool.threads() as u64;
            profile.rounds = pool.rounds;
            profile.round_wall_ns = pool.round_wall_ns;
            profile.barrier_wait_ns = pool.barrier_wait_ns;
            profile.worker_busy_ns = pool.busy_ns;
            profile.lock_count = engine
                .lock_count
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
            profile.lock_ns = engine
                .lock_ns
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect();
        }
        profile
    }

    /// The network-level trace sink.
    pub fn tracer(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the network-level trace sink (e.g. to drain a
    /// [`noc_engine::trace::VecSink`] between measurement windows).
    pub fn tracer_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Enables the control-wire error model: every control flit
    /// transmission is corrupted with probability `rate` and
    /// retransmitted (paper Section 5: "control flits may be protected by
    /// an error detection code and retransmitted in the event of an
    /// error"). Each retry costs one extra control-wire traversal;
    /// corrupted retransmissions are re-retransmitted, and the link
    /// delivers in FIFO order so control flits of a packet never
    /// overtake one another.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is within `[0, 1)`.
    pub fn set_control_error_rate(&mut self, rate: f64, seed: u64) {
        assert!((0.0..1.0).contains(&rate), "error rate must be in [0, 1)");
        self.control_error_rate = rate;
        self.error_rng = noc_engine::Rng::from_seed(seed);
    }

    /// Control flits retransmitted so far under the error model.
    pub fn control_retries(&self) -> u64 {
        self.control_retries
    }

    /// Arms deterministic fault injection from `plan`:
    ///
    /// * data flits are corrupted in flight with
    ///   [`FaultPlan::data_corrupt_rate`] per link traversal (caught by
    ///   the CRC at ejection, NACKed, and retransmitted end to end);
    /// * control flits are dropped with
    ///   [`FaultPlan::control_drop_rate`] per traversal, modelled as a
    ///   [`FaultPlan::repair_delay`]-cycle re-drive on the same wire
    ///   (flit-reservation's parked arrivals absorb the late bookings);
    /// * each [`FaultPlan::dead_links`] entry permanently masks one
    ///   output port out of its router's routing at `at_cycle`.
    ///
    /// The whole fault trajectory derives from [`FaultPlan::seed`], so a
    /// run is reproducible from its manifest. Inactive plans (all rates
    /// zero, no dead links) are ignored outright: the network stays
    /// bit-identical to one that never saw a plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if !plan.is_active() {
            return;
        }
        let mut pending_dead = plan.dead_links.clone();
        pending_dead.sort_by(|a, b| {
            b.at_cycle
                .cmp(&a.at_cycle)
                .then(b.node.raw().cmp(&a.node.raw()))
                .then(b.port.index().cmp(&a.port.index()))
        });
        self.faults = Some(Box::new(FaultState {
            rng: noc_engine::Rng::from_seed(plan.seed ^ 0xFA01),
            reliability: Reliability::new(plan.retransmit_timeout, plan.max_backoff_exp),
            counters: FaultCounters::default(),
            pending_dead,
            actions: Vec::new(),
            plan,
        }));
    }

    /// Whether a (non-trivial) fault plan is armed.
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// Snapshot of the fault layer's activity; `None` without an armed
    /// plan.
    pub fn fault_summary(&self) -> Option<FaultSummary> {
        self.faults.as_ref().map(|f| FaultSummary {
            counters: f.counters,
            retransmit_buffered: f.reliability.buffered(),
            retransmit_peak: f.reliability.peak_buffered(),
        })
    }

    /// Arms (or, with `None`, disarms) the progress watchdog: at the end
    /// of every cycle with packets in flight but no flit delivered, a
    /// stall counter increments; once it reaches `cycles` the watchdog
    /// latches [`Network::watchdog_tripped`]. Any delivered flit — or an
    /// empty network — resets the counter. The check only *reads*
    /// tracker state the routers never see, so arming it is
    /// trace-neutral and cannot perturb the simulation.
    ///
    /// # Panics
    ///
    /// Panics on `Some(0)` (the watchdog would fire on the first quiet
    /// cycle of any run, which is never what a caller means).
    pub fn set_watchdog(&mut self, cycles: Option<u64>) {
        assert!(cycles != Some(0), "watchdog threshold must be positive");
        self.watchdog = cycles;
        self.watchdog_delivered = self.tracker.delivered_flits();
        self.watchdog_stalled = 0;
        self.watchdog_tripped = false;
    }

    /// Whether the progress watchdog has fired. Latched until the next
    /// [`Network::set_watchdog`].
    pub fn watchdog_tripped(&self) -> bool {
        self.watchdog_tripped
    }

    /// Consecutive no-progress cycles observed by the armed watchdog.
    pub fn watchdog_stalled_cycles(&self) -> u64 {
        self.watchdog_stalled
    }

    /// Dumps the complete deterministic simulator state — clock, link
    /// arenas, per-router pipeline state, delivery tracker, source
    /// backlogs and the fault layer — as one canonical
    /// [`noc_metrics::Json`] document.
    ///
    /// The dump covers exactly the state that the deterministic stepping
    /// contract reproduces: two runs of the same manifest paused at the
    /// same cycle (any thread count, any shard plan) produce byte-equal
    /// documents, which is what [`Network::state_digest`] fingerprints
    /// and the `frfc-inspect replay` command verifies. Observer-side
    /// state (metrics accumulators, probes, the watchdog, RNG internals)
    /// is deliberately excluded: it varies with instrumentation choices
    /// that must not change the simulator's identity.
    pub fn state_snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::{Json, Snapshot};
        let mut links = Vec::new();
        for r in 0..self.slots.len() {
            for &port in &Port::MESH {
                let Some(idx) = self.inbound[r][port] else {
                    continue;
                };
                let set = &self.links[idx as usize];
                let wires: Vec<(&str, &Link<LinkEvent>)> = vec![
                    ("data", &set.data),
                    ("control", &set.control),
                    ("credit", &set.credit),
                ];
                let mut doc = Vec::new();
                for (name, wire) in wires {
                    let events: Vec<Json> = wire
                        .iter_in_flight()
                        .map(|(at, e)| {
                            Json::obj(vec![
                                ("at".into(), Json::Num(at.raw() as f64)),
                                ("event".into(), Json::Str(format!("{e:?}"))),
                            ])
                        })
                        .collect();
                    if !events.is_empty() {
                        doc.push((name.to_string(), Json::Arr(events)));
                    }
                }
                if !doc.is_empty() {
                    doc.insert(0, ("to".into(), Json::Num(r as f64)));
                    doc.insert(1, ("in_port".into(), Json::str(port_key(port))));
                    links.push(Json::Obj(doc));
                }
            }
        }
        let backlog: Vec<Json> = self
            .backlog
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(node, q)| {
                Json::obj(vec![
                    ("node".into(), Json::Num(node as f64)),
                    (
                        "packets".into(),
                        Json::Arr(q.iter().map(|p| Json::Str(format!("{p:?}"))).collect()),
                    ),
                ])
            })
            .collect();
        let fault = match self.faults.as_ref() {
            None => Json::Null,
            Some(f) => Json::obj(vec![
                ("counters".into(), Json::Str(format!("{:?}", f.counters))),
                (
                    "retransmit_buffered".into(),
                    Json::Num(f.reliability.buffered() as f64),
                ),
                (
                    "retransmit_peak".into(),
                    Json::Num(f.reliability.peak_buffered() as f64),
                ),
                (
                    "pending_dead".into(),
                    Json::Arr(
                        f.pending_dead
                            .iter()
                            .map(|d| Json::Str(format!("{d:?}")))
                            .collect(),
                    ),
                ),
            ]),
        };
        let routers: Vec<Json> = self
            .slots
            .iter()
            .map(|s| s.router.state_snapshot())
            .collect();
        Json::obj(vec![
            ("schema_version".into(), Json::Num(1.0)),
            ("cycle".into(), Json::Num(self.now.raw() as f64)),
            (
                "mesh".into(),
                Json::obj(vec![
                    ("width".into(), Json::Num(self.mesh.width() as f64)),
                    ("height".into(), Json::Num(self.mesh.height() as f64)),
                ]),
            ),
            (
                "injection_stopped".into(),
                Json::Bool(self.injection_stopped),
            ),
            ("measuring".into(), Json::Bool(self.measuring)),
            (
                "control_retries".into(),
                Json::Num(self.control_retries as f64),
            ),
            ("links".into(), Json::Arr(links)),
            ("backlog".into(), Json::Arr(backlog)),
            ("tracker".into(), self.tracker.snapshot()),
            ("fault".into(), fault),
            ("routers".into(), Json::Arr(routers)),
        ])
    }

    /// FNV-1a fingerprint of [`Network::state_snapshot`]'s canonical
    /// rendering — the identity the blackbox replay check compares
    /// bit-for-bit.
    pub fn state_digest(&self) -> String {
        noc_metrics::state_digest(&self.state_snapshot())
    }

    /// Turns the idle-skip wake-list on or off. Skipping is on by default
    /// and trace-neutral (see [`Router::is_idle`]); turning it off forces
    /// every router to step every cycle, which the equivalence tests and
    /// the `engine_throughput` benchmark use as the reference engine.
    pub fn set_idle_skip(&mut self, on: bool) {
        self.idle_skip = on;
        if !on {
            // Every router steps from now on; re-arm the wake flags so
            // re-enabling later starts from a conservative state.
            for slot in &mut self.slots {
                wake_slot(slot);
            }
        }
    }

    /// Whether quiescent routers are currently being skipped.
    pub fn idle_skip(&self) -> bool {
        self.idle_skip
    }

    /// Number of routers that would step if the current cycle ran now —
    /// the instantaneous wake-list size (all routers when idle-skip is
    /// off).
    pub fn awake_routers(&self) -> usize {
        if self.idle_skip {
            self.slots.iter().filter(|s| s.active).count()
        } else {
            self.slots.len()
        }
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Delivery tracker (latency and conservation accounting).
    pub fn tracker(&self) -> &DeliveryTracker {
        &self.tracker
    }

    /// Traffic generator.
    pub fn generator(&self) -> &TrafficGenerator {
        &self.generator
    }

    /// Immutable access to a router, e.g. for FR statistics.
    pub fn router(&self, node: NodeId) -> &R {
        &self.slots[node.index()].router
    }

    /// Iterates over all routers.
    pub fn routers(&self) -> impl Iterator<Item = &R> {
        self.slots.iter().map(|s| &s.router)
    }

    /// Starts/stops marking newly injected packets as measured.
    pub fn set_measuring(&mut self, on: bool) {
        self.measuring = on;
    }

    /// Enables the occupancy probe (cleared counters).
    pub fn enable_probe(&mut self) {
        self.probe_enabled = true;
        self.probe_state = ProbeState::default();
    }

    /// Occupancy probe results.
    pub fn probe_state(&self) -> ProbeState {
        self.probe_state
    }

    /// Overrides the probed node/port.
    pub fn set_probe(&mut self, probe: ProbeConfig) {
        self.probe = probe;
    }

    /// Average number of flits queued per router — the warm-up signal.
    pub fn mean_queued_flits(&self) -> f64 {
        let total: usize = self.slots.iter().map(|s| s.router.queued_flits()).sum();
        total as f64 / self.slots.len() as f64
    }

    /// Stops offering new traffic (used while draining). Packets already
    /// generated but not yet accepted by their source router stay in the
    /// per-node backlogs and keep being offered each cycle: they were
    /// counted by the delivery tracker at generation time, so dropping
    /// them would make a drained network look lossy.
    pub fn stop_injection(&mut self) {
        self.injection_stopped = true;
    }

    /// Phase 1: drain every link arrival for cycle `now` in place and
    /// deliver it to the receiving router, waking it. Receiver-major
    /// scan over the receiver-keyed arena; each node's in-ports drain in
    /// sender-id order, so per-router arrival order is exactly what the
    /// historical sender-major scan produced.
    fn deliver_arrivals(&mut self, now: Cycle) {
        for r in 0..self.slots.len() {
            deliver_node(
                &mut self.slots[r],
                &mut self.links,
                0,
                &self.inbound[r],
                &self.deliver_order[r],
                now,
            );
        }
    }

    /// Fault sub-phase (start of the inject phase, sequential in both
    /// stepping modes): activates permanent link failures due this cycle
    /// and drains the reliability layer's due ACK/NACK/timeout events,
    /// re-offering retransmitted packets through their source backlog.
    fn apply_fault_events(&mut self, now: Cycle) {
        // Move the box out so the loop bodies can borrow other fields.
        let Some(mut f) = self.faults.take() else {
            return;
        };
        while f
            .pending_dead
            .last()
            .is_some_and(|d| d.at_cycle <= now.raw())
        {
            let dead = f.pending_dead.pop().expect("checked non-empty");
            let slot = &mut self.slots[dead.node.index()];
            slot.router.on_link_dead(dead.port);
            wake_slot(slot);
            f.counters.links_masked += 1;
            self.sink.link_masked(now, dead.node, dead.port);
        }
        let mut actions = std::mem::take(&mut f.actions);
        f.reliability.poll(now.raw(), &mut actions);
        for action in actions.drain(..) {
            match action {
                ReliabilityAction::Retransmit {
                    packet,
                    attempt,
                    cause,
                } => {
                    if cause == RetransmitCause::Timeout {
                        f.counters.timeout_retransmits += 1;
                        self.sink.retransmit_timeout(now, packet.src, packet.id);
                    }
                    f.counters.retransmits += 1;
                    self.sink
                        .packet_retransmitted(now, packet.src, packet.id, attempt);
                    // Re-offer through the source backlog. The delivery
                    // tracker keeps the original injection record, so the
                    // reported latency includes the full recovery delay,
                    // and the router re-emits per-flit injection events
                    // for the new copy (conservation counts every copy).
                    self.backlog[packet.src.index()].push_back(packet);
                }
                ReliabilityAction::Retired { .. } => {}
            }
        }
        f.actions = actions;
        self.faults = Some(f);
    }

    /// Inject sub-phase: generates this cycle's traffic (unless stopped)
    /// into the per-node backlogs, registering each packet with the
    /// tracker, the reliability layer and the sink. Touches no router —
    /// the sharded engine runs it sequentially before its parallel round
    /// (packets become visible to routers only through the offers, so
    /// generating before or after the deliver phase is trace-neutral).
    fn generate_traffic(&mut self, now: Cycle) {
        if self.injection_stopped {
            return;
        }
        self.generator.tick_into(now, &mut self.packet_scratch);
        for packet in self.packet_scratch.drain(..) {
            self.tracker.on_inject(&packet, self.measuring);
            if M::ENABLED {
                if let Some(win) = self.instruments.win.as_deref_mut() {
                    win.offered_flits += packet.length_flits as u64;
                }
            }
            if let Some(f) = self.faults.as_mut() {
                f.reliability.register(packet);
            }
            self.sink.packet_injected(
                now,
                packet.src,
                packet.id,
                packet.src,
                packet.dest,
                packet.length_flits,
            );
            self.backlog[packet.src.index()].push_back(packet);
        }
    }

    /// Phase 2: fault events, then traffic generation, then offer each
    /// node's backlog to its router, waking routers that accept.
    fn offer_traffic(&mut self, now: Cycle) {
        if self.faults.is_some() {
            self.tail_timed(TAIL_FAULT_EVENTS, |n| n.apply_fault_events(now));
        }
        self.tail_timed(TAIL_TRAFFIC_GEN, |n| n.generate_traffic(now));
        for n in 0..self.slots.len() {
            offer_backlog(&mut self.slots[n], &mut self.backlog[n], now);
        }
    }

    /// Whether the apply phase draws RNG per send (control-error model
    /// or an armed fault plan). Those draws must happen in global node
    /// order, so the parallel apply stands down and the sequential one
    /// runs instead.
    fn rng_sends(&self) -> bool {
        self.control_error_rate > 0.0 || self.faults.is_some()
    }

    /// Phase 3, sequential form: step every awake router in node order.
    fn step_routers(&mut self, now: Cycle) {
        let idle_skip = self.idle_skip;
        for slot in &mut self.slots {
            step_slot(slot, now, idle_skip);
        }
    }

    /// Phase 4: commit every staged output to the wires and the delivery
    /// tracker, in node order. All cross-router effects happen here, on
    /// one thread, whatever the step phase did — the control-error RNG
    /// draws and the network-level trace events occur in the same order
    /// in sequential and sharded runs.
    fn apply_outputs(&mut self, now: Cycle) {
        for n in 0..self.slots.len() {
            if self.slots[n].out.sends.is_empty() && self.slots[n].out.ejections.is_empty() {
                continue;
            }
            let node = NodeId::new(n as u16);
            // Move the arena out so its drains don't hold a borrow of
            // `self.slots` across the link/tracker updates; moving a
            // `StepOutputs` moves two Vec headers, not their contents.
            let mut out = std::mem::take(&mut self.slots[n].out);
            for (port, mut event) in out.sends.drain(..) {
                assert!(port.is_mesh(), "routers send on mesh ports only");
                let to = self
                    .mesh
                    .neighbor(node, port)
                    .unwrap_or_else(|| panic!("send on missing link {node} {port}"));
                let idx = self.inbound[to.index()][port.opposite().expect("mesh port")]
                    .expect("neighbor implies link");
                let class = event.wire_class();
                let wire = wire_of(&mut self.links[idx as usize], class);
                // Error model: a corrupted control flit is retransmitted;
                // each retry adds one wire traversal of delay.
                let mut extra = 0;
                let mut control_traversals = 1u64;
                if class == WireClass::Control && self.control_error_rate > 0.0 {
                    while self.error_rng.chance(self.control_error_rate) {
                        self.control_retries += 1;
                        self.sink.control_retried(now, node, port);
                        extra += self.timing.control_delay.max(1);
                        control_traversals += 1;
                    }
                }
                // Fault injection: transient link faults flip a data
                // flit's CRC in flight, or swallow a control flit (the
                // link-level repair re-drives it `repair_delay` cycles
                // later on the same FIFO wire).
                if let Some(f) = self.faults.as_mut() {
                    match class {
                        WireClass::Data
                            if f.plan.data_corrupt_rate > 0.0
                                && f.rng.chance(f.plan.data_corrupt_rate) =>
                        {
                            if let LinkEvent::Data(flit) | LinkEvent::VcData(_, flit) = &mut event {
                                flit.crc_ok = false;
                                f.counters.data_corrupted += 1;
                                self.sink.data_corrupted(now, node, flit);
                            }
                        }
                        WireClass::Control
                            if f.plan.control_drop_rate > 0.0
                                && f.rng.chance(f.plan.control_drop_rate) =>
                        {
                            f.counters.control_dropped += 1;
                            self.sink.control_dropped(now, node, port);
                            extra += f.plan.repair_delay.max(1);
                            control_traversals += 1;
                        }
                        _ => {}
                    }
                }
                wire.push_with_extra_delay(now, event, extra)
                    .expect("link bandwidth exceeded: flow-control protocol bug");
                if M::ENABLED {
                    let flits = &mut self.instruments.link_flits[n][port];
                    match class {
                        WireClass::Data => flits.data += 1,
                        WireClass::Control => flits.control += control_traversals,
                        WireClass::Credit => flits.credit += 1,
                    }
                }
            }
            for e in out.ejections.drain(..) {
                if let Some(f) = self.faults.as_mut() {
                    if !e.flit.crc_ok {
                        // The destination's CRC caught an in-flight
                        // corruption: discard the flit and NACK the
                        // packet back to its source (one outstanding
                        // NACK per packet copy).
                        f.counters.corrupt_discarded += 1;
                        self.sink.corrupt_discarded(e.at, node, &e.flit);
                        if f.reliability
                            .schedule_nack(e.flit.packet, e.at.raw() + f.plan.ack_latency)
                        {
                            f.counters.nacks += 1;
                            self.sink.nack_issued(e.at, node, e.flit.packet);
                        }
                        continue;
                    }
                }
                match self.tracker.on_eject(e.flit.packet, e.flit.seq, node, e.at) {
                    Ok(done) => {
                        self.sink.flit_ejected(e.at, node, &e.flit);
                        if M::ENABLED {
                            if let Some(win) = self.instruments.win.as_deref_mut() {
                                win.ejected_flits += 1;
                                if let Some(latency) = done {
                                    win.delivered_packets += 1;
                                    win.latencies.record(latency);
                                }
                            }
                        }
                        if let Some(latency) = done {
                            self.sink
                                .packet_delivered(e.at, node, e.flit.packet, latency);
                            if let Some(f) = self.faults.as_mut() {
                                // Completion ACK: retires the source's
                                // retransmit-buffer entry (and any armed
                                // timeout) `ack_latency` cycles later.
                                f.counters.acks += 1;
                                self.sink.ack_issued(e.at, node, e.flit.packet);
                                f.reliability
                                    .schedule_ack(e.flit.packet, e.at.raw() + f.plan.ack_latency);
                            }
                        }
                    }
                    Err(err) => {
                        // A retransmitted copy of a flit the destination
                        // already accepted: the NI's dedup filter drops
                        // it. Without faults no duplicate can exist, so
                        // surface the tracker's verdict as a crash.
                        let Some(f) = self.faults.as_mut() else {
                            panic!("{err}");
                        };
                        f.counters.duplicate_discarded += 1;
                        self.sink.duplicate_discarded(e.at, node, &e.flit);
                    }
                }
            }
            self.slots[n].out = out;
        }
    }

    /// Phase 5: probes sample, the metrics sampler runs and the clock
    /// advances.
    fn finish_cycle(&mut self, now: Cycle) {
        if self.probe_enabled {
            let r = &self.slots[self.probe.node.index()].router;
            let occ = r.occupied_data_buffers(self.probe.port);
            let cap = r.data_buffer_capacity(self.probe.port).max(1);
            self.probe_state.cycles += 1;
            if occ >= cap {
                self.probe_state.full_cycles += 1;
            }
            self.probe_state.occupancy_sum += occ as f64 / cap as f64;
        }
        if M::ENABLED {
            self.observe_metrics(now);
        }
        if S::ENABLED {
            // Stall provenance: each router classifies the flits that were
            // eligible this cycle but did not move. Runs identically in
            // every stepping mode (this method is shared by `cycle` and
            // `cycle_sharded`), and idle routers emit nothing.
            for slot in &mut self.slots {
                slot.router.emit_stall_provenance(now);
            }
        }
        if let Some(limit) = self.watchdog {
            // Progress watchdog: purely observational — it reads the
            // delivery tracker (state no router ever sees), so arming it
            // leaves traces and RNG trajectories bit-identical.
            let delivered = self.tracker.delivered_flits();
            if delivered != self.watchdog_delivered || self.tracker.in_flight() == 0 {
                self.watchdog_delivered = delivered;
                self.watchdog_stalled = 0;
            } else {
                self.watchdog_stalled += 1;
                if self.watchdog_stalled >= limit {
                    self.watchdog_tripped = true;
                }
            }
        }
        self.now = now.next();
    }

    /// Per-cycle metrics observation: occupancy accumulators every cycle,
    /// time-axis series every `metrics_period` cycles. Only ever called
    /// with metrics enabled; it reads state the routers never see, so it
    /// cannot perturb the simulation.
    fn observe_metrics(&mut self, now: Cycle) {
        self.instruments.observed_cycles += 1;
        let mut bookings = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            let pools = &mut self.instruments.pools[i];
            for &port in &Port::ALL {
                let cap = slot.router.data_buffer_capacity(port);
                if cap == 0 {
                    continue;
                }
                let occ = slot.router.occupied_data_buffers(port);
                let stat = &mut pools[port];
                stat.occ_sum += occ as f64 / cap as f64;
                stat.occ_peak = stat.occ_peak.max(occ);
                if occ >= cap {
                    stat.full_cycles += 1;
                }
            }
            bookings += slot.router.bookings_in_flight();
        }
        self.instruments.bookings_peak = self.instruments.bookings_peak.max(bookings);
        let period = self.metrics_period;
        if period > 0 && now.raw().is_multiple_of(period) {
            let queued = self.mean_queued_flits();
            let awake = self.awake_routers() as f64;
            let in_flight = self.tracker.in_flight() as f64;
            self.metrics.with(|reg| {
                reg.time_weighted_set("net.queued_flits", now, queued);
                reg.series_push("net.queued_flits", period, now, queued);
                reg.series_push("net.awake_routers", period, now, awake);
                reg.series_push("net.in_flight_packets", period, now, in_flight);
                // Per-router occupancy no longer re-walks the routers
                // here: the windowed telemetry layer derives it from the
                // per-cycle `pools` accumulators above, so one
                // accumulation path feeds both the end-of-run gauges and
                // the `router.{i}.occupancy` windows.
            });
        }
    }

    /// Times one engine phase when metrics are enabled; transparent (and
    /// branchless after const folding) under the null recorder.
    #[inline(always)]
    fn timed<T>(&mut self, phase: usize, f: impl FnOnce(&mut Self) -> T) -> T {
        if M::ENABLED {
            let start = Instant::now();
            let result = f(self);
            self.instruments.phase_ns[phase] += start.elapsed().as_nanos() as u64;
            result
        } else {
            f(self)
        }
    }

    /// Times one sequential tail when the profiler is on; transparent
    /// otherwise. Tails nest inside phases, so tail time is a breakdown
    /// of phase time, never additional attribution.
    #[inline(always)]
    fn tail_timed<T>(&mut self, tail: usize, f: impl FnOnce(&mut Self) -> T) -> T {
        if M::ENABLED && self.profiling {
            let start = Instant::now();
            let result = f(self);
            self.instruments.tail_ns[tail] += start.elapsed().as_nanos() as u64;
            result
        } else {
            f(self)
        }
    }

    /// Start-of-cycle telemetry hook: folds the accumulating window when
    /// `now` has crossed into a new one. Runs *before* deliver/inject so
    /// the new window's first-cycle events (traffic generated this cycle)
    /// land in the new window, not the old.
    #[inline(always)]
    fn begin_cycle_telemetry(&mut self, now: Cycle) {
        if !M::ENABLED {
            return;
        }
        let Some(win) = self.instruments.win.as_deref_mut() else {
            return;
        };
        let w = now.raw() >> win.log2;
        if w != win.current {
            self.fold_telemetry_window(w);
        }
        if let Some(win) = self.instruments.win.as_deref_mut() {
            win.dirty = true;
        }
    }

    /// Folds the accumulating telemetry window into the registry and
    /// re-anchors at window `next`: per-window event counts become Sum
    /// windows (element-wise additive, summing back to their aggregate
    /// counters), derived values become Gauge windows, and cumulative
    /// sources (router counters, fault counters, occupancy accumulators)
    /// contribute exact deltas against their last-fold snapshots.
    fn fold_telemetry_window(&mut self, next: u64) {
        let Some(mut win) = self.instruments.win.take() else {
            return;
        };
        if !win.dirty {
            win.current = next;
            self.instruments.win = Some(win);
            return;
        }
        let w = win.current;
        let log2 = win.log2;
        let anchor = Cycle::new(w << log2);

        // Router-counter totals (cumulative) for this fold's deltas.
        let mut totals = RouterCounters::default();
        for slot in &self.slots {
            let mut scratch = RouterCounters::default();
            slot.router.collect_counters(&mut scratch);
            totals.absorb(&scratch);
        }
        let d = totals.delta(&win.prev_router);

        // Per-router occupancy: the same per-cycle `pools` accumulators
        // that feed the end-of-run gauges, windowed by snapshot deltas —
        // one accumulation path serves both consumers.
        if win.occ_ports.is_empty() {
            win.occ_ports = self
                .slots
                .iter()
                .map(|slot| {
                    Port::ALL
                        .iter()
                        .filter(|&&p| slot.router.data_buffer_capacity(p) > 0)
                        .count() as u32
                })
                .collect();
        }
        let d_cycles = self.instruments.observed_cycles - win.prev_observed;
        let mut mean_occ_sum = 0.0;
        let mut occ_now: Vec<f64> = Vec::with_capacity(self.slots.len());
        for (i, pools) in self.instruments.pools.iter().enumerate() {
            let sum: f64 = Port::ALL.iter().map(|&p| pools[p].occ_sum).sum();
            occ_now.push(sum);
            let denom = win.occ_ports[i] as f64 * d_cycles as f64;
            let frac = if denom > 0.0 {
                (sum - win.prev_occ[i]) / denom
            } else {
                0.0
            };
            mean_occ_sum += frac;
        }
        let mean_occ = mean_occ_sum / self.slots.len().max(1) as f64;

        let retries_delta = self.control_retries - win.prev_retries;
        let fault_delta = self.faults.as_ref().map(|f| {
            let c = f.counters;
            let p = win.prev_fault;
            [
                ("fault.retransmits", c.retransmits - p.retransmits),
                ("fault.data_corrupted", c.data_corrupted - p.data_corrupted),
                (
                    "fault.control_dropped",
                    c.control_dropped - p.control_dropped,
                ),
                ("fault.nacks", c.nacks - p.nacks),
            ]
        });
        let lat = &win.latencies;
        let quantiles = [
            ("latency.p50", lat.quantile(0.50).unwrap_or(0) as f64),
            ("latency.p95", lat.quantile(0.95).unwrap_or(0) as f64),
            ("latency.p99", lat.quantile(0.99).unwrap_or(0) as f64),
            ("latency.mean", lat.mean()),
        ];
        let sums = [
            ("net.offered_flits", win.offered_flits),
            ("net.ejected_flits", win.ejected_flits),
            ("net.delivered_packets", win.delivered_packets),
            ("net.control_retries", retries_delta),
            ("total.credit_stalls", d.credit_stalls),
            ("total.vc_alloc_conflicts", d.vc_alloc_conflicts),
            ("total.reservation_hits", d.reservation_hits),
            ("total.reservation_misses", d.reservation_misses),
            ("total.data_flits_sent", d.data_flits_sent),
            ("total.control_flits_sent", d.control_flits_sent),
        ];
        let occ_ports = &win.occ_ports;
        let prev_occ = &win.prev_occ;
        let bookings = totals.bookings_in_flight;
        self.metrics.with(|reg| {
            for (name, value) in sums {
                reg.window_add(name, log2, anchor, value as f64);
            }
            if let Some(fields) = fault_delta {
                for (name, value) in fields {
                    reg.window_add(name, log2, anchor, value as f64);
                }
            }
            for (name, value) in quantiles {
                reg.window_set(name, log2, w, value);
            }
            reg.window_set("net.mean_occupancy", log2, w, mean_occ);
            reg.window_set("total.bookings_in_flight", log2, w, bookings as f64);
            for i in 0..occ_now.len() {
                let denom = occ_ports[i] as f64 * d_cycles as f64;
                let frac = if denom > 0.0 {
                    (occ_now[i] - prev_occ[i]) / denom
                } else {
                    0.0
                };
                reg.window_set(&format!("router.{i}.occupancy"), log2, w, frac);
            }
        });

        // Profiler: one wall-clock sample per folded window.
        if self.profiling {
            let mut sample = ProfileSample {
                window: w,
                phase_ns: [0; 5],
                tail_ns: [0; 5],
            };
            for p in 0..5 {
                sample.phase_ns[p] =
                    self.instruments.phase_ns[p] - self.instruments.prev_phase_ns[p];
                sample.tail_ns[p] = self.instruments.tail_ns[p] - self.instruments.prev_tail_ns[p];
            }
            self.instruments.prev_phase_ns = self.instruments.phase_ns;
            self.instruments.prev_tail_ns = self.instruments.tail_ns;
            self.instruments.profile_samples.push(sample);
        }

        // Re-anchor for the next window.
        win.cum_offered_flits += win.offered_flits;
        win.cum_ejected_flits += win.ejected_flits;
        win.cum_delivered_packets += win.delivered_packets;
        win.offered_flits = 0;
        win.ejected_flits = 0;
        win.delivered_packets = 0;
        win.latencies.reset();
        win.prev_router = totals;
        if let Some(f) = self.faults.as_ref() {
            win.prev_fault = f.counters;
        }
        win.prev_retries = self.control_retries;
        win.prev_occ = occ_now;
        win.prev_observed = self.instruments.observed_cycles;
        win.current = next;
        win.dirty = false;
        self.instruments.win = Some(win);
    }

    /// Writes every accumulated metric into the registry: router counters
    /// ([`Router::collect_counters`]) and their network totals, per-link
    /// flit counts and utilizations, per-pool occupancy, idle-skip
    /// effectiveness, and the wall-clock phase profile (under `profile.*`
    /// keys, which exports segregate for determinism stripping).
    ///
    /// Call once after a run, before taking the registry. A no-op under
    /// the null recorder.
    pub fn flush_metrics(&mut self) {
        if !M::ENABLED {
            return;
        }
        // Final (possibly partial) telemetry window: fold it before the
        // aggregates are written, so every Sum window sums exactly to its
        // aggregate counter. Idempotent — a clean window folds to nothing.
        if let Some(w) = self
            .instruments
            .win
            .as_ref()
            .filter(|w| w.dirty)
            .map(|w| w.current)
        {
            self.fold_telemetry_window(w);
        }
        let cycles = self.instruments.observed_cycles.max(1);
        let mut per_router: Vec<RouterCounters> = Vec::with_capacity(self.slots.len());
        let mut totals = RouterCounters::default();
        for slot in &self.slots {
            let mut counters = RouterCounters::default();
            slot.router.collect_counters(&mut counters);
            totals.absorb(&counters);
            per_router.push(counters);
        }
        let mut caps: Vec<PortMap<usize>> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            caps.push(PortMap::from_fn(|p| slot.router.data_buffer_capacity(p)));
        }
        let num_routers = self.slots.len() as f64;
        let num_links = self.links.len() as u64;
        let mesh = self.mesh;
        let control_retries = self.control_retries;
        let total_cycles = self.now.raw();
        let fault_stats = self.faults.as_ref().map(|f| {
            (
                f.counters,
                f.reliability.buffered(),
                f.reliability.peak_buffered(),
            )
        });
        let telemetry_totals = self.instruments.win.as_ref().map(|w| {
            (
                w.cum_offered_flits,
                w.cum_ejected_flits,
                w.cum_delivered_packets,
            )
        });
        let instruments = &self.instruments;
        self.metrics.with(|reg| {
            reg.counter_set("net.cycles", total_cycles);
            // Telemetry aggregates: present only when windows are armed,
            // and then exactly equal to the matching window sums (the
            // events fold through `cum_*`, nothing is counted twice).
            if let Some((offered, ejected, delivered)) = telemetry_totals {
                reg.counter_set("net.offered_flits", offered);
                reg.counter_set("net.ejected_flits", ejected);
                reg.counter_set("net.delivered_packets", delivered);
            }
            reg.counter_set("net.links", num_links);
            reg.counter_set("net.routers", mesh.node_count() as u64);
            reg.counter_set("net.mesh_width", mesh.width() as u64);
            reg.counter_set("net.mesh_height", mesh.height() as u64);
            reg.counter_set("net.control_retries", control_retries);
            reg.counter_set("net.awake_router_cycles", instruments.awake_sum);
            reg.gauge_set(
                "net.mean_awake_routers",
                instruments.awake_sum as f64 / cycles as f64,
            );
            reg.gauge_set(
                "net.idle_skip_fraction",
                1.0 - instruments.awake_sum as f64 / (cycles as f64 * num_routers),
            );

            // Per-router counters (sparse: zero counters are omitted) and
            // network-wide totals (dense: always present for validators).
            for (i, c) in per_router.iter().enumerate() {
                let fields: [(&str, u64); 11] = [
                    ("credit_stalls", c.credit_stalls),
                    ("vc_alloc_conflicts", c.vc_alloc_conflicts),
                    ("switch_arb_retries", c.switch_arb_retries),
                    ("reservation_hits", c.reservation_hits),
                    ("reservation_misses", c.reservation_misses),
                    ("control_flits_sent", c.control_flits_sent),
                    ("zero_turnaround_departures", c.zero_turnaround_departures),
                    ("parked_arrivals", c.parked_arrivals),
                    ("data_flits_sent", c.data_flits_sent),
                    ("bookings_in_flight", c.bookings_in_flight),
                    ("masked_routes", c.masked_routes),
                ];
                for (name, value) in fields {
                    if value > 0 {
                        reg.counter_set(&format!("router.{i}.{name}"), value);
                    }
                }
            }
            let total_fields: [(&str, u64); 11] = [
                ("credit_stalls", totals.credit_stalls),
                ("vc_alloc_conflicts", totals.vc_alloc_conflicts),
                ("switch_arb_retries", totals.switch_arb_retries),
                ("reservation_hits", totals.reservation_hits),
                ("reservation_misses", totals.reservation_misses),
                ("control_flits_sent", totals.control_flits_sent),
                (
                    "zero_turnaround_departures",
                    totals.zero_turnaround_departures,
                ),
                ("parked_arrivals", totals.parked_arrivals),
                ("data_flits_sent", totals.data_flits_sent),
                ("bookings_in_flight", totals.bookings_in_flight),
                ("masked_routes", totals.masked_routes),
            ];
            for (name, value) in total_fields {
                reg.counter_set(&format!("total.{name}"), value);
            }

            // Fault-layer counters: only present when a plan is armed, so
            // fault-free exports stay byte-identical to the seed.
            if let Some((c, buffered, peak)) = fault_stats {
                let fault_fields: [(&str, u64); 11] = [
                    ("data_corrupted", c.data_corrupted),
                    ("control_dropped", c.control_dropped),
                    ("corrupt_discarded", c.corrupt_discarded),
                    ("duplicate_discarded", c.duplicate_discarded),
                    ("acks", c.acks),
                    ("nacks", c.nacks),
                    ("retransmits", c.retransmits),
                    ("timeout_retransmits", c.timeout_retransmits),
                    ("links_masked", c.links_masked),
                    ("retransmit_buffered", buffered as u64),
                    ("retransmit_peak", peak as u64),
                ];
                for (name, value) in fault_fields {
                    reg.counter_set(&format!("fault.{name}"), value);
                }
            }

            // Per-link flit counts (sparse) and mean utilizations.
            let mut link_totals = LinkFlits::default();
            for (i, ports) in instruments.link_flits.iter().enumerate() {
                for &port in &Port::MESH {
                    let f = ports[port];
                    link_totals.data += f.data;
                    link_totals.control += f.control;
                    link_totals.credit += f.credit;
                    let port_name = port_key(port);
                    for (name, value) in [
                        ("data_flits", f.data),
                        ("control_flits", f.control),
                        ("credit_flits", f.credit),
                    ] {
                        if value > 0 {
                            reg.counter_set(&format!("link.{i}.{port_name}.{name}"), value);
                        }
                    }
                }
            }
            reg.counter_set("total.link_data_flits", link_totals.data);
            reg.counter_set("total.link_control_flits", link_totals.control);
            reg.counter_set("total.link_credit_flits", link_totals.credit);
            let link_cycles = (num_links * cycles).max(1) as f64;
            reg.gauge_set(
                "net.mean_data_link_utilization",
                link_totals.data as f64 / link_cycles,
            );
            reg.gauge_set(
                "net.mean_control_link_utilization",
                link_totals.control as f64
                    / (link_cycles * instruments.control_bandwidth.max(1) as f64),
            );

            // Per-pool occupancy gauges (ports that exist on this router),
            // plus the per-pool and network-wide high-water marks.
            let mut net_peak = 0usize;
            for (i, pools) in instruments.pools.iter().enumerate() {
                for &port in &Port::ALL {
                    if caps[i][port] == 0 {
                        continue;
                    }
                    let stat = pools[port];
                    let port_name = port_key(port);
                    reg.gauge_set(
                        &format!("router.{i}.{port_name}.occupancy_avg"),
                        stat.occ_sum / cycles as f64,
                    );
                    reg.gauge_set(
                        &format!("router.{i}.{port_name}.full_fraction"),
                        stat.full_cycles as f64 / cycles as f64,
                    );
                    if stat.occ_peak > 0 {
                        reg.counter_set(
                            &format!("router.{i}.{port_name}.occupancy_peak"),
                            stat.occ_peak as u64,
                        );
                    }
                    net_peak = net_peak.max(stat.occ_peak);
                }
            }
            reg.counter_set("net.peak_buffer_occupancy", net_peak as u64);
            reg.counter_set("total.bookings_in_flight_peak", instruments.bookings_peak);

            // Wall-clock self-profile: nondeterministic by nature, kept
            // under the `profile.` prefix so exports can segregate it.
            let mut total_ns = 0u64;
            for (phase, name) in PHASE_NAMES.iter().enumerate() {
                let ns = instruments.phase_ns[phase];
                total_ns += ns;
                reg.gauge_set(&format!("profile.{name}_ms"), ns as f64 / 1.0e6);
            }
            for (tail, name) in crate::profile::PROFILE_TAILS.iter().enumerate() {
                let ns = instruments.tail_ns[tail];
                if ns > 0 {
                    reg.gauge_set(&format!("profile.tail_{name}_ms"), ns as f64 / 1.0e6);
                }
            }
            reg.gauge_set("profile.total_ms", total_ns as f64 / 1.0e6);
            if total_ns > 0 {
                reg.gauge_set(
                    "profile.cycles_per_sec",
                    cycles as f64 / (total_ns as f64 / 1.0e9),
                );
            }
        });
    }

    /// Advances the network by one cycle (sequential step phase).
    pub fn cycle(&mut self) {
        let now = self.now;
        self.begin_cycle_telemetry(now);
        let wall = (M::ENABLED && self.profiling).then(Instant::now);
        self.timed(PHASE_DELIVER, |n| n.deliver_arrivals(now));
        self.timed(PHASE_INJECT, |n| n.offer_traffic(now));
        if M::ENABLED {
            self.instruments.awake_sum += self.awake_routers() as u64;
        }
        self.timed(PHASE_STEP, |n| n.step_routers(now));
        self.timed(PHASE_APPLY, |n| n.apply_outputs(now));
        self.timed(PHASE_OBSERVE, |n| n.finish_cycle(now));
        if let Some(start) = wall {
            self.instruments.cycle_wall_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.cycle();
        }
    }
}

/// Lower-case key fragment for a port, for metric names.
fn port_key(port: Port) -> &'static str {
    match port {
        Port::North => "north",
        Port::South => "south",
        Port::East => "east",
        Port::West => "west",
        Port::Local => "local",
    }
}

impl<R: Router + Send, S: TraceSink, M: Recorder> Network<R, S, M> {
    /// Installs `plan` (and a matching persistent [`WorkerPool`]) as the
    /// network's shard partition. The worker pool is reused when the
    /// shard count is unchanged, so reinstalling plans is cheap.
    ///
    /// Requires `R: Send` — a router traced through a
    /// [`noc_engine::trace::SharedSink`] is not `Send`, which statically
    /// rules out sharing one sink from concurrent shard rounds.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not cover exactly this mesh's nodes.
    pub fn set_shard_plan(&mut self, plan: ShardPlan) {
        assert_eq!(plan.nodes(), self.slots.len(), "plan must cover every node");
        let shards = plan.shards();
        let pool = match self.parallel.take() {
            Some(engine) if engine.pool.threads() == shards => engine.pool,
            _ => WorkerPool::new(shards),
        };
        pool.set_profiling(M::ENABLED && self.profiling);
        self.parallel = Some(Box::new(ParallelEngine {
            pool,
            plan,
            outboxes: vec![Vec::new(); shards],
            awake: vec![0; shards],
            lock_count: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            lock_ns: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }));
    }

    /// The installed shard plan, if any.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.parallel.as_ref().map(|e| &e.plan)
    }

    /// Ensures a `threads`-shard engine is installed, keeping any
    /// existing plan with a matching shard count (so a custom plan from
    /// [`Network::set_shard_plan`] survives `cycle_sharded` calls).
    fn ensure_parallel(&mut self, threads: usize) {
        let matches = self
            .parallel
            .as_ref()
            .is_some_and(|e| e.plan.shards() == threads);
        if !matches {
            self.set_shard_plan(ShardPlan::contiguous(self.slots.len(), threads));
        }
    }

    /// Advances the network by one cycle with the shard-local phases —
    /// deliver, backlog offers, step, and (when no RNG rides on sends)
    /// the link half of apply — running concurrently on `threads`
    /// persistent workers. See the [module docs](self) for the hand-off
    /// protocol. Produces the same trace, delivery record, RNG
    /// trajectory and metrics export as [`Network::cycle`] for any
    /// thread count and shard plan.
    pub fn cycle_sharded(&mut self, threads: usize) {
        self.ensure_parallel(threads);
        self.cycle_planned();
    }

    /// Runs `n` cycles sharded over `threads` workers.
    pub fn run_cycles_sharded(&mut self, n: u64, threads: usize) {
        self.ensure_parallel(threads);
        for _ in 0..n {
            self.cycle_planned();
        }
    }

    /// Runs `n` cycles under the installed shard plan.
    ///
    /// # Panics
    ///
    /// Panics unless [`Network::set_shard_plan`] (or a `cycle_sharded`
    /// entry point) installed an engine first.
    pub fn run_cycles_planned(&mut self, n: u64) {
        assert!(self.parallel.is_some(), "no shard plan installed");
        for _ in 0..n {
            self.cycle_planned();
        }
    }

    /// One cycle under the installed plan. A fault-free cycle fuses
    /// deliver/offer/step into a single parallel round; a fault-carrying
    /// cycle splits the round around the sequential fault events so the
    /// event order matches [`Network::cycle`] exactly. (Phase timing
    /// attribution differs from the sequential engine — the fused round
    /// is booked under `step` — but `profile.*` metrics are
    /// nondeterministic by nature and stripped from every comparison.)
    fn cycle_planned(&mut self) {
        let now = self.now;
        self.begin_cycle_telemetry(now);
        let wall = (M::ENABLED && self.profiling).then(Instant::now);
        if self.faults.is_some() {
            self.timed(PHASE_DELIVER, |n| n.parallel_round(now, true, false));
            self.timed(PHASE_INJECT, |n| {
                n.tail_timed(TAIL_FAULT_EVENTS, |n| n.apply_fault_events(now));
                n.tail_timed(TAIL_TRAFFIC_GEN, |n| n.generate_traffic(now));
            });
            self.timed(PHASE_STEP, |n| n.parallel_round(now, false, true));
        } else {
            self.timed(PHASE_INJECT, |n| {
                n.tail_timed(TAIL_TRAFFIC_GEN, |n| n.generate_traffic(now))
            });
            self.timed(PHASE_STEP, |n| n.parallel_round(now, true, true));
        }
        if self.rng_sends() {
            self.timed(PHASE_APPLY, |n| n.apply_outputs(now));
        } else {
            self.timed(PHASE_APPLY, |n| n.parallel_apply(now));
        }
        self.timed(PHASE_OBSERVE, |n| n.finish_cycle(now));
        if let Some(start) = wall {
            self.instruments.cycle_wall_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Runs the shard-local half of a cycle across the worker pool:
    /// deliver this cycle's arrivals (`deliver`), then offer backlogs,
    /// sample the wake-list and step every awake router (`step`). All
    /// three touch only shard-owned state — a router, its backlog and
    /// its inbound links — so the round needs no synchronisation beyond
    /// the pool's own barrier.
    fn parallel_round(&mut self, now: Cycle, deliver: bool, step: bool) {
        let mut engine = self.parallel.take().expect("parallel engine installed");
        let ParallelEngine {
            pool,
            plan,
            outboxes,
            awake,
            lock_count,
            lock_ns,
        } = &mut *engine;
        let idle_skip = self.idle_skip;
        let count_awake = M::ENABLED && step;
        let profiling = M::ENABLED && self.profiling;
        let inbound = &self.inbound;
        let order = &self.deliver_order;
        let ctx_start = profiling.then(Instant::now);
        let ctxs = shard_contexts(
            plan,
            &self.link_starts,
            &mut self.slots,
            &mut self.links,
            &mut self.backlog,
            &mut self.instruments.link_flits,
            outboxes,
            awake,
        );
        let ctx_ns = ctx_start.map(|s| s.elapsed().as_nanos() as u64);
        let lock_count: &[AtomicU64] = lock_count;
        let lock_ns: &[AtomicU64] = lock_ns;
        pool.run(&|w| {
            let mut ctx = lock_shard(&ctxs[w], profiling, &lock_count[w], &lock_ns[w]);
            let ctx = &mut *ctx;
            if deliver {
                for (i, slot) in ctx.slots.iter_mut().enumerate() {
                    let n = ctx.range.start + i;
                    deliver_node(slot, ctx.links, ctx.link_base, &inbound[n], &order[n], now);
                }
            }
            if step {
                for (slot, backlog) in ctx.slots.iter_mut().zip(ctx.backlog.iter_mut()) {
                    offer_backlog(slot, backlog, now);
                }
                if count_awake {
                    // Sampled exactly where the sequential engine samples
                    // `awake_routers()`: after delivers and offers, before
                    // any step retires a wake flag.
                    *ctx.awake = if idle_skip {
                        ctx.slots.iter().filter(|s| s.active).count() as u64
                    } else {
                        ctx.slots.len() as u64
                    };
                }
                for slot in ctx.slots.iter_mut() {
                    step_slot(slot, now, idle_skip);
                }
            }
        });
        drop(ctxs);
        if let Some(ns) = ctx_ns {
            self.instruments.tail_ns[TAIL_CTX_BUILD] += ns;
        }
        if count_awake {
            self.instruments.awake_sum += engine.awake.iter().sum::<u64>();
        }
        self.parallel = Some(engine);
    }

    /// Phase 4, parallel form (only when [`Network::rng_sends`] is
    /// false): each shard drains its own routers' staged sends, pushing
    /// intra-shard sends straight onto the receiver's link and staging
    /// cross-shard sends in its outbox. The outboxes are published at
    /// the barrier in shard order — each directed link has exactly one
    /// sending router, so per-link FIFO order is exactly the staging
    /// order — and ejections then commit sequentially in node order,
    /// keeping the tracker and every network-level trace event identical
    /// to the sequential engine.
    fn parallel_apply(&mut self, now: Cycle) {
        debug_assert!(!self.rng_sends());
        let mut engine = self.parallel.take().expect("parallel engine installed");
        let ParallelEngine {
            pool,
            plan,
            outboxes,
            awake,
            lock_count,
            lock_ns,
        } = &mut *engine;
        let mesh = self.mesh;
        let profiling = M::ENABLED && self.profiling;
        let inbound = &self.inbound;
        let ctx_start = profiling.then(Instant::now);
        let ctxs = shard_contexts(
            plan,
            &self.link_starts,
            &mut self.slots,
            &mut self.links,
            &mut self.backlog,
            &mut self.instruments.link_flits,
            outboxes,
            awake,
        );
        let ctx_ns = ctx_start.map(|s| s.elapsed().as_nanos() as u64);
        let lock_count: &[AtomicU64] = lock_count;
        let lock_ns: &[AtomicU64] = lock_ns;
        pool.run(&|w| {
            let mut ctx = lock_shard(&ctxs[w], profiling, &lock_count[w], &lock_ns[w]);
            let ctx = &mut *ctx;
            for (i, (slot, flits)) in ctx.slots.iter_mut().zip(ctx.flits.iter_mut()).enumerate() {
                if slot.out.sends.is_empty() {
                    continue;
                }
                let node = NodeId::new((ctx.range.start + i) as u16);
                for (port, event) in slot.out.sends.drain(..) {
                    assert!(port.is_mesh(), "routers send on mesh ports only");
                    let to = mesh
                        .neighbor(node, port)
                        .unwrap_or_else(|| panic!("send on missing link {node} {port}"));
                    let idx = inbound[to.index()][port.opposite().expect("mesh port")]
                        .expect("neighbor implies link");
                    let class = event.wire_class();
                    if M::ENABLED {
                        // Flit counters are keyed by sender, so each
                        // shard counts its own sends — boundary or not.
                        let f = &mut flits[port];
                        match class {
                            WireClass::Data => f.data += 1,
                            WireClass::Control => f.control += 1,
                            WireClass::Credit => f.credit += 1,
                        }
                    }
                    if ctx.range.contains(&to.index()) {
                        let set = &mut ctx.links[idx as usize - ctx.link_base];
                        wire_of(set, class)
                            .push(now, event)
                            .expect("link bandwidth exceeded: flow-control protocol bug");
                    } else {
                        ctx.outbox.push((idx, event));
                    }
                }
            }
        });
        drop(ctxs);
        if let Some(ns) = ctx_ns {
            self.instruments.tail_ns[TAIL_CTX_BUILD] += ns;
        }
        // Cross-shard hand-off: flits whose receiver lives in another
        // shard enter their link only here, at the barrier, never
        // mid-round. Shard staging order is node order, so publishing
        // the outboxes in shard order restores global sender order.
        let publish_start = profiling.then(Instant::now);
        for outbox in outboxes.iter_mut() {
            for (idx, event) in outbox.drain(..) {
                let set = &mut self.links[idx as usize];
                wire_of(set, event.wire_class())
                    .push(now, event)
                    .expect("link bandwidth exceeded: flow-control protocol bug");
            }
        }
        if let Some(start) = publish_start {
            self.instruments.tail_ns[TAIL_OUTBOX] += start.elapsed().as_nanos() as u64;
        }
        self.parallel = Some(engine);
        self.tail_timed(TAIL_EJECT_COMMIT, |n| n.commit_ejections());
    }

    /// Sequential tail of the parallel apply: ejections commit to the
    /// delivery tracker and sink in node order. Only runs on the no-RNG
    /// path, so the fault branches of the sequential apply cannot occur.
    fn commit_ejections(&mut self) {
        for n in 0..self.slots.len() {
            if self.slots[n].out.ejections.is_empty() {
                continue;
            }
            let node = NodeId::new(n as u16);
            let mut out = std::mem::take(&mut self.slots[n].out);
            for e in out.ejections.drain(..) {
                match self.tracker.on_eject(e.flit.packet, e.flit.seq, node, e.at) {
                    Ok(done) => {
                        self.sink.flit_ejected(e.at, node, &e.flit);
                        if M::ENABLED {
                            if let Some(win) = self.instruments.win.as_deref_mut() {
                                win.ejected_flits += 1;
                                if let Some(latency) = done {
                                    win.delivered_packets += 1;
                                    win.latencies.record(latency);
                                }
                            }
                        }
                        if let Some(latency) = done {
                            self.sink
                                .packet_delivered(e.at, node, e.flit.packet, latency);
                        }
                    }
                    Err(err) => panic!("{err}"),
                }
            }
            self.slots[n].out = out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimConfig;
    use flit_reservation::{FrConfig, FrRouter};
    use noc_engine::warmup::WarmupConfig;
    use noc_engine::Rng;
    use noc_traffic::LoadSpec;
    use noc_vc::{VcConfig, VcRouter};

    fn tiny_sim(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            warmup: WarmupConfig {
                min_cycles: 300,
                max_cycles: 2_000,
                window: 4,
                tolerance: 0.1,
            },
            sample_packets: 150,
            drain_cap: 10_000,
            warmup_probe_period: 16,
        }
    }

    fn vc_network(mesh: Mesh, load: f64, seed: u64) -> Network<VcRouter> {
        let root = Rng::from_seed(seed);
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
            VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64))
        })
    }

    fn fr_network(mesh: Mesh, load: f64, seed: u64) -> Network<FrRouter> {
        let root = Rng::from_seed(seed);
        let spec = LoadSpec::fraction_of_capacity(load, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
            FrRouter::new(mesh, node, FrConfig::fr6(), root.fork(node.raw() as u64))
        })
    }

    #[test]
    fn vc_network_conserves_packets() {
        let mesh = Mesh::new(4, 4);
        let mut net = vc_network(mesh, 0.3, 11);
        net.run_cycles(2_000);
        net.stop_injection();
        net.run_cycles(2_000);
        // Everything injected was delivered exactly once (the tracker
        // panics on duplicates/wrong destinations).
        assert_eq!(net.tracker().in_flight(), 0, "network must drain");
        assert!(net.tracker().delivered_packets() > 50);
        assert_eq!(net.mean_queued_flits(), 0.0);
    }

    #[test]
    fn fr_network_conserves_packets() {
        let mesh = Mesh::new(4, 4);
        let mut net = fr_network(mesh, 0.3, 11);
        net.run_cycles(2_000);
        net.stop_injection();
        net.run_cycles(3_000);
        assert_eq!(net.tracker().in_flight(), 0, "network must drain");
        assert!(net.tracker().delivered_packets() > 50);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let mesh = Mesh::new(4, 4);
        let mut a = fr_network(mesh, 0.4, 5);
        let mut b = fr_network(mesh, 0.4, 5);
        a.set_measuring(true);
        b.set_measuring(true);
        a.run_cycles(1_500);
        b.run_cycles(1_500);
        assert_eq!(a.tracker().delivered_flits(), b.tracker().delivered_flits());
        assert_eq!(a.tracker().latency().mean(), b.tracker().latency().mean());
    }

    #[test]
    fn different_seeds_differ() {
        let mesh = Mesh::new(4, 4);
        let mut a = vc_network(mesh, 0.4, 5);
        let mut b = vc_network(mesh, 0.4, 6);
        a.set_measuring(true);
        b.set_measuring(true);
        a.run_cycles(1_500);
        b.run_cycles(1_500);
        // Latency trajectories differ with overwhelming probability.
        assert_ne!(a.tracker().latency().mean(), b.tracker().latency().mean());
    }

    #[test]
    fn idle_skip_matches_always_step() {
        let mesh = Mesh::new(4, 4);
        let mut skipping = fr_network(mesh, 0.2, 7);
        let mut stepping = fr_network(mesh, 0.2, 7);
        assert!(skipping.idle_skip());
        stepping.set_idle_skip(false);
        skipping.set_measuring(true);
        stepping.set_measuring(true);
        skipping.run_cycles(1_200);
        stepping.run_cycles(1_200);
        skipping.stop_injection();
        stepping.stop_injection();
        skipping.run_cycles(2_000);
        stepping.run_cycles(2_000);
        assert_eq!(
            skipping.tracker().delivered_flits(),
            stepping.tracker().delivered_flits()
        );
        assert_eq!(
            skipping.tracker().latency().mean(),
            stepping.tracker().latency().mean()
        );
        assert_eq!(skipping.tracker().in_flight(), 0);
        assert_eq!(stepping.tracker().in_flight(), 0);
    }

    #[test]
    fn drained_network_goes_fully_idle() {
        let mesh = Mesh::new(4, 4);
        let mut net = vc_network(mesh, 0.2, 3);
        net.run_cycles(500);
        net.stop_injection();
        net.run_cycles(2_000);
        assert_eq!(net.tracker().in_flight(), 0);
        assert_eq!(
            net.awake_routers(),
            0,
            "a drained network must have an empty wake list"
        );
    }

    #[test]
    fn sharded_step_matches_sequential() {
        let mesh = Mesh::new(4, 4);
        let mut seq = fr_network(mesh, 0.4, 17);
        let mut par = fr_network(mesh, 0.4, 17);
        seq.set_measuring(true);
        par.set_measuring(true);
        seq.run_cycles(1_000);
        par.run_cycles_sharded(1_000, 4);
        seq.stop_injection();
        par.stop_injection();
        seq.run_cycles(3_000);
        par.run_cycles_sharded(3_000, 4);
        assert_eq!(
            seq.tracker().delivered_flits(),
            par.tracker().delivered_flits()
        );
        assert_eq!(
            seq.tracker().latency().mean(),
            par.tracker().latency().mean()
        );
        assert_eq!(seq.tracker().in_flight(), 0);
        assert_eq!(par.tracker().in_flight(), 0);
    }

    /// A router that refuses injections until a set cycle, exposing the
    /// backlog between generation and acceptance.
    struct Reluctant {
        inner: VcRouter,
        accept_from: Cycle,
    }

    impl Router for Reluctant {
        fn node(&self) -> NodeId {
            self.inner.node()
        }
        fn receive(&mut self, port: Port, event: LinkEvent, now: Cycle) {
            self.inner.receive(port, event, now);
        }
        fn try_inject(&mut self, packet: noc_traffic::Packet, now: Cycle) -> bool {
            now >= self.accept_from && self.inner.try_inject(packet, now)
        }
        fn step(&mut self, now: Cycle, out: &mut StepOutputs) {
            self.inner.step(now, out);
        }
        fn occupied_data_buffers(&self, port: Port) -> usize {
            self.inner.occupied_data_buffers(port)
        }
        fn data_buffer_capacity(&self, port: Port) -> usize {
            self.inner.data_buffer_capacity(port)
        }
        fn queued_flits(&self) -> usize {
            self.inner.queued_flits()
        }
        fn is_idle(&self) -> bool {
            self.inner.is_idle()
        }
    }

    /// Regression test: `stop_injection` used to clear the per-node
    /// backlogs, dropping packets the tracker had already counted as
    /// injected — the network could then never drain to zero in-flight.
    #[test]
    fn stop_injection_keeps_backlogged_packets() {
        let mesh = Mesh::new(4, 4);
        let root = Rng::from_seed(23);
        let spec = LoadSpec::fraction_of_capacity(0.3, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        let mut net = Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
            Reluctant {
                inner: VcRouter::new(mesh, node, VcConfig::vc8(), root.fork(node.raw() as u64)),
                // Nothing is accepted until after injection stops, so
                // every generated packet sits in a backlog at stop time.
                accept_from: Cycle::new(400),
            }
        });
        net.run_cycles(300);
        assert_eq!(
            net.tracker().delivered_packets(),
            0,
            "nothing can deliver before routers accept"
        );
        let offered = net.tracker().in_flight() as u64;
        assert!(offered > 10, "the generator must have offered packets");
        net.stop_injection();
        net.run_cycles(4_000);
        assert_eq!(
            net.tracker().delivered_packets(),
            offered,
            "backlogged packets must survive stop_injection and deliver"
        );
        assert_eq!(net.tracker().in_flight(), 0, "network must drain");
    }

    #[test]
    fn sharded_step_with_custom_plan_matches_sequential() {
        let mesh = Mesh::new(4, 4);
        let mut seq = fr_network(mesh, 0.4, 31);
        let mut par = fr_network(mesh, 0.4, 31);
        seq.set_measuring(true);
        par.set_measuring(true);
        // Deliberately lopsided partition: shard sizes 3/6/1/6.
        par.set_shard_plan(crate::ShardPlan::from_cuts(16, &[3, 9, 10]));
        seq.run_cycles(1_000);
        par.run_cycles_planned(1_000);
        seq.stop_injection();
        par.stop_injection();
        seq.run_cycles(3_000);
        par.run_cycles_planned(3_000);
        assert_eq!(
            seq.tracker().delivered_flits(),
            par.tracker().delivered_flits()
        );
        assert_eq!(
            seq.tracker().latency().mean(),
            par.tracker().latency().mean()
        );
        assert_eq!(seq.tracker().in_flight(), 0);
        assert_eq!(par.tracker().in_flight(), 0);
    }

    #[test]
    fn cycle_sharded_keeps_matching_custom_plan() {
        let mesh = Mesh::new(4, 4);
        let mut net = fr_network(mesh, 0.3, 5);
        let plan = crate::ShardPlan::from_cuts(16, &[5, 11]);
        net.set_shard_plan(plan.clone());
        net.run_cycles_sharded(10, 3);
        assert_eq!(net.shard_plan(), Some(&plan));
        // A different thread count rebuilds a contiguous plan.
        net.run_cycles_sharded(10, 2);
        assert_eq!(net.shard_plan(), Some(&crate::ShardPlan::contiguous(16, 2)));
    }

    /// A router that counts `step` and `is_idle` calls, claiming
    /// whatever idleness it is configured with.
    struct ScanCounter {
        node: NodeId,
        steps: std::rc::Rc<std::cell::Cell<u64>>,
        scans: std::rc::Rc<std::cell::Cell<u64>>,
        idle: bool,
    }

    impl Router for ScanCounter {
        fn node(&self) -> NodeId {
            self.node
        }
        fn receive(&mut self, _port: Port, _event: LinkEvent, _now: Cycle) {}
        fn try_inject(&mut self, _packet: noc_traffic::Packet, _now: Cycle) -> bool {
            false
        }
        fn step(&mut self, _now: Cycle, _out: &mut StepOutputs) {
            self.steps.set(self.steps.get() + 1);
        }
        fn occupied_data_buffers(&self, _port: Port) -> usize {
            0
        }
        fn data_buffer_capacity(&self, _port: Port) -> usize {
            0
        }
        fn queued_flits(&self) -> usize {
            0
        }
        fn is_idle(&self) -> bool {
            self.scans.set(self.scans.get() + 1);
            self.idle
        }
    }

    fn scan_counter_network(idle: bool) -> (Network<ScanCounter>, SharedCounts) {
        let mesh = Mesh::new(2, 2);
        let root = Rng::from_seed(1);
        let spec = LoadSpec::fraction_of_capacity(0.3, 5);
        let generator = TrafficGenerator::uniform(mesh, spec, root.fork(99));
        let counts: SharedCounts = Default::default();
        let (steps, scans) = (counts.0.clone(), counts.1.clone());
        let mut net = Network::new(mesh, LinkTiming::fast_control(), 2, generator, |node| {
            ScanCounter {
                node,
                steps: steps.clone(),
                scans: scans.clone(),
                idle,
            }
        });
        // No traffic ever reaches the routers: the run is pure quiet
        // steps, isolating the wake-list/scan behaviour.
        net.stop_injection();
        (net, counts)
    }

    type SharedCounts = (
        std::rc::Rc<std::cell::Cell<u64>>,
        std::rc::Rc<std::cell::Cell<u64>>,
    );

    /// Regression test for the wake-list churn fix: a busy-but-quiet
    /// router (no outputs, `is_idle() == false`, the profile of every
    /// router above ~40% load) used to pay a full `is_idle` scan on
    /// *every* step; the quiet-streak hysteresis must amortise the scan
    /// to roughly one per [`IDLE_HYSTERESIS`] steps.
    #[test]
    fn idle_scan_runs_once_per_hysteresis_window() {
        let (mut net, (steps, scans)) = scan_counter_network(false);
        net.run_cycles(160);
        let per_router_steps = steps.get() / 4;
        let per_router_scans = scans.get() / 4;
        assert_eq!(per_router_steps, 160, "busy routers step every cycle");
        let expected = 160 / u64::from(IDLE_HYSTERESIS);
        assert!(
            per_router_scans <= expected + 1,
            "scan churn is back: {per_router_scans} scans in 160 quiet steps \
             (hysteresis should cap it near {expected})"
        );
        assert!(per_router_scans >= 1, "the scan must still run eventually");
    }

    /// The flip side: hysteresis may delay idle detection by at most the
    /// window, after which a genuinely idle router stops stepping.
    #[test]
    fn idle_router_retires_after_hysteresis_window() {
        let (mut net, (steps, scans)) = scan_counter_network(true);
        net.run_cycles(100);
        assert_eq!(
            steps.get() / 4,
            u64::from(IDLE_HYSTERESIS),
            "an idle router steps exactly one hysteresis window, then sleeps"
        );
        assert_eq!(scans.get() / 4, 1, "one scan retires it");
        assert_eq!(net.awake_routers(), 0);
    }

    #[test]
    fn probe_records_occupancy() {
        let mesh = Mesh::new(4, 4);
        let mut net = fr_network(mesh, 0.8, 3);
        net.enable_probe();
        net.run_cycles(2_000);
        let p = net.probe_state();
        assert_eq!(p.cycles, 2_000);
        assert!(p.mean_occupancy() >= 0.0 && p.mean_occupancy() <= 1.0);
        assert!(p.full_fraction() <= 1.0);
    }

    #[test]
    fn run_simulation_completes_at_low_load() {
        let mesh = Mesh::new(4, 4);
        let mut net = vc_network(mesh, 0.2, 21);
        let r = crate::run_simulation(&mut net, &tiny_sim(21));
        assert!(r.completed);
        assert_eq!(r.delivered, 150);
        assert!(r.mean_latency() > 10.0 && r.mean_latency() < 100.0);
        assert!(r.accepted_fraction > 0.1 && r.accepted_fraction < 0.4);
        assert!(r.end_cycle > r.measure_start);
    }

    #[test]
    fn overload_is_flagged_saturated() {
        let mesh = Mesh::new(4, 4);
        // 150% of capacity cannot be sustained by any flow control.
        let mut net = vc_network(mesh, 1.5, 21);
        let mut sim = tiny_sim(21);
        sim.drain_cap = 500;
        sim.sample_packets = 2_000;
        let r = crate::run_simulation(&mut net, &sim);
        assert!(!r.completed, "overload must be flagged");
        assert!(r.accepted_fraction < 1.2);
    }

    #[test]
    fn fr_beats_vc_latency_at_moderate_load() {
        let mesh = Mesh::new(4, 4);
        let sim = tiny_sim(9);
        let mut vc = vc_network(mesh, 0.4, 9);
        let mut fr = fr_network(mesh, 0.4, 9);
        let rv = crate::run_simulation(&mut vc, &sim);
        let rf = crate::run_simulation(&mut fr, &sim);
        assert!(rv.completed && rf.completed);
        assert!(
            rf.mean_latency() < rv.mean_latency(),
            "FR {:.1} must beat VC {:.1}",
            rf.mean_latency(),
            rv.mean_latency()
        );
    }
}
