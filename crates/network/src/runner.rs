//! Simulation methodology: warm-up, measurement, drain.
//!
//! The paper's procedure (Section 4): warm up for at least 10,000 cycles
//! until average queue lengths stabilize, then inject a sample of packets
//! (100,000 in the paper) and run until all of them are received,
//! reporting their average latency with a 95% confidence interval, and the
//! accepted throughput as a fraction of capacity.
//!
//! On saturated loads the sample never fully drains; a configurable cap
//! bounds the run and the result is flagged `completed = false` — those
//! are the points on the vertical asymptote of the latency-throughput
//! curves.

use crate::Network;
use noc_engine::stats::RunningStats;
use noc_engine::trace::TraceSink;
use noc_engine::warmup::{WarmupConfig, WarmupDetector};
use noc_flow::Router;
use noc_metrics::Recorder;

/// Measurement methodology parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Root seed for traffic and arbitration.
    pub seed: u64,
    /// Warm-up policy (paper: minimum 10,000 cycles).
    pub warmup: WarmupConfig,
    /// Packets in the measured sample (paper: 100,000).
    pub sample_packets: u64,
    /// Extra cycles allowed after the last sample packet is injected
    /// before declaring the load saturated.
    pub drain_cap: u64,
    /// Sampling period of the warm-up signal, in cycles.
    pub warmup_probe_period: u64,
}

impl SimConfig {
    /// The paper's measurement scale. Slow — minutes per point on one
    /// core; use [`SimConfig::quick`] for exploration.
    pub fn paper_scale(seed: u64) -> Self {
        SimConfig {
            seed,
            warmup: WarmupConfig {
                min_cycles: 10_000,
                max_cycles: 50_000,
                window: 16,
                tolerance: 0.05,
            },
            sample_packets: 100_000,
            drain_cap: 100_000,
            warmup_probe_period: 64,
        }
    }

    /// A reduced scale that preserves the paper's curve shapes while
    /// running in seconds: shorter warm-up, 3,000-packet samples.
    pub fn quick(seed: u64) -> Self {
        SimConfig {
            seed,
            warmup: WarmupConfig {
                min_cycles: 2_000,
                max_cycles: 12_000,
                window: 8,
                tolerance: 0.05,
            },
            sample_packets: 3_000,
            drain_cap: 30_000,
            warmup_probe_period: 32,
        }
    }
}

/// Everything measured in one simulation run at one offered load.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Offered load as a fraction of capacity.
    pub offered_fraction: f64,
    /// Packet length in flits.
    pub packet_length: u32,
    /// Latency statistics over delivered sample packets (cycles).
    pub latency: RunningStats,
    /// Accepted throughput during the injection window, in flits per node
    /// per cycle.
    pub accepted_flits_per_node_cycle: f64,
    /// Accepted throughput as a fraction of capacity.
    pub accepted_fraction: f64,
    /// `true` when every sample packet was delivered before the drain cap
    /// — `false` marks a saturated point.
    pub completed: bool,
    /// Cycle the measurement window opened.
    pub measure_start: u64,
    /// Cycle the run ended.
    pub end_cycle: u64,
    /// Fraction of measured cycles the probed buffer pool was full
    /// (Section 4.2).
    pub probe_full_fraction: f64,
    /// Mean occupancy of the probed pool (0..=1).
    pub probe_mean_occupancy: f64,
    /// Sample packets delivered.
    pub delivered: u64,
    /// Median sample latency in cycles (`None` when it falls beyond the
    /// histogram range or nothing was delivered).
    pub p50_latency: Option<u64>,
    /// 95th-percentile sample latency in cycles.
    pub p95_latency: Option<u64>,
    /// 99th-percentile sample latency in cycles.
    pub p99_latency: Option<u64>,
}

impl RunResult {
    /// Mean latency in cycles (`f64::INFINITY` when nothing was
    /// delivered).
    pub fn mean_latency(&self) -> f64 {
        if self.latency.count() == 0 {
            f64::INFINITY
        } else {
            self.latency.mean()
        }
    }
}

/// Runs the full warm-up / measure / drain procedure on `network`.
///
/// # Panics
///
/// Panics if `sim.sample_packets` is zero.
pub fn run_simulation<R: Router, S: TraceSink, M: Recorder>(
    network: &mut Network<R, S, M>,
    sim: &SimConfig,
) -> RunResult {
    run_simulation_with(network, sim, |n| n.cycle())
}

/// [`run_simulation`] with the per-cycle stepping sharded over `threads`
/// worker threads.
///
/// Same seeds, same methodology, same measurements: the sharded engine's
/// hand-off protocol makes every cycle bit-identical to sequential
/// stepping, so the returned [`RunResult`] — and any metrics registry the
/// network fills — matches the single-threaded run exactly, whatever
/// `threads` is.
pub fn run_simulation_sharded<R: Router + Send, S: TraceSink, M: Recorder>(
    network: &mut Network<R, S, M>,
    sim: &SimConfig,
    threads: usize,
) -> RunResult {
    run_simulation_with(network, sim, |n| n.cycle_sharded(threads))
}

/// Shared body of the run harness: the methodology is identical whichever
/// way one cycle is stepped.
fn run_simulation_with<R: Router, S: TraceSink, M: Recorder>(
    network: &mut Network<R, S, M>,
    sim: &SimConfig,
    mut step: impl FnMut(&mut Network<R, S, M>),
) -> RunResult {
    assert!(sim.sample_packets > 0, "need a non-empty sample");
    let offered_fraction = network.generator().load().fraction();
    let packet_length = network.generator().load().packet_length();
    let capacity = network.mesh().capacity_flits_per_node_cycle();
    let nodes = network.mesh().node_count() as f64;

    // Phase 1: warm up until the mean queue length stabilizes.
    let mut detector = WarmupDetector::new(sim.warmup);
    loop {
        step(network);
        if network.now().raw().is_multiple_of(sim.warmup_probe_period)
            && detector.observe(network.now(), network.mean_queued_flits())
        {
            break;
        }
    }
    let measure_start = network.now().raw();

    // Phase 2: inject the measured sample.
    network.set_measuring(true);
    network.enable_probe();
    let already_delivered = network.tracker().delivered_flits();
    let sample_start_created = network.tracker().delivered_packets(); // unused marker
    let _ = sample_start_created;
    let mut injected_all_at = None;
    while injected_all_at.is_none() {
        step(network);
        let measured_total =
            network.tracker().measured_delivered() + network.tracker().measured_outstanding();
        if measured_total >= sim.sample_packets {
            network.set_measuring(false);
            injected_all_at = Some(network.now().raw());
        }
    }
    let injection_end = injected_all_at.expect("loop exits with a value");
    let injection_window = (injection_end - measure_start).max(1);
    let accepted_flits = network.tracker().delivered_flits() - already_delivered;
    let accepted_flits_per_node_cycle = accepted_flits as f64 / (nodes * injection_window as f64);

    // Phase 3: drain until the sample is delivered or the cap fires.
    let mut completed = true;
    let drain_deadline = injection_end + sim.drain_cap;
    while network.tracker().measured_outstanding() > 0 {
        if network.now().raw() >= drain_deadline {
            completed = false;
            break;
        }
        step(network);
    }

    let probe = network.probe_state();
    let hist = network.tracker().latency_histogram();
    let (p50_latency, p95_latency, p99_latency) = if hist.count() > 0 {
        (hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99))
    } else {
        (None, None, None)
    };
    let result = RunResult {
        offered_fraction,
        packet_length,
        latency: network.tracker().latency().clone(),
        accepted_flits_per_node_cycle,
        accepted_fraction: accepted_flits_per_node_cycle / capacity,
        completed,
        measure_start,
        end_cycle: network.now().raw(),
        probe_full_fraction: probe.full_fraction(),
        probe_mean_occupancy: probe.mean_occupancy(),
        delivered: network.tracker().measured_delivered(),
        p50_latency,
        p95_latency,
        p99_latency,
    };

    // Close out the metrics registry: run-level context gauges first, then
    // everything the network accumulated. No-ops under the null recorder.
    network.metrics_record(|reg| {
        reg.gauge_set("run.offered_fraction", result.offered_fraction);
        reg.gauge_set("run.accepted_fraction", result.accepted_fraction);
        reg.gauge_set("run.mean_latency", result.mean_latency());
        reg.gauge_set("run.latency_ci95", result.latency.ci95_half_width());
        reg.gauge_set("run.completed", if result.completed { 1.0 } else { 0.0 });
        reg.counter_set("run.delivered_packets", result.delivered);
        reg.counter_set("run.packet_length", result.packet_length as u64);
        reg.counter_set("run.measure_start", result.measure_start);
        reg.counter_set("run.end_cycle", result.end_cycle);
        for (name, q) in [
            ("run.p50_latency", result.p50_latency),
            ("run.p95_latency", result.p95_latency),
            ("run.p99_latency", result.p99_latency),
        ] {
            if let Some(v) = q {
                reg.counter_set(name, v);
            }
        }
    });
    network.flush_metrics();
    result
}
