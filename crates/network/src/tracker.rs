//! End-to-end delivery tracking and latency accounting.
//!
//! Latency "spans the instant when the first flit of the packet is
//! created, to the time when its last flit is ejected at the destination
//! node, including source queuing time and assuming immediate ejection"
//! (paper Section 4). The tracker also cross-checks conservation: every
//! flit is delivered exactly once, to the right node.

use noc_engine::stats::{Histogram, RunningStats};
use noc_engine::Cycle;
use noc_topology::NodeId;
use noc_traffic::{Packet, PacketId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A delivery-accounting error the caller can recover from.
///
/// Under fault injection, retransmission legitimately produces duplicate
/// copies of already-delivered flits; the tracker reports them as typed
/// errors so the network can discard the copy (and trace it) instead of
/// double-counting latency. Without faults a duplicate is a conservation
/// bug and the network escalates the error to a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryError {
    /// A flit copy arrived for a `(packet, seq)` that was already
    /// accepted — either the packet is still in flight and the bitmap
    /// has the seq marked, or the whole packet already completed.
    DuplicateDelivery {
        /// The packet the duplicate copy belongs to.
        packet: PacketId,
        /// Sequence number of the duplicate flit.
        seq: u32,
    },
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliveryError::DuplicateDelivery { packet, seq } => {
                write!(f, "duplicate delivery of flit {seq} of {packet}")
            }
        }
    }
}

/// In-flight bookkeeping for one packet.
#[derive(Clone, Debug)]
struct Inflight {
    dest: NodeId,
    created_at: Cycle,
    length: u32,
    seen: u64,
    seen_count: u32,
    measured: bool,
}

/// Tracks every injected packet until its last flit ejects.
///
/// # Examples
///
/// ```
/// use noc_engine::Cycle;
/// use noc_network::DeliveryTracker;
/// use noc_topology::NodeId;
/// use noc_traffic::{Packet, PacketId};
///
/// let mut tracker = DeliveryTracker::new(200);
/// tracker.on_inject(&Packet {
///     id: PacketId::new(0), src: NodeId::new(1), dest: NodeId::new(2),
///     length_flits: 1, created_at: Cycle::ZERO,
/// }, true);
/// tracker.on_eject(PacketId::new(0), 0, NodeId::new(2), Cycle::new(27)).unwrap();
/// assert_eq!(tracker.measured_delivered(), 1);
/// assert_eq!(tracker.latency().mean(), 27.0);
/// ```
#[derive(Clone, Debug)]
pub struct DeliveryTracker {
    inflight: HashMap<PacketId, Inflight>,
    /// Ids of packets whose last flit already ejected, so late duplicate
    /// copies are distinguishable from genuinely unknown packets.
    completed: HashSet<PacketId>,
    latency: RunningStats,
    latency_hist: Histogram,
    measured_delivered: u64,
    measured_outstanding: u64,
    delivered_flits: u64,
    delivered_packets: u64,
}

impl DeliveryTracker {
    /// Creates a tracker; `hist_max` caps the exact latency histogram.
    pub fn new(hist_max: usize) -> Self {
        DeliveryTracker {
            inflight: HashMap::new(),
            completed: HashSet::new(),
            latency: RunningStats::new(),
            latency_hist: Histogram::new(hist_max),
            measured_delivered: 0,
            measured_outstanding: 0,
            delivered_flits: 0,
            delivered_packets: 0,
        }
    }

    /// Registers an injected packet; `measured` marks it as part of the
    /// sample whose latency is reported.
    ///
    /// # Panics
    ///
    /// Panics on duplicate packet ids.
    pub fn on_inject(&mut self, packet: &Packet, measured: bool) {
        let prev = self.inflight.insert(
            packet.id,
            Inflight {
                dest: packet.dest,
                created_at: packet.created_at,
                length: packet.length_flits,
                seen: 0,
                seen_count: 0,
                measured,
            },
        );
        assert!(prev.is_none(), "duplicate packet id {}", packet.id);
        if measured {
            self.measured_outstanding += 1;
        }
    }

    /// Records the ejection of flit `seq` of `packet` at node `at`.
    ///
    /// Returns `Ok(Some(latency))` when this was the packet's last flit,
    /// so the caller can emit a delivery event without re-deriving it,
    /// and `Ok(None)` for earlier flits. A copy of an already-accepted
    /// flit — legitimate under fault-injected retransmission, a bug
    /// otherwise — returns [`DeliveryError::DuplicateDelivery`] and
    /// changes no counter, so latency is never double-counted. Duplicate
    /// detection is exact for packets up to 64 flits (the bitmap width);
    /// fault plans must keep packets within that bound.
    ///
    /// # Panics
    ///
    /// Panics on genuinely unknown packets, wrong destinations and
    /// out-of-range flits — conservation violations no fault model of
    /// this stack can legitimately produce.
    pub fn on_eject(
        &mut self,
        packet: PacketId,
        seq: u32,
        at: NodeId,
        now: Cycle,
    ) -> Result<Option<u64>, DeliveryError> {
        let Some(entry) = self.inflight.get_mut(&packet) else {
            if self.completed.contains(&packet) {
                return Err(DeliveryError::DuplicateDelivery { packet, seq });
            }
            panic!("ejected unknown packet {packet}");
        };
        assert_eq!(entry.dest, at, "packet {packet} ejected at wrong node");
        assert!(seq < entry.length, "flit seq out of range for {packet}");
        if entry.length <= 64 {
            let bit = 1u64 << seq;
            if entry.seen & bit != 0 {
                return Err(DeliveryError::DuplicateDelivery { packet, seq });
            }
            entry.seen |= bit;
        }
        entry.seen_count += 1;
        self.delivered_flits += 1;
        if entry.seen_count == entry.length {
            let latency = now - entry.created_at;
            if entry.measured {
                self.latency.record(latency as f64);
                self.latency_hist.record(latency);
                self.measured_delivered += 1;
                self.measured_outstanding -= 1;
            }
            self.delivered_packets += 1;
            self.inflight.remove(&packet);
            self.completed.insert(packet);
            Ok(Some(latency))
        } else {
            Ok(None)
        }
    }

    /// Latency statistics over delivered measured packets.
    pub fn latency(&self) -> &RunningStats {
        &self.latency
    }

    /// Latency histogram over delivered measured packets.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Measured packets fully delivered.
    pub fn measured_delivered(&self) -> u64 {
        self.measured_delivered
    }

    /// Measured packets still in flight (or queued).
    pub fn measured_outstanding(&self) -> u64 {
        self.measured_outstanding
    }

    /// All flits delivered so far (measured or not).
    pub fn delivered_flits(&self) -> u64 {
        self.delivered_flits
    }

    /// All packets fully delivered so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets injected but not yet fully delivered.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

impl noc_metrics::Snapshot for DeliveryTracker {
    /// Canonical dump of the tracker: in-flight packets sorted by id (the
    /// underlying `HashMap` iterates in arbitrary order, which a
    /// deterministic snapshot must never leak), completed count and the
    /// delivery/latency aggregates.
    fn snapshot(&self) -> noc_metrics::Json {
        use noc_metrics::Json;
        let mut inflight: Vec<(&PacketId, &Inflight)> = self.inflight.iter().collect();
        inflight.sort_by_key(|(id, _)| id.raw());
        let inflight: Vec<Json> = inflight
            .into_iter()
            .map(|(id, e)| {
                Json::obj(vec![
                    ("packet".into(), Json::Num(id.raw() as f64)),
                    ("dest".into(), Json::Num(e.dest.raw() as f64)),
                    ("created_at".into(), Json::Num(e.created_at.raw() as f64)),
                    ("length".into(), Json::Num(e.length as f64)),
                    ("seen_count".into(), Json::Num(e.seen_count as f64)),
                    ("seen_bits".into(), Json::Str(format!("{:016x}", e.seen))),
                    ("measured".into(), Json::Bool(e.measured)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("in_flight".into(), Json::Arr(inflight)),
            ("completed".into(), Json::Num(self.completed.len() as f64)),
            (
                "delivered_flits".into(),
                Json::Num(self.delivered_flits as f64),
            ),
            (
                "delivered_packets".into(),
                Json::Num(self.delivered_packets as f64),
            ),
            (
                "measured_delivered".into(),
                Json::Num(self.measured_delivered as f64),
            ),
            (
                "measured_outstanding".into(),
                Json::Num(self.measured_outstanding as f64),
            ),
            (
                "latency_count".into(),
                Json::Num(self.latency.count() as f64),
            ),
            ("latency_mean".into(), Json::Num(self.latency.mean())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(id: u64, len: u32, created: u64) -> Packet {
        Packet {
            id: PacketId::new(id),
            src: NodeId::new(0),
            dest: NodeId::new(5),
            length_flits: len,
            created_at: Cycle::new(created),
        }
    }

    #[test]
    fn tracks_multi_flit_delivery() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 3, 10), true);
        t.on_eject(PacketId::new(1), 2, NodeId::new(5), Cycle::new(30))
            .unwrap();
        t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(31))
            .unwrap();
        assert_eq!(t.measured_delivered(), 0);
        assert_eq!(t.in_flight(), 1);
        t.on_eject(PacketId::new(1), 1, NodeId::new(5), Cycle::new(35))
            .unwrap();
        assert_eq!(t.measured_delivered(), 1);
        assert_eq!(t.latency().mean(), 25.0);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.delivered_flits(), 3);
        assert_eq!(t.delivered_packets(), 1);
    }

    #[test]
    fn unmeasured_packets_do_not_affect_latency() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 1, 0), false);
        t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(99))
            .unwrap();
        assert_eq!(t.latency().count(), 0);
        assert_eq!(t.measured_delivered(), 0);
        assert_eq!(t.delivered_packets(), 1);
    }

    #[test]
    fn outstanding_counts() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 1, 0), true);
        t.on_inject(&packet(2, 1, 0), true);
        assert_eq!(t.measured_outstanding(), 2);
        t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(20))
            .unwrap();
        assert_eq!(t.measured_outstanding(), 1);
    }

    #[test]
    fn single_flit_packet_has_pure_queue_latency() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 1, 10), true);
        let done = t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(10));
        // Created and ejected in the same cycle: latency 0 is legal.
        assert_eq!(done, Ok(Some(0)));
        assert_eq!(t.latency().mean(), 0.0);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn on_eject_reports_completion_exactly_once() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 3, 10), true);
        assert_eq!(
            t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(20)),
            Ok(None)
        );
        assert_eq!(
            t.on_eject(PacketId::new(1), 2, NodeId::new(5), Cycle::new(21)),
            Ok(None)
        );
        assert_eq!(
            t.on_eject(PacketId::new(1), 1, NodeId::new(5), Cycle::new(25)),
            Ok(Some(15))
        );
    }

    #[test]
    fn long_packets_complete_via_the_count_path() {
        // Beyond 64 flits the duplicate bitmap no longer fits in a u64;
        // completion falls back to counting (by design, duplicates of
        // such packets are only caught by the flit count).
        let len = 70;
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, len, 0), true);
        for seq in 0..len {
            let done = t.on_eject(PacketId::new(1), seq, NodeId::new(5), Cycle::new(100));
            assert_eq!(done.unwrap().is_some(), seq == len - 1);
        }
        assert_eq!(t.delivered_flits(), len as u64);
        assert_eq!(t.delivered_packets(), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn eject_after_completion_is_a_duplicate_delivery_error() {
        // Once the last flit lands the packet leaves the in-flight map;
        // the completed-set still recognises a late retransmitted copy
        // as a duplicate rather than an unknown packet.
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 1, 0), false);
        assert_eq!(
            t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(9)),
            Ok(Some(9))
        );
        assert_eq!(
            t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(10)),
            Err(DeliveryError::DuplicateDelivery {
                packet: PacketId::new(1),
                seq: 0
            })
        );
        // Nothing was double-counted.
        assert_eq!(t.delivered_flits(), 1);
        assert_eq!(t.delivered_packets(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seq_panics() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 2, 0), true);
        let _ = t.on_eject(PacketId::new(1), 2, NodeId::new(5), Cycle::new(20));
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn wrong_destination_panics() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 1, 0), true);
        let _ = t.on_eject(PacketId::new(1), 0, NodeId::new(4), Cycle::new(20));
    }

    #[test]
    fn duplicate_flit_in_flight_is_a_duplicate_delivery_error() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 2, 0), true);
        t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(20))
            .unwrap();
        assert_eq!(
            t.on_eject(PacketId::new(1), 0, NodeId::new(5), Cycle::new(21)),
            Err(DeliveryError::DuplicateDelivery {
                packet: PacketId::new(1),
                seq: 0
            })
        );
        // The rejected copy changed nothing: the packet still completes
        // normally with its real latency.
        assert_eq!(t.delivered_flits(), 1);
        assert_eq!(
            t.on_eject(PacketId::new(1), 1, NodeId::new(5), Cycle::new(30)),
            Ok(Some(30))
        );
        assert_eq!(t.latency().mean(), 30.0);
    }

    #[test]
    #[should_panic(expected = "unknown packet")]
    fn unknown_packet_panics() {
        let mut t = DeliveryTracker::new(100);
        let _ = t.on_eject(PacketId::new(7), 0, NodeId::new(5), Cycle::new(20));
    }

    #[test]
    #[should_panic(expected = "duplicate packet id")]
    fn duplicate_inject_panics() {
        let mut t = DeliveryTracker::new(100);
        t.on_inject(&packet(1, 1, 0), true);
        t.on_inject(&packet(1, 1, 0), true);
    }
}
