//! # noc-network
//!
//! Network composition and measurement: wires `noc-vc` or
//! `flit-reservation` routers into the paper's 8×8 mesh, drives the
//! warm-up / measure / drain methodology, and provides the sweep and
//! saturation-search harness every figure and table is built from.
//!
//! # Examples
//!
//! ```no_run
//! use noc_network::{FlowControl, SimConfig, sweep_loads};
//! use noc_flow::LinkTiming;
//! use noc_topology::Mesh;
//! use noc_vc::VcConfig;
//!
//! let mesh = Mesh::new(8, 8);
//! let vc8 = FlowControl::VirtualChannel(VcConfig::vc8(), LinkTiming::fast_control());
//! let curve = sweep_loads(&vc8, mesh, 5, &[0.2, 0.4, 0.6], &SimConfig::quick(1), 1);
//! println!("VC8 base latency ≈ {:.1} cycles", curve.base_latency());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blackbox;
mod experiment;
mod network;
pub mod profile;
mod runner;
mod shard;
mod tracker;

pub use blackbox::{
    capture_at_cycle, replay_to_cycle, run_blackbox, BlackboxNet, BlackboxRun, ReplayReport,
    ReplaySpec, Trigger,
};
pub use experiment::{
    base_latency, find_saturation, sweep_loads, Curve, FlowControl, LoadPoint, TelemetryRun,
};
pub use network::{FaultSummary, Network, ProbeConfig, ProbeState};
pub use profile::{EngineProfile, ProfileSample};
pub use runner::{run_simulation, run_simulation_sharded, RunResult, SimConfig};
pub use shard::ShardPlan;
pub use tracker::{DeliveryError, DeliveryTracker};
