//! Mesh partitioning for parallel sharded stepping.
//!
//! A [`ShardPlan`] splits the mesh's node index space `0..nodes` into
//! consecutive, non-overlapping ranges — one per worker thread. Because
//! the network keeps its hot per-node state (router slots, backlogs,
//! inbound links) in dense arrays ordered by node index, a contiguous
//! range is also a contiguous slab of memory, so shards touch disjoint
//! cache lines while they step concurrently.
//!
//! The plan is pure data: it says *who owns which nodes*, nothing about
//! threads. [`crate::Network::set_shard_plan`] pairs a plan with a
//! `WorkerPool` of matching width.
//!
//! # Examples
//!
//! ```
//! use noc_network::ShardPlan;
//!
//! let plan = ShardPlan::contiguous(10, 4);
//! assert_eq!(plan.shards(), 4);
//! assert_eq!(plan.range(0), 0..3);
//! assert_eq!(plan.range(3), 8..10);
//! assert_eq!(plan.shard_of(8), 3);
//! // Every node is owned by exactly one shard.
//! let owned: usize = (0..plan.shards()).map(|s| plan.range(s).len()).sum();
//! assert_eq!(owned, 10);
//! ```

use std::ops::Range;

/// A partition of node indices `0..nodes` into contiguous shard ranges.
///
/// Shards may be empty (more shards than nodes is allowed); together they
/// always cover every node exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// `bounds[s]..bounds[s + 1]` is shard `s`; `bounds.len() == shards + 1`,
    /// non-decreasing, first 0, last `nodes`.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Splits `nodes` into `shards` near-equal contiguous ranges, the
    /// remainder spread one node each over the leading shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn contiguous(nodes: usize, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let base = nodes / shards;
        let extra = nodes % shards;
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0;
        bounds.push(at);
        for s in 0..shards {
            at += base + usize::from(s < extra);
            bounds.push(at);
        }
        ShardPlan { bounds }
    }

    /// Builds a plan from explicit cut points: each cut `c` starts a new
    /// shard at node `c`. Cuts are sorted, deduplicated, and clamped to
    /// `0..=nodes`, so any list of indices — e.g. a randomly generated one
    /// in a property test — yields a valid plan of `cuts + 1` (or fewer,
    /// after dedup) shards.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_network::ShardPlan;
    ///
    /// let plan = ShardPlan::from_cuts(16, &[12, 4, 4, 90]);
    /// assert_eq!(plan.shards(), 3);
    /// assert_eq!(plan.range(0), 0..4);
    /// assert_eq!(plan.range(1), 4..12);
    /// assert_eq!(plan.range(2), 12..16);
    /// ```
    pub fn from_cuts(nodes: usize, cuts: &[usize]) -> Self {
        let mut bounds: Vec<usize> = cuts.iter().map(|&c| c.min(nodes)).collect();
        bounds.push(0);
        bounds.push(nodes);
        bounds.sort_unstable();
        bounds.dedup();
        // Dedup can merge the 0 and `nodes` sentinels with cuts; the
        // invariant (first 0, last nodes) survives because both are
        // always present before dedup.
        ShardPlan { bounds }
    }

    /// Number of shards in the plan.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of nodes the plan covers.
    pub fn nodes(&self) -> usize {
        *self.bounds.last().expect("plan has bounds")
    }

    /// The node index range owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.shards()`.
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.nodes()`.
    pub fn shard_of(&self, node: usize) -> usize {
        assert!(node < self.nodes(), "node outside plan");
        // partition_point returns the count of bounds <= node, which is
        // 1 (the leading 0) + the number of whole shards before it.
        self.bounds.partition_point(|&b| b <= node) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_covers_all_nodes_in_order() {
        for nodes in [0usize, 1, 5, 16, 17, 64] {
            for shards in [1usize, 2, 3, 4, 8] {
                let plan = ShardPlan::contiguous(nodes, shards);
                assert_eq!(plan.shards(), shards);
                assert_eq!(plan.nodes(), nodes);
                let mut at = 0;
                for s in 0..shards {
                    let r = plan.range(s);
                    assert_eq!(r.start, at);
                    at = r.end;
                }
                assert_eq!(at, nodes);
            }
        }
    }

    #[test]
    fn contiguous_balances_within_one() {
        let plan = ShardPlan::contiguous(10, 3);
        let sizes: Vec<usize> = (0..3).map(|s| plan.range(s).len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn shard_of_inverts_range() {
        let plan = ShardPlan::contiguous(64, 8);
        for s in 0..plan.shards() {
            for node in plan.range(s) {
                assert_eq!(plan.shard_of(node), s);
            }
        }
    }

    #[test]
    fn more_shards_than_nodes_gives_empty_tails() {
        let plan = ShardPlan::contiguous(2, 4);
        assert_eq!(plan.range(0), 0..1);
        assert_eq!(plan.range(1), 1..2);
        assert!(plan.range(2).is_empty());
        assert!(plan.range(3).is_empty());
    }

    #[test]
    fn from_cuts_sorts_dedups_and_clamps() {
        let plan = ShardPlan::from_cuts(16, &[12, 4, 4, 90]);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.range(1), 4..12);
        assert_eq!(plan.shard_of(3), 0);
        assert_eq!(plan.shard_of(4), 1);
        assert_eq!(plan.shard_of(15), 2);
    }

    #[test]
    fn from_cuts_with_no_cuts_is_one_shard() {
        let plan = ShardPlan::from_cuts(9, &[]);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.range(0), 0..9);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        ShardPlan::contiguous(4, 0);
    }

    #[test]
    #[should_panic(expected = "node outside plan")]
    fn shard_of_out_of_range_panics() {
        ShardPlan::contiguous(4, 2).shard_of(4);
    }
}
