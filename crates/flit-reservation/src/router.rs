//! The flit-reservation router (paper Figure 3).
//!
//! The upper half is the control network: control flits arrive in per-VC
//! queues, are routed (heads) or follow their VC's route (bodies), and are
//! presented to the output scheduler of their output port. The output
//! scheduler books each led data flit into the output reservation table;
//! every successful booking is reported to the input scheduler of the
//! originating input port, which fills the input reservation table and
//! returns an advance credit upstream. Once all of a control flit's data
//! flits are scheduled, the control flit is forwarded (or consumed, at the
//! destination, after scheduling the ejection).
//!
//! The lower half is the data network: each cycle the input reservation
//! tables *direct* the data path — which buffer to write the arriving flit
//! to and which buffer to drive onto which output channel. "There are no
//! decisions to be made as all of the work has been done ahead of time by
//! the control flits."

use crate::transfers::TransferCounter;
use crate::{
    BufferAllocPolicy, FrConfig, InputReservationTable, OutputReservationTable, SchedulingPolicy,
};
use noc_engine::stats::RunningStats;
use noc_engine::trace::{NullSink, TraceSink};
use noc_engine::{Cycle, Rng};
use noc_flow::{
    ControlFlit, ControlKind, DataFlit, LedFlit, LinkEvent, Router, StepOutputs, TraceEmit,
};
use noc_topology::{masked_xy_route, xy_route, Mesh, NodeId, Port, PortMap};
use noc_traffic::Packet;
use std::collections::VecDeque;

/// A control flit waiting in an input control-VC queue.
#[derive(Clone, Debug)]
struct QueuedControl {
    flit: ControlFlit,
    arrived: Cycle,
}

/// Per-input control VC state.
#[derive(Clone, Debug)]
struct ControlVc {
    queue: VecDeque<QueuedControl>,
    /// Output port of the packet currently flowing through this VC.
    route: Option<Port>,
    /// Downstream control VC granted to that packet.
    out_vc: Option<u8>,
}

impl ControlVc {
    fn new() -> Self {
        ControlVc {
            queue: VecDeque::new(),
            route: None,
            out_vc: None,
        }
    }
}

/// Network-interface state: packet staging, the injection reservation
/// table and data flits awaiting their scheduled injection cycle.
#[derive(Clone, Debug)]
struct FrNi {
    pending: VecDeque<Packet>,
    /// Control flits of the packet currently being injected.
    staged: VecDeque<ControlFlit>,
    /// Local control VC carrying the current packet.
    current_vc: Option<u8>,
    /// Output reservation table of the NI→router injection channel.
    inject_table: OutputReservationTable,
    /// Data flits scheduled for injection, keyed by injection cycle.
    data_ready: Vec<(Cycle, DataFlit)>,
}

/// Aggregate statistics a flit-reservation router collects.
#[derive(Clone, Debug, Default)]
pub struct FrStats {
    /// Lead (in cycles) of ejection-scheduling control flits over their
    /// data flits at this node, sampled when the reservation is made.
    pub dest_lead: RunningStats,
    /// Data flit reservations committed by this router's output schedulers.
    pub scheduled_flits: u64,
    /// Data flits that arrived before their reservation (schedule list).
    pub parked_arrivals: u64,
    /// Data flits that crossed the router in their arrival cycle.
    pub bypassed_flits: u64,
    /// Scheduling attempts that found no feasible departure slot and
    /// stalled their control flit for at least a cycle (table misses).
    pub reservation_misses: u64,
    /// Control flits forwarded onto outgoing control links.
    pub control_flits_sent: u64,
    /// Data flits forwarded onto outgoing data links (excludes ejections).
    pub data_flits_sent: u64,
    /// Route computations that detoured around a dead output link.
    pub masked_routes: u64,
}

/// A flit-reservation flow-control router.
///
/// Generic over a [`TraceSink`]; the default [`NullSink`] disables
/// tracing at zero cost, [`FrRouter::with_tracer`] plugs a real sink in.
///
/// # Examples
///
/// ```
/// use flit_reservation::{FrConfig, FrRouter};
/// use noc_engine::Rng;
/// use noc_topology::{Mesh, NodeId};
///
/// let mesh = Mesh::new(8, 8);
/// let router = FrRouter::new(mesh, NodeId::new(0), FrConfig::fr6(), Rng::from_seed(9));
/// use noc_flow::Router as _;
/// assert_eq!(router.data_buffer_capacity(noc_topology::Port::East), 6);
/// ```
#[derive(Clone, Debug)]
pub struct FrRouter<S: TraceSink = NullSink> {
    node: NodeId,
    mesh: Mesh,
    config: FrConfig,
    rng: Rng,
    /// Control input queues: per input port, per control VC.
    control_inputs: PortMap<Vec<ControlVc>>,
    /// Credits for downstream control-VC queues, per output port.
    control_credits: PortMap<Vec<usize>>,
    /// Downstream control-VC ownership, per output port.
    control_vc_owner: PortMap<Vec<bool>>,
    /// Output reservation tables, per output port.
    output_tables: PortMap<OutputReservationTable>,
    /// Input reservation tables (and buffer pools), per input port.
    input_tables: PortMap<InputReservationTable>,
    ni: FrNi,
    stats: FrStats,
    /// Output ports masked out of routing after a permanent link failure
    /// (bit `1 << port.index()`); see [`Router::on_link_dead`].
    dead_mask: u8,
    /// Data flits that arrived on links this cycle, buffered until the
    /// data path has executed this cycle's departures: a buffer freed at
    /// `t_d` may be reused by a flit arriving at the same cycle, so
    /// departures (reads) must run before arrivals (writes).
    pending_data: Vec<(Port, DataFlit)>,
    /// Present only under the bind-at-reservation ablation: per-input
    /// interval bookkeeping that counts buffer-to-buffer transfers.
    transfer_counters: Option<PortMap<TransferCounter>>,
    sink: S,
}

impl FrRouter {
    /// Creates an untraced router for `node` of `mesh`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`FrConfig::validate`]).
    pub fn new(mesh: Mesh, node: NodeId, config: FrConfig, rng: Rng) -> Self {
        FrRouter::with_tracer(mesh, node, config, rng, NullSink)
    }
}

impl<S: TraceSink> FrRouter<S> {
    /// Creates a router that reports every event to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is internally inconsistent (see
    /// [`FrConfig::validate`]).
    pub fn with_tracer(mesh: Mesh, node: NodeId, config: FrConfig, rng: Rng, sink: S) -> Self {
        config.validate();
        let horizon = config.horizon;
        let t = config.timing;
        let output_tables = PortMap::from_fn(|p| {
            if p == Port::Local {
                // Ejection channel: 1 flit/cycle into unbounded reassembly
                // buffers, no propagation.
                OutputReservationTable::new(horizon, None, 0)
            } else {
                OutputReservationTable::new(horizon, Some(config.data_buffers), t.data_delay)
            }
        });
        let input_tables = PortMap::from_fn(|_| {
            InputReservationTable::new(horizon, config.data_buffers, t.data_delay)
        });
        let control_inputs =
            PortMap::from_fn(|_| (0..config.control_vcs).map(|_| ControlVc::new()).collect());
        let control_credits =
            PortMap::from_fn(|_| vec![config.control_queue_depth; config.control_vcs]);
        let control_vc_owner = PortMap::from_fn(|_| vec![false; config.control_vcs]);
        FrRouter {
            node,
            mesh,
            config,
            rng,
            control_inputs,
            control_credits,
            control_vc_owner,
            output_tables,
            input_tables,
            ni: FrNi {
                pending: VecDeque::new(),
                staged: VecDeque::new(),
                current_vc: None,
                inject_table: OutputReservationTable::new(horizon, Some(config.data_buffers), 0),
                data_ready: Vec::new(),
            },
            stats: FrStats::default(),
            dead_mask: 0,
            pending_data: Vec::new(),
            transfer_counters: match config.buffer_alloc {
                BufferAllocPolicy::AtReservation => Some(PortMap::from_fn(|_| {
                    TransferCounter::new(config.data_buffers)
                })),
                BufferAllocPolicy::JustBeforeArrival => None,
            },
            sink,
        }
    }

    /// Buffer transfers incurred so far under the bind-at-reservation
    /// ablation, as `(transfers, residencies)`; `None` when running the
    /// paper's deferred-binding policy (which never transfers).
    pub fn buffer_transfers(&self) -> Option<(u64, u64)> {
        self.transfer_counters.as_ref().map(|counters| {
            let mut t = 0;
            let mut b = 0;
            for (_, c) in counters.iter() {
                t += c.transfers();
                b += c.booked();
            }
            (t, b)
        })
    }

    /// The router's configuration.
    pub fn config(&self) -> &FrConfig {
        &self.config
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &FrStats {
        &self.stats
    }

    fn route_to(&mut self, dest: NodeId) -> Port {
        if dest == self.node {
            return Port::Local;
        }
        let out = masked_xy_route(self.mesh, self.node, dest, self.dead_mask)
            .expect("non-local destination must route");
        if self.dead_mask != 0 && Some(out) != xy_route(self.mesh, self.node, dest) {
            self.stats.masked_routes += 1;
        }
        out
    }

    fn advance_tables(&mut self, now: Cycle) {
        for (_, table) in self.output_tables.iter_mut() {
            table.advance_to(now);
        }
        for (_, table) in self.input_tables.iter_mut() {
            table.advance_to(now);
        }
        self.ni.inject_table.advance_to(now);
    }

    /// Releases NI data flits whose scheduled injection cycle is `now`
    /// into the local input channel (delivered with this cycle's other
    /// arrivals by [`Self::accept_arrivals`]).
    fn release_injections(&mut self, now: Cycle) {
        let mut i = 0;
        let mut released = 0u32;
        while i < self.ni.data_ready.len() {
            if self.ni.data_ready[i].0 == now {
                let (_, flit) = self.ni.data_ready.swap_remove(i);
                released += 1;
                assert!(
                    released <= 1,
                    "injection channel carried two flits in one cycle"
                );
                self.sink.flit_injected(now, self.node, &flit);
                self.pending_data.push((Port::Local, flit));
            } else {
                debug_assert!(
                    self.ni.data_ready[i].0 > now,
                    "missed a scheduled injection"
                );
                i += 1;
            }
        }
    }

    /// Buffers this cycle's arrivals into the input pools (after the
    /// departures of the same cycle have freed their buffers), forwarding
    /// same-cycle bypass flits straight to their reserved outputs.
    fn accept_arrivals(&mut self, now: Cycle, out: &mut StepOutputs) {
        let pending = std::mem::take(&mut self.pending_data);
        for (port, flit) in pending {
            match self.input_tables[port].on_data_arrival(flit, now) {
                crate::ArrivalOutcome::Parked(buffer) => {
                    self.stats.parked_arrivals += 1;
                    self.sink.buffer_alloc(now, self.node, port, buffer, &flit);
                }
                crate::ArrivalOutcome::Bypass { out_port } => {
                    self.stats.bypassed_flits += 1;
                    if out_port == Port::Local {
                        out.eject(flit, now);
                    } else {
                        self.stats.data_flits_sent += 1;
                        self.sink.data_sent(now, self.node, out_port, &flit);
                        out.send(out_port, LinkEvent::Data(flit));
                    }
                }
                crate::ArrivalOutcome::Scheduled(_, buffer) => {
                    self.sink.buffer_alloc(now, self.node, port, buffer, &flit);
                }
            }
        }
    }

    /// Routing pre-pass: compute the output port for head control flits at
    /// the front of their queues.
    fn route_control_heads(&mut self, now: Cycle) {
        for &port in &Port::ALL {
            for vc in 0..self.config.control_vcs {
                let dest = {
                    let cvc = &self.control_inputs[port][vc];
                    match cvc.queue.front() {
                        Some(qc)
                            if qc.flit.is_head() && cvc.route.is_none() && qc.arrived < now =>
                        {
                            match qc.flit.kind {
                                ControlKind::Head { dest } => Some(dest),
                                ControlKind::Body => None,
                            }
                        }
                        _ => None,
                    }
                };
                if let Some(dest) = dest {
                    let out = self.route_to(dest);
                    self.control_inputs[port][vc].route = Some(out);
                }
            }
        }
    }

    /// Attempts to reserve departures for every still-unscheduled data
    /// flit of the control flit at the front of `(in_port, vc)`, routed to
    /// `out_port`. Returns `true` if the control flit is fully scheduled.
    ///
    /// Under per-flit scheduling, successfully booked flits stay booked
    /// even when later ones fail ("each successfully scheduled data flit
    /// can hence move on to the next hop"); under all-or-nothing a dry run
    /// against a snapshot guarantees the commit either books everything or
    /// nothing.
    fn schedule_led_flits(
        &mut self,
        in_port: Port,
        vc: usize,
        out_port: Port,
        now: Cycle,
        out: &mut StepOutputs,
    ) -> bool {
        if self.config.policy == SchedulingPolicy::AllOrNothing {
            let front = &self.control_inputs[in_port][vc]
                .queue
                .front()
                .expect("caller guarantees a front flit")
                .flit;
            let mut snapshot = self.output_tables[out_port].clone();
            let mut booked: Vec<Cycle> = Vec::new();
            let mut remaining = front.led.iter().filter(|l| !l.scheduled).count() as i64;
            for led in front.led.iter().filter(|l| !l.scheduled) {
                let input = &self.input_tables[in_port];
                let allow_bypass = self.config.same_cycle_bypass && led.arrival > now;
                let found =
                    snapshot.schedule_search(led.arrival, now, remaining, allow_bypass, |c| {
                        !input.departure_booked(c) && !booked.contains(&c)
                    });
                match found {
                    Some(t_d) => {
                        snapshot.reserve(t_d);
                        booked.push(t_d);
                        remaining -= 1;
                    }
                    None => {
                        self.stats.reservation_misses += 1;
                        return false;
                    }
                }
            }
        }

        loop {
            // Copy out the next unscheduled entry (index, arrival, flit).
            let next = {
                let front = &self.control_inputs[in_port][vc]
                    .queue
                    .front()
                    .expect("caller guarantees a front flit")
                    .flit;
                front
                    .led
                    .iter()
                    .enumerate()
                    .find(|(_, l)| !l.scheduled)
                    .map(|(i, l)| (i, l.arrival, l.flit))
            };
            let (idx, t_a, led_flit) = match next {
                Some(n) => n,
                None => return true,
            };
            // Demanding `remaining` free buffers guarantees this control
            // flit can always complete its schedule and travel on to
            // release the flits it has already sent ahead (the greedy
            // policy reproduces the paper's literal one-buffer rule).
            let remaining = if self.config.policy == SchedulingPolicy::PerFlitGreedy {
                1
            } else {
                self.control_inputs[in_port][vc]
                    .queue
                    .front()
                    .expect("front still present")
                    .flit
                    .led
                    .iter()
                    .filter(|l| !l.scheduled)
                    .count() as i64
            };
            let input = &self.input_tables[in_port];
            let allow_bypass = self.config.same_cycle_bypass && t_a > now;
            let found = self.output_tables[out_port].schedule_search(
                t_a,
                now,
                remaining,
                allow_bypass,
                |c| !input.departure_booked(c),
            );
            let t_d = match found {
                Some(t) => t,
                None => {
                    // Stall; already-booked flits stand.
                    self.stats.reservation_misses += 1;
                    return false;
                }
            };
            self.output_tables[out_port].reserve(t_d);
            self.input_tables[in_port].apply_reservation(t_a, t_d, out_port, now);
            // Ejection reservations hold no channel bandwidth, so only
            // mesh-port grants are traced (and must be consumed by a
            // matching data-flit departure).
            if out_port != Port::Local {
                self.sink.channel_grant(now, self.node, out_port, t_d);
            }
            self.sink
                .reservation_made(now, self.node, &led_flit, in_port, out_port, t_a, t_d);
            if let Some(counters) = &mut self.transfer_counters {
                // Bypassed flits (t_d == t_a) never occupy a buffer.
                if t_d > t_a {
                    counters[in_port].book(t_a, t_d);
                }
            }
            self.stats.scheduled_flits += 1;
            if out_port == Port::Local {
                // How far ahead of its data flit did this control flit
                // schedule the ejection? Negative = data flit got here
                // first and waited in the schedule list.
                self.stats
                    .dest_lead
                    .record(t_a.raw() as f64 - now.raw() as f64);
            }
            // Advance credit: the buffer at this input frees at t_d, plus
            // the plesiochronous synchronization margin (Section 5).
            let frees_at = t_d + self.config.sync_margin;
            if in_port == Port::Local {
                self.ni.inject_table.credit(frees_at, now);
            } else {
                self.sink.credit_sent(now, self.node, in_port, 0);
                out.send(in_port, LinkEvent::FrCredit { frees_at });
            }
            let front = self.control_inputs[in_port][vc]
                .queue
                .front_mut()
                .expect("front still present");
            front.flit.led[idx].arrival = t_d + self.config.timing.data_delay;
            front.flit.led[idx].scheduled = true;
        }
    }

    /// Processes up to `control_lanes` control flits per output port:
    /// VC allocation, output scheduling, forwarding/consumption.
    fn process_control(&mut self, now: Cycle, out: &mut StepOutputs) {
        self.route_control_heads(now);
        for &out_port in &Port::ALL {
            // Candidates: input VCs whose front flit is ready and routed
            // to this output.
            let mut candidates: Vec<(Port, usize)> = Vec::new();
            for &in_port in &Port::ALL {
                for vc in 0..self.config.control_vcs {
                    let cvc = &self.control_inputs[in_port][vc];
                    if cvc.route != Some(out_port) {
                        continue;
                    }
                    match cvc.queue.front() {
                        Some(qc) if qc.arrived < now => candidates.push((in_port, vc)),
                        _ => {}
                    }
                }
            }
            self.rng.shuffle(&mut candidates);
            candidates.truncate(self.config.control_lanes as usize);
            for (in_port, vc) in candidates {
                self.process_one_control(in_port, vc, out_port, now, out);
            }
        }
    }

    fn process_one_control(
        &mut self,
        in_port: Port,
        vc: usize,
        out_port: Port,
        now: Cycle,
        out: &mut StepOutputs,
    ) {
        // Downstream control VC allocation (heads, non-local routes).
        if out_port != Port::Local && self.control_inputs[in_port][vc].out_vc.is_none() {
            let free: Vec<u8> = self.control_vc_owner[out_port]
                .iter()
                .enumerate()
                .filter(|(_, &owned)| !owned)
                .map(|(v, _)| v as u8)
                .collect();
            if free.is_empty() {
                return; // stall: no downstream control VC
            }
            let granted = *self.rng.choose(&free);
            self.control_vc_owner[out_port][granted as usize] = true;
            self.control_inputs[in_port][vc].out_vc = Some(granted);
        }
        // Credit check before doing the scheduling work: a forwarded
        // control flit needs a downstream queue slot.
        let out_vc = if out_port == Port::Local {
            0
        } else {
            let ovc = self.control_inputs[in_port][vc]
                .out_vc
                .expect("allocated above");
            if self.control_credits[out_port][ovc as usize] == 0 {
                return; // stall: downstream control queue full
            }
            ovc
        };

        if !self.schedule_led_flits(in_port, vc, out_port, now, out) {
            return; // stall: some data flit could not be scheduled yet
        }

        // Fully scheduled: consume or forward the control flit.
        let qc = self.control_inputs[in_port][vc]
            .queue
            .pop_front()
            .expect("front present");
        let mut flit = qc.flit;
        let is_tail = flit.is_tail;
        if in_port != Port::Local {
            self.sink.credit_sent(now, self.node, in_port, vc as u8);
            out.send(in_port, LinkEvent::ControlCredit { vc: vc as u8 });
        }
        if out_port == Port::Local {
            // Destination: the control flit has scheduled the ejection of
            // its data flits and is consumed.
        } else {
            self.control_credits[out_port][out_vc as usize] -= 1;
            flit.vc = out_vc;
            self.stats.control_flits_sent += 1;
            self.sink
                .control_sent(now, self.node, out_port, out_vc, flit.packet);
            out.send(out_port, LinkEvent::Control(flit));
        }
        if is_tail {
            let cvc = &mut self.control_inputs[in_port][vc];
            cvc.route = None;
            if out_port != Port::Local {
                let ovc = cvc.out_vc.expect("tail releases an allocated VC");
                self.control_vc_owner[out_port][ovc as usize] = false;
            }
            cvc.out_vc = None;
        }
    }

    /// Executes booked departures: drive buffers onto output channels.
    fn run_data_path(&mut self, now: Cycle, out: &mut StepOutputs) {
        for &port in &Port::ALL {
            if let Some((flit, out_port, buffer)) = self.input_tables[port].take_departure(now) {
                self.sink.buffer_free(now, self.node, port, buffer, &flit);
                if out_port == Port::Local {
                    out.eject(flit, now);
                } else {
                    self.stats.data_flits_sent += 1;
                    self.sink.data_sent(now, self.node, out_port, &flit);
                    out.send(out_port, LinkEvent::Data(flit));
                }
            }
        }
    }

    /// NI: stage pending packets and push their control flits into the
    /// local control input, scheduling data-flit injections.
    fn inject_control(&mut self, now: Cycle) {
        let lanes = self.config.control_lanes;
        for _ in 0..lanes {
            if self.ni.staged.is_empty() {
                let packet = match self.ni.pending.pop_front() {
                    Some(p) => p,
                    None => break,
                };
                self.stage_packet(packet);
            }
            let is_head = self.ni.staged.front().map(|f| f.is_head()).unwrap_or(false);
            // Pick / look up the local control VC for this packet.
            let vc = if is_head {
                let free: Vec<u8> = (0..self.config.control_vcs)
                    .filter(|&v| {
                        self.control_inputs[Port::Local][v].queue.len()
                            < self.config.control_queue_depth
                    })
                    .map(|v| v as u8)
                    .collect();
                if free.is_empty() {
                    break;
                }
                let chosen = *self.rng.choose(&free);
                self.ni.current_vc = Some(chosen);
                chosen
            } else {
                match self.ni.current_vc {
                    Some(v)
                        if self.control_inputs[Port::Local][v as usize].queue.len()
                            < self.config.control_queue_depth =>
                    {
                        v
                    }
                    _ => break,
                }
            };
            // Schedule the injection of this control flit's data flits.
            if !self.schedule_injections(now) {
                break;
            }
            let mut flit = self.ni.staged.pop_front().expect("staged front");
            flit.vc = vc;
            if flit.is_tail {
                self.ni.current_vc = None;
            }
            self.control_inputs[Port::Local][vc as usize]
                .queue
                .push_back(QueuedControl { flit, arrived: now });
        }
    }

    /// Books injection slots for the front staged control flit's data
    /// flits. A control flit is only injected "after \[it has\] scheduled
    /// the injection times of \[its\] data flits", so this is atomic per
    /// control flit regardless of the router-level scheduling policy:
    /// either every led flit gets an injection cycle or nothing is booked.
    fn schedule_injections(&mut self, now: Cycle) -> bool {
        let lead = self.config.timing.control_lead;
        // Earliest allowed injection: `now + 1`, or `now + lead` when the
        // control flit must lead its data flits by `lead` cycles. The
        // table searches strictly after the floor we pass it.
        let floor = Cycle::new((now.raw() + lead).saturating_sub(1));
        let front = self.ni.staged.front_mut().expect("caller checked");
        // Dry-run on a snapshot so failure books nothing.
        let mut snapshot = self.ni.inject_table.clone();
        let mut slots = Vec::with_capacity(front.led.len());
        let mut remaining = front.led.len() as i64;
        for _ in &front.led {
            match snapshot.find_departure_min(floor, now, remaining, |_| true) {
                Some(t) => {
                    snapshot.reserve(t);
                    slots.push(t);
                    remaining -= 1;
                }
                None => return false,
            }
        }
        for (led, &t_inj) in front.led.iter_mut().zip(&slots) {
            self.ni.inject_table.reserve(t_inj);
            led.arrival = t_inj;
            led.scheduled = false; // to be scheduled by this router next
            self.ni.data_ready.push((t_inj, led.flit));
        }
        true
    }

    fn stage_packet(&mut self, packet: Packet) {
        let d = self.config.flits_per_control as usize;
        let total = packet.length_flits;
        let mut flits: Vec<DataFlit> = (0..total)
            .map(|seq| DataFlit {
                packet: packet.id,
                seq,
                length: total,
                dest: packet.dest,
                created_at: packet.created_at,
                crc_ok: true,
            })
            .collect();
        let mut first = true;
        while !flits.is_empty() || first {
            let chunk: Vec<LedFlit> = flits
                .drain(..d.min(flits.len()))
                .map(|flit| LedFlit {
                    arrival: Cycle::ZERO, // set when the injection is booked
                    scheduled: false,
                    flit,
                })
                .collect();
            let is_tail = flits.is_empty();
            self.ni.staged.push_back(ControlFlit {
                vc: 0,
                kind: if first {
                    ControlKind::Head { dest: packet.dest }
                } else {
                    ControlKind::Body
                },
                is_tail,
                led: chunk,
                packet: packet.id,
            });
            first = false;
        }
    }
}

impl<S: TraceSink> Router for FrRouter<S> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn receive(&mut self, port: Port, event: LinkEvent, now: Cycle) {
        match event {
            LinkEvent::Data(flit) => {
                // Deferred to `step`: this cycle's departures must free
                // their buffers before this arrival claims one.
                self.pending_data.push((port, flit));
            }
            LinkEvent::Control(mut flit) => {
                // Every led flit must be rescheduled at this router.
                for led in &mut flit.led {
                    led.scheduled = false;
                }
                let vc = flit.vc as usize;
                assert!(vc < self.config.control_vcs, "control vc out of range");
                let q = &mut self.control_inputs[port][vc];
                assert!(
                    q.queue.len() < self.config.control_queue_depth,
                    "control queue overflow at node {} port {port}",
                    self.node
                );
                q.queue.push_back(QueuedControl { flit, arrived: now });
            }
            LinkEvent::ControlCredit { vc } => {
                let c = &mut self.control_credits[port][vc as usize];
                *c += 1;
                debug_assert!(
                    *c <= self.config.control_queue_depth,
                    "control credit overflow"
                );
            }
            LinkEvent::FrCredit { frees_at } => {
                // Slide the window to `now` before applying: if this
                // router was idle-skipped, the table base is stale and the
                // credit could land beyond the old window. Advancing first
                // is state-identical to the advance the step phase would
                // have performed (recycled slots inherit `tail_free`
                // either way), so stepped and skipped runs stay bit-equal.
                let table = &mut self.output_tables[port];
                table.advance_to(now);
                table.credit(frees_at, now);
            }
            other => panic!("FR router received foreign event {other:?}"),
        }
    }

    fn try_inject(&mut self, packet: Packet, _now: Cycle) -> bool {
        self.ni.pending.push_back(packet);
        true
    }

    fn step(&mut self, now: Cycle, out: &mut StepOutputs) {
        self.advance_tables(now);
        if now.raw().is_multiple_of(64) {
            if let Some(counters) = &mut self.transfer_counters {
                for (_, c) in counters.iter_mut() {
                    c.collect_garbage(now);
                }
            }
        }
        self.run_data_path(now, out);
        self.release_injections(now);
        self.accept_arrivals(now, out);
        self.process_control(now, out);
        self.inject_control(now);
    }

    fn occupied_data_buffers(&self, port: Port) -> usize {
        self.input_tables[port].occupied()
    }

    fn data_buffer_capacity(&self, port: Port) -> usize {
        self.input_tables[port].capacity()
    }

    fn queued_flits(&self) -> usize {
        let pooled: usize = Port::ALL
            .iter()
            .map(|&p| self.input_tables[p].occupied())
            .sum();
        let pending: usize = self
            .ni
            .pending
            .iter()
            .map(|p| p.length_flits as usize)
            .sum();
        pooled + pending + self.ni.data_ready.len()
    }

    /// Quiescent when no control flit is queued at any input, the NI has
    /// nothing pending, staged or scheduled for injection, no data flit
    /// awaits buffering and every input reservation table is free of
    /// bookings, parked flits and buffered flits. Output-table `busy`
    /// entries need no separate check: every future departure booked on an
    /// output channel is paired with an input-table booking here, and the
    /// remaining free-buffer bookkeeping advances identically whether the
    /// window slides one cycle at a time or jumps on wake-up. The
    /// buffer-transfer ablation keeps per-buffer interval state with its
    /// own garbage-collection schedule, so it conservatively never idles.
    fn is_idle(&self) -> bool {
        if self.transfer_counters.is_some() {
            return false;
        }
        self.pending_data.is_empty()
            && self.ni.pending.is_empty()
            && self.ni.staged.is_empty()
            && self.ni.data_ready.is_empty()
            && Port::ALL.iter().all(|&p| {
                self.input_tables[p].is_quiet()
                    && self.control_inputs[p].iter().all(|vc| vc.queue.is_empty())
            })
    }

    fn collect_counters(&self, out: &mut noc_flow::RouterCounters) {
        out.reservation_hits = self.stats.scheduled_flits;
        out.reservation_misses = self.stats.reservation_misses;
        out.control_flits_sent = self.stats.control_flits_sent;
        out.zero_turnaround_departures = self.stats.bypassed_flits;
        out.parked_arrivals = self.stats.parked_arrivals;
        out.data_flits_sent = self.stats.data_flits_sent;
        out.bookings_in_flight = Port::ALL
            .iter()
            .map(|&p| {
                (self.input_tables[p].pending_departures() + self.input_tables[p].parked()) as u64
            })
            .sum();
        out.masked_routes = self.stats.masked_routes;
    }

    fn on_link_dead(&mut self, port: Port) {
        self.dead_mask |= 1 << port.index();
    }

    /// Marks every control flit that was eligible this cycle but is still
    /// queued after the step: it lost control arbitration, found no free
    /// downstream control VC, ran out of control credit, or missed a
    /// reservation-table slot for one of its data flits. Data flits never
    /// stall on credit here — their departures are pre-reserved — so the
    /// data plane emits nothing and parked waits fall into the collector's
    /// buffer-wait bucket, which is exactly the paper's claim rendered as
    /// attribution.
    fn emit_stall_provenance(&mut self, now: Cycle) {
        if !S::ENABLED {
            return;
        }
        for &in_port in &Port::ALL {
            for cvc in &self.control_inputs[in_port] {
                if cvc.route.is_none() {
                    continue;
                }
                if let Some(qc) = cvc.queue.front() {
                    if qc.arrived < now {
                        self.sink.control_stall(now, self.node, qc.flit.packet);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_traffic::PacketId;

    fn mesh() -> Mesh {
        Mesh::new(4, 4)
    }

    fn fr_router(x: u16, y: u16, config: FrConfig) -> FrRouter {
        let m = mesh();
        FrRouter::new(m, m.node_at(x, y), config, Rng::from_seed(5))
    }

    fn packet(m: Mesh, src: (u16, u16), dst: (u16, u16), len: u32) -> Packet {
        Packet {
            id: PacketId::new(1),
            src: m.node_at(src.0, src.1),
            dest: m.node_at(dst.0, dst.1),
            length_flits: len,
            created_at: Cycle::ZERO,
        }
    }

    /// Timestamped sends and ejections collected by `drive`.
    type Driven = (Vec<(u64, Port, LinkEvent)>, Vec<(u64, DataFlit)>);

    /// Drives the router, returning (cycle, port, event) sends plus
    /// ejections.
    fn drive(r: &mut FrRouter, from: u64, to: u64) -> Driven {
        let mut sends = Vec::new();
        let mut ejections = Vec::new();
        for t in from..to {
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (p, e) in out.sends {
                sends.push((t, p, e));
            }
            for e in out.ejections {
                ejections.push((t, e.flit));
            }
        }
        (sends, ejections)
    }

    /// Like `drive`, but echoes a control credit back one cycle after
    /// every forwarded control flit, emulating an uncongested downstream
    /// router draining its control queues.
    fn drive_echo(r: &mut FrRouter, from: u64, to: u64) -> Driven {
        let mut sends = Vec::new();
        let mut ejections = Vec::new();
        let mut pending: Vec<(u64, Port, u8)> = Vec::new();
        for t in from..to {
            let now = Cycle::new(t);
            pending.retain(|&(due, port, vc)| {
                if due <= t {
                    r.receive(port, LinkEvent::ControlCredit { vc }, now);
                    false
                } else {
                    true
                }
            });
            let mut out = StepOutputs::new();
            r.step(now, &mut out);
            for (p, e) in out.sends {
                if let LinkEvent::Control(cf) = &e {
                    pending.push((t + 1, p, cf.vc));
                }
                sends.push((t, p, e));
            }
            for e in out.ejections {
                ejections.push((t, e.flit));
            }
        }
        (sends, ejections)
    }

    fn data_flit(seq: u32, len: u32, dest: NodeId) -> DataFlit {
        DataFlit {
            packet: PacketId::new(9),
            seq,
            length: len,
            dest,
            created_at: Cycle::ZERO,
            crc_ok: true,
        }
    }

    #[test]
    fn injected_packet_flows_east_control_before_data() {
        let m = mesh();
        let mut r = fr_router(0, 0, FrConfig::fr6());
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends, ejections) = drive_echo(&mut r, 0, 40);
        assert!(ejections.is_empty());
        let controls: Vec<(u64, &ControlFlit)> = sends
            .iter()
            .filter_map(|(t, p, e)| match e {
                LinkEvent::Control(cf) => {
                    assert_eq!(*p, Port::East);
                    Some((*t, cf))
                }
                _ => None,
            })
            .collect();
        let datas: Vec<(u64, &DataFlit)> = sends
            .iter()
            .filter_map(|(t, p, e)| match e {
                LinkEvent::Data(f) => {
                    assert_eq!(*p, Port::East);
                    Some((*t, f))
                }
                _ => None,
            })
            .collect();
        assert_eq!(controls.len(), 5, "d=1: one control flit per data flit");
        assert_eq!(datas.len(), 5);
        // The control head leads and every control flit precedes its data
        // flit on the wire.
        assert!(controls[0].1.is_head());
        assert!(controls[4].1.is_tail);
        for (ct, cf) in &controls {
            let led = &cf.led[0];
            assert!(led.scheduled);
            // The carried arrival time names the *next-hop* arrival:
            // departure + 4-cycle data link.
            let dep = led.arrival.raw() - 4;
            assert!(
                *ct < dep,
                "control flit sent at {ct} must precede data departure {dep}"
            );
            assert!(
                datas.iter().any(|(dt, _)| *dt == dep),
                "a data flit departs at the reserved cycle {dep}"
            );
        }
        // At most 2 control flits per cycle on the link.
        for t in 0..40u64 {
            let n = controls.iter().filter(|(ct, _)| *ct == t).count();
            assert!(n <= 2, "{n} control flits in cycle {t}");
        }
        // All data departures distinct (channel busy bits).
        let mut dep_cycles: Vec<u64> = datas.iter().map(|(t, _)| *t).collect();
        dep_cycles.sort_unstable();
        dep_cycles.dedup();
        assert_eq!(dep_cycles.len(), 5);
    }

    #[test]
    fn arriving_packet_is_ejected_and_credited() {
        let m = mesh();
        let mut r = fr_router(1, 0, FrConfig::fr6());
        let dest = m.node_at(1, 0);
        // A single-flit packet from the west: control head at cycle 0,
        // data flit arriving at cycle 6.
        let cf = ControlFlit {
            vc: 0,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::new(6),
                scheduled: true, // will be reset on receive
                flit: data_flit(0, 1, dest),
            }],
            packet: PacketId::new(9),
        };
        r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        let mut out = StepOutputs::new();
        r.step(Cycle::ZERO, &mut out);
        assert!(out.sends.is_empty(), "not processed until arrived+1");
        // Cycle 1: control flit processed, ejection scheduled, credits go
        // back west.
        let mut out = StepOutputs::new();
        r.step(Cycle::new(1), &mut out);
        let kinds: Vec<&LinkEvent> = out.sends.iter().map(|(_, e)| e).collect();
        assert!(kinds
            .iter()
            .any(|e| matches!(e, LinkEvent::FrCredit { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, LinkEvent::ControlCredit { vc: 0 })));
        assert!(!kinds.iter().any(|e| matches!(e, LinkEvent::Control(_))));
        // Data flit arrives at 6 and must be ejected at its reserved time.
        drive(&mut r, 2, 6);
        r.receive(
            Port::West,
            LinkEvent::Data(data_flit(0, 1, dest)),
            Cycle::new(6),
        );
        let (_, ejections) = drive(&mut r, 6, 20);
        assert_eq!(ejections.len(), 1);
        // With same-cycle bypass the flit can eject in its arrival cycle.
        assert!(ejections[0].0 >= 6);
        assert_eq!(r.stats().scheduled_flits, 1);
        assert_eq!(r.stats().parked_arrivals, 0);
    }

    #[test]
    fn early_data_flit_parks_then_ejects() {
        let m = mesh();
        let mut r = fr_router(2, 2, FrConfig::fr6());
        let dest = m.node_at(2, 2);
        // Data flit beats its control flit by 3 cycles.
        r.receive(
            Port::North,
            LinkEvent::Data(data_flit(0, 1, dest)),
            Cycle::ZERO,
        );
        let mut out = StepOutputs::new();
        r.step(Cycle::ZERO, &mut out);
        assert_eq!(r.stats().parked_arrivals, 1);
        assert_eq!(r.occupied_data_buffers(Port::North), 1);
        let cf = ControlFlit {
            vc: 1,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::ZERO,
                scheduled: false,
                flit: data_flit(0, 1, dest),
            }],
            packet: PacketId::new(9),
        };
        r.receive(Port::North, LinkEvent::Control(cf), Cycle::new(3));
        let (_, ejections) = drive(&mut r, 1, 20);
        assert_eq!(ejections.len(), 1, "parked flit must still be delivered");
        assert_eq!(r.occupied_data_buffers(Port::North), 0);
    }

    #[test]
    fn leading_control_defers_data_injection() {
        let m = mesh();
        let lead = 4;
        let cfg = FrConfig::fr6().with_timing(noc_flow::LinkTiming::leading_control(lead));
        let mut r = FrRouter::new(m, m.node_at(0, 0), cfg, Rng::from_seed(5));
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends, _) = drive(&mut r, 0, 60);
        let first_control = sends
            .iter()
            .find_map(|(t, _, e)| matches!(e, LinkEvent::Control(_)).then_some(*t))
            .expect("control flits leave");
        let first_data = sends
            .iter()
            .find_map(|(t, _, e)| matches!(e, LinkEvent::Data(_)).then_some(*t))
            .expect("data flits leave");
        // The control flit was pushed at cycle 0; its data flit could not
        // be injected before cycle `lead` (and may bypass the router in
        // its injection cycle).
        assert!(first_data > first_control);
        assert!(first_data >= lead, "data deferred behind {lead}-cycle lead");
    }

    #[test]
    fn all_or_nothing_matches_per_flit_for_d1() {
        // With d = 1 a control flit leads one data flit, so the two
        // policies must schedule identically.
        let m = mesh();
        let mut per_flit = fr_router(0, 0, FrConfig::fr6());
        let mut aon = fr_router(
            0,
            0,
            FrConfig::fr6().with_policy(SchedulingPolicy::AllOrNothing),
        );
        assert!(per_flit.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        assert!(aon.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends_a, _) = drive(&mut per_flit, 0, 40);
        let (sends_b, _) = drive(&mut aon, 0, 40);
        let only_data = |v: &[(u64, Port, LinkEvent)]| -> Vec<u64> {
            v.iter()
                .filter(|(_, _, e)| matches!(e, LinkEvent::Data(_)))
                .map(|(t, _, _)| *t)
                .collect()
        };
        assert_eq!(only_data(&sends_a), only_data(&sends_b));
    }

    #[test]
    fn multi_flit_control_leads_several_data_flits() {
        let m = mesh();
        let cfg = FrConfig::fr6().with_flits_per_control(4);
        let mut r = FrRouter::new(m, m.node_at(0, 0), cfg, Rng::from_seed(5));
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        let (sends, _) = drive(&mut r, 0, 40);
        let controls: Vec<&ControlFlit> = sends
            .iter()
            .filter_map(|(_, _, e)| match e {
                LinkEvent::Control(cf) => Some(cf),
                _ => None,
            })
            .collect();
        // 5 data flits with d=4: a head leading 4 and a tail leading 1.
        assert_eq!(controls.len(), 2);
        assert_eq!(controls[0].led.len(), 4);
        assert_eq!(controls[1].led.len(), 1);
        let datas = sends
            .iter()
            .filter(|(_, _, e)| matches!(e, LinkEvent::Data(_)))
            .count();
        assert_eq!(datas, 5);
    }

    #[test]
    fn transfer_counting_is_enabled_by_policy() {
        let m = mesh();
        let cfg = FrConfig {
            buffer_alloc: BufferAllocPolicy::AtReservation,
            ..FrConfig::fr6()
        };
        let mut r = FrRouter::new(m, m.node_at(0, 0), cfg, Rng::from_seed(5));
        assert_eq!(r.buffer_transfers(), Some((0, 0)));
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        drive_echo(&mut r, 0, 40);
        let (transfers, booked) = r.buffer_transfers().unwrap();
        assert_eq!(booked, 5, "five residencies booked");
        assert_eq!(transfers, 0, "an idle router never needs transfers");
        let plain = fr_router(0, 0, FrConfig::fr6());
        assert_eq!(plain.buffer_transfers(), None);
    }

    #[test]
    #[should_panic(expected = "control queue overflow")]
    fn control_queue_overflow_panics() {
        let m = mesh();
        let mut r = fr_router(1, 1, FrConfig::fr6());
        let dest = m.node_at(3, 1);
        for i in 0..4u64 {
            let cf = ControlFlit {
                vc: 0,
                kind: if i == 0 {
                    ControlKind::Head { dest }
                } else {
                    ControlKind::Body
                },
                is_tail: false,
                led: vec![],
                packet: PacketId::new(9),
            };
            // Four arrivals with no processing in between: the 3-deep
            // control VC queue overflows.
            r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        }
    }

    #[test]
    fn queued_flits_counts_everything() {
        let m = mesh();
        let mut r = fr_router(0, 0, FrConfig::fr6());
        assert_eq!(r.queued_flits(), 0);
        assert!(r.try_inject(packet(m, (0, 0), (3, 0), 5), Cycle::ZERO));
        assert_eq!(r.queued_flits(), 5, "pending packet counts its flits");
        drive_echo(&mut r, 0, 60);
        assert_eq!(r.queued_flits(), 0, "everything drains");
    }
}

#[cfg(test)]
mod bypass_router_tests {
    use super::*;
    use noc_traffic::PacketId;

    /// With fast control and an idle network, every data flit of a
    /// multi-hop packet should be bypassed (zero cycles in each router),
    /// which is what produces the paper's 27-vs-32 base latency gap.
    #[test]
    fn idle_network_flits_bypass_routers() {
        let m = Mesh::new(4, 4);
        let mut r = FrRouter::new(m, m.node_at(1, 0), FrConfig::fr6(), Rng::from_seed(2));
        let dest = m.node_at(3, 0);
        // Control head arrives at cycle 0 announcing a data flit at 10;
        // the router processes it at cycle 1, far ahead of the data.
        let cf = ControlFlit {
            vc: 0,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::new(10),
                scheduled: false,
                flit: DataFlit {
                    packet: PacketId::new(4),
                    seq: 0,
                    length: 1,
                    dest,
                    created_at: Cycle::ZERO,
                    crc_ok: true,
                },
            }],
            packet: PacketId::new(4),
        };
        r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        let mut sends = Vec::new();
        for t in 0..=10u64 {
            if t == 10 {
                r.receive(
                    Port::West,
                    LinkEvent::Data(DataFlit {
                        packet: PacketId::new(4),
                        seq: 0,
                        length: 1,
                        dest,
                        created_at: Cycle::ZERO,
                        crc_ok: true,
                    }),
                    Cycle::new(10),
                );
            }
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (p, e) in out.sends {
                sends.push((t, p, e));
            }
        }
        // The data flit left on the East port in its arrival cycle.
        let data_sends: Vec<u64> = sends
            .iter()
            .filter(|(_, _, e)| matches!(e, LinkEvent::Data(_)))
            .map(|(t, p, _)| {
                assert_eq!(*p, Port::East);
                *t
            })
            .collect();
        assert_eq!(data_sends, vec![10], "flit must bypass in cycle 10");
        assert_eq!(r.stats().bypassed_flits, 1);
        assert_eq!(r.occupied_data_buffers(Port::West), 0);
    }

    /// Disabling bypass restores the strict `t_d > t_a` of Figure 4.
    #[test]
    fn bypass_can_be_disabled() {
        let m = Mesh::new(4, 4);
        let cfg = FrConfig::fr6().with_bypass(false);
        let mut r = FrRouter::new(m, m.node_at(1, 0), cfg, Rng::from_seed(2));
        let dest = m.node_at(3, 0);
        let flit = DataFlit {
            packet: PacketId::new(4),
            seq: 0,
            length: 1,
            dest,
            created_at: Cycle::ZERO,
            crc_ok: true,
        };
        let cf = ControlFlit {
            vc: 0,
            kind: ControlKind::Head { dest },
            is_tail: true,
            led: vec![LedFlit {
                arrival: Cycle::new(10),
                scheduled: false,
                flit,
            }],
            packet: PacketId::new(4),
        };
        r.receive(Port::West, LinkEvent::Control(cf), Cycle::ZERO);
        let mut sends = Vec::new();
        for t in 0..=12u64 {
            if t == 10 {
                r.receive(Port::West, LinkEvent::Data(flit), Cycle::new(10));
            }
            let mut out = StepOutputs::new();
            r.step(Cycle::new(t), &mut out);
            for (_, e) in out.sends {
                if matches!(e, LinkEvent::Data(_)) {
                    sends.push(t);
                }
            }
        }
        assert_eq!(sends, vec![11], "without bypass the flit buffers one cycle");
        assert_eq!(r.stats().bypassed_flits, 0);
    }
}
